//! Seeded property-based testing with input shrinking — the in-repo
//! replacement for the `proptest` dependency.
//!
//! A [`Strategy`] describes how to generate random test inputs *and*
//! how to shrink a failing input toward a minimal counterexample. The
//! [`Checker`] runs a property over a configurable number of seeded
//! cases; on failure it greedily shrinks the input and panics with the
//! minimal failing value, the seed, and the case number, so the
//! failure replays exactly.
//!
//! ```
//! use sts_rng::check::{self, Checker};
//! use sts_rng::prop_assert;
//!
//! Checker::new().cases(64).seed(7).run(
//!     (0.0f64..100.0, 0usize..10),
//!     |(x, n)| {
//!         prop_assert!(x >= 0.0, "x = {x}");
//!         prop_assert!(n < 10);
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Strategies compose: numeric ranges are strategies, tuples of
//! strategies are strategies, [`vec_of`] builds vectors, and [`map`]
//! transforms values while shrinking *through* the transformation (the
//! underlying representation is shrunk, then re-mapped).

use crate::{Rng, Xoshiro256pp};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of random test inputs that knows how to shrink them.
///
/// `Source` is the shrinkable representation; `Value` is what the
/// property sees. Splitting the two is what lets [`map`] shrink a
/// mapped value: the source is shrunk and the map re-applied.
pub trait Strategy {
    /// The shrinkable representation of one generated input.
    type Source: Clone;
    /// The value handed to the property.
    type Value;

    /// Generates one random source.
    fn source(&self, rng: &mut Xoshiro256pp) -> Self::Source;

    /// Builds the property input from a source.
    fn build(&self, src: &Self::Source) -> Self::Value;

    /// Candidate simpler sources, most aggressive first. An empty
    /// vector means the source is fully shrunk.
    fn shrink(&self, src: &Self::Source) -> Vec<Self::Source>;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Source = $t;
            type Value = $t;

            fn source(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.random_range(self.clone())
            }

            fn build(&self, src: &$t) -> $t {
                *src
            }

            fn shrink(&self, src: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *src;
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                if v - 1 != lo && v - 1 != mid {
                    out.push(v - 1);
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Source = $t;
            type Value = $t;

            fn source(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.random_range(self.clone())
            }

            fn build(&self, src: &$t) -> $t {
                *src
            }

            fn shrink(&self, src: &$t) -> Vec<$t> {
                (*self.start()..(*self.end()).wrapping_add(1)).shrink(src)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Source = f64;
    type Value = f64;

    fn source(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.random_range(self.clone())
    }

    fn build(&self, src: &f64) -> f64 {
        *src
    }

    fn shrink(&self, src: &f64) -> Vec<f64> {
        let lo = self.start;
        let v = *src;
        let d = v - lo;
        // Below ~1e-9 of the range width further halving is noise.
        if d <= (self.end - self.start) * 1e-9 {
            return Vec::new();
        }
        vec![lo, lo + d / 2.0]
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Source = ($($S::Source,)+);
            type Value = ($($S::Value,)+);

            fn source(&self, rng: &mut Xoshiro256pp) -> Self::Source {
                ($(self.$idx.source(rng),)+)
            }

            fn build(&self, src: &Self::Source) -> Self::Value {
                ($(self.$idx.build(&src.$idx),)+)
            }

            fn shrink(&self, src: &Self::Source) -> Vec<Self::Source> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&src.$idx) {
                        let mut next = src.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Strategy for vectors of `len` elements from an element strategy.
/// Shrinks by dropping elements (down to the minimum length) and by
/// shrinking individual elements.
pub struct VecStrategy<S> {
    elem: S,
    len: RangeInclusive<usize>,
}

/// A vector strategy: `vec_of(0.0f64..1.0, 2..=8)`.
pub fn vec_of<S: Strategy>(elem: S, len: RangeInclusive<usize>) -> VecStrategy<S> {
    assert!(len.start() <= len.end(), "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Source = Vec<S::Source>;
    type Value = Vec<S::Value>;

    fn source(&self, rng: &mut Xoshiro256pp) -> Self::Source {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.elem.source(rng)).collect()
    }

    fn build(&self, src: &Self::Source) -> Self::Value {
        src.iter().map(|s| self.elem.build(s)).collect()
    }

    fn shrink(&self, src: &Self::Source) -> Vec<Self::Source> {
        let mut out = Vec::new();
        if src.len() > *self.len.start() {
            for drop_at in 0..src.len() {
                let mut shorter = src.clone();
                shorter.remove(drop_at);
                out.push(shorter);
            }
        }
        for (i, elem_src) in src.iter().enumerate() {
            for candidate in self.elem.shrink(elem_src) {
                let mut next = src.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy transforming another strategy's values with a function;
/// shrinking happens on the underlying source and re-maps.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

/// A mapped strategy: `map(2usize..8, |n| vec![0; n])`.
pub fn map<S, T, F>(inner: S, f: F) -> Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    Map { inner, f }
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Source = S::Source;
    type Value = T;

    fn source(&self, rng: &mut Xoshiro256pp) -> Self::Source {
        self.inner.source(rng)
    }

    fn build(&self, src: &Self::Source) -> T {
        (self.f)(self.inner.build(src))
    }

    fn shrink(&self, src: &Self::Source) -> Vec<Self::Source> {
        self.inner.shrink(src)
    }
}

/// Runs a property over seeded random cases, shrinking failures.
#[derive(Debug, Clone)]
pub struct Checker {
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            cases: 64,
            seed: 0x5354_535f_524e_4721, // "STS_RNG!"
            max_shrink_steps: 10_000,
        }
    }
}

impl Checker {
    /// A checker with the default configuration (64 cases, fixed seed).
    pub fn new() -> Self {
        Checker::default()
    }

    /// Sets the number of random cases.
    pub fn cases(mut self, cases: u32) -> Self {
        assert!(cases > 0, "at least one case");
        self.cases = cases;
        self
    }

    /// Sets the master seed (every case derives from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of shrink steps after a failure.
    pub fn max_shrink_steps(mut self, steps: u32) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Runs `property` over random inputs from `strategy`.
    ///
    /// # Panics
    /// On the first failing case, after shrinking it to a (locally)
    /// minimal failing input. The panic message contains the minimal
    /// input, the failure message, the case number and the seed.
    pub fn run<S, P>(&self, strategy: S, property: P)
    where
        S: Strategy,
        S::Value: Debug,
        P: Fn(S::Value) -> Result<(), String>,
    {
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        for case in 0..self.cases {
            let src = strategy.source(&mut rng);
            if let Err(message) = property(strategy.build(&src)) {
                let (minimal, message, steps) =
                    self.shrink_failure(&strategy, src, message, &property);
                panic!(
                    "property failed (case {case} of {cases}, seed {seed:#x}, \
                     {steps} shrink steps)\n  minimal input: {input:?}\n  {message}",
                    cases = self.cases,
                    seed = self.seed,
                    input = strategy.build(&minimal),
                );
            }
        }
    }

    /// Greedy shrink: repeatedly move to the first candidate that still
    /// fails, until no candidate fails or the step budget runs out.
    fn shrink_failure<S, P>(
        &self,
        strategy: &S,
        mut src: S::Source,
        mut message: String,
        property: &P,
    ) -> (S::Source, String, u32)
    where
        S: Strategy,
        P: Fn(S::Value) -> Result<(), String>,
    {
        let mut steps = 0;
        'outer: while steps < self.max_shrink_steps {
            for candidate in strategy.shrink(&src) {
                steps += 1;
                if let Err(m) = property(strategy.build(&candidate)) {
                    src = candidate;
                    message = m;
                    continue 'outer;
                }
                if steps >= self.max_shrink_steps {
                    break;
                }
            }
            break;
        }
        (src, message, steps)
    }
}

/// Asserts a condition inside a property closure; on failure returns
/// `Err` with the condition (or a formatted message), which the
/// [`Checker`] turns into a shrunken counterexample report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property closure (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    fn failure_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = catch_unwind(f).expect_err("property should fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    #[test]
    fn passing_property_is_silent() {
        Checker::new().cases(100).run(0u64..1000, |x| {
            prop_assert!(x < 1000);
            Ok(())
        });
    }

    #[test]
    fn cases_are_seed_deterministic() {
        let collect = |seed: u64| -> Vec<i64> {
            let mut out = Vec::new();
            let out_cell = std::cell::RefCell::new(&mut out);
            Checker::new().cases(20).seed(seed).run(0i64..100, |x| {
                out_cell.borrow_mut().push(x);
                Ok(())
            });
            out
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn integer_failure_shrinks_to_boundary() {
        // The canonical shrinking check: the minimal failing input of
        // `x < 50` over 0..1000 is exactly 50.
        let msg = failure_message(|| {
            Checker::new().cases(64).seed(11).run(0i64..1000, |x| {
                prop_assert!(x < 50, "x = {x} is too big");
                Ok(())
            });
        });
        assert!(msg.contains("minimal input: 50"), "{msg}");
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let msg = failure_message(|| {
            Checker::new()
                .cases(200)
                .seed(3)
                .run((0i64..100, 0i64..100), |(a, b)| {
                    prop_assert!(a + b < 60, "sum {}", a + b);
                    Ok(())
                });
        });
        // Minimal failing pair under greedy component shrinking sums
        // exactly to the boundary.
        assert!(msg.contains("minimal input: ("), "{msg}");
        assert!(msg.contains("sum 60"), "{msg}");
    }

    #[test]
    fn vec_failure_shrinks_length_to_minimum() {
        let msg = failure_message(|| {
            Checker::new()
                .cases(50)
                .seed(4)
                .run(vec_of(0i64..10, 0..=8), |xs| {
                    prop_assert!(xs.len() < 3, "len {}", xs.len());
                    Ok(())
                });
        });
        // A failing vector must shrink to exactly 3 elements, each 0.
        assert!(msg.contains("minimal input: [0, 0, 0]"), "{msg}");
    }

    #[test]
    fn map_shrinks_through_the_transformation() {
        let msg = failure_message(|| {
            Checker::new()
                .cases(50)
                .seed(9)
                .run(map(0i64..1000, |n| format!("n={n}")), |s| {
                    let n: i64 = s[2..].parse().expect("digits");
                    prop_assert!(n < 100, "{s}");
                    Ok(())
                });
        });
        assert!(msg.contains("minimal input: \"n=100\""), "{msg}");
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        let msg = failure_message(|| {
            Checker::new().cases(1).run(0i64..10, |x| {
                prop_assert_eq!(x * 0, 1);
                Ok(())
            });
        });
        assert!(msg.contains("left: 0"), "{msg}");
        assert!(msg.contains("right: 1"), "{msg}");
    }

    #[test]
    fn f64_range_shrinks_toward_low_end() {
        let msg = failure_message(|| {
            Checker::new().cases(64).seed(2).run(0.0f64..1000.0, |x| {
                prop_assert!(x < 125.0, "x = {x}");
                Ok(())
            });
        });
        // Halving descent lands within a factor of two of the boundary.
        let value: f64 = msg
            .split("minimal input: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("minimal input in message");
        assert!((125.0..250.0).contains(&value), "shrunk to {value}");
    }
}
