#![warn(missing_docs)]
//! # sts-rng — deterministic randomness substrate
//!
//! The evaluation pipeline of the paper is stochastic end to end:
//! Gaussian location noise (§IV-B), Poisson/bursty observation
//! processes, random down-sampling, and the KDE speed models of
//! Eq. 6–7 are all driven by pseudo-randomness. Reproducible noise and
//! sampling regimes are what make similarity-measure comparisons
//! meaningful, so the generator is first-class, in-repo code rather
//! than an external crate — the whole workspace builds and tests with
//! no network access.
//!
//! Contents:
//!
//! * [`SplitMix64`] — the seeding generator (also a usable PRNG);
//! * [`Xoshiro256pp`] — xoshiro256++, the workhorse generator used by
//!   every workload generator, sampler and experiment driver;
//! * the [`Rng`] trait — `next_u64` / [`Rng::f64`] / [`Rng::random`] /
//!   [`Rng::random_range`] / [`Rng::shuffle`] / [`Rng::normal`];
//! * [`StandardNormal`] — Box–Muller standard-normal sampling;
//! * [`check`] — a seeded property-testing harness with input
//!   shrinking (the in-repo `proptest` replacement).
//!
//! Every generator is a pure function of its seed: two runs with the
//! same seed produce byte-identical streams on every platform.

pub mod check;

/// Multiplier mapping the top 53 bits of a `u64` onto `[0, 1)`.
const F64_FROM_BITS: f64 = 1.0 / (1u64 << 53) as f64;

/// SplitMix64 (Steele, Lea & Flood): a tiny, fast generator whose main
/// role here is turning a single `u64` seed into well-mixed state for
/// [`Xoshiro256pp`]. It passes BigCrush on its own, so it is also a
/// valid lightweight [`Rng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna): 256 bits of state, period
/// 2²⁵⁶ − 1, passes all known statistical test batteries. The default
/// generator of the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` through
    /// [`SplitMix64`], per the xoshiro authors' recommendation. The
    /// all-zero state (which would be a fixed point) is unreachable.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic pseudo-random generator. Only [`Rng::next_u64`] is
/// required; everything else derives from it, so two generators with
/// the same `next_u64` stream produce identical derived values.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (the upper half of
    /// [`Rng::next_u64`], which for xoshiro256++ is the better half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of mantissa
    /// precision.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F64_FROM_BITS
    }

    /// A uniformly random value of a [`Sample`] type
    /// (`rng.random::<f64>()` ∈ `[0, 1)`, `rng.random::<u64>()`, …).
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (`0..n`, `0..=n`, or an `f64` range).
    /// Integer ranges are sampled without modulo bias.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_below(self, (i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// A standard-normal deviate via [`StandardNormal`] (Box–Muller).
    fn normal(&mut self) -> f64 {
        StandardNormal.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The standard normal distribution `N(0, 1)`, sampled with the
/// Box–Muller transform (cosine branch). Mirrors the sampler the
/// noise model of Eq. 14 and the workload generators rely on.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl StandardNormal {
    /// Draws one standard-normal deviate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.f64();
            let u2: f64 = rng.f64();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

/// Types [`Rng::random`] can produce.
pub trait Sample: Sized {
    /// Draws one uniformly random value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.f64()
    }
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u64` in `[0, span)`, unbiased (rejection sampling; the
/// power-of-two case needs no rejection at all).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // 2⁶⁴ mod span: everything below 2⁶⁴ − rem covers each residue the
    // same number of times.
    let rem = span.wrapping_neg() % span;
    loop {
        let r = rng.next_u64();
        if r <= u64::MAX - rem {
            return r % span;
        }
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Modular distance is exact even when `end - start`
                // would overflow the signed type.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span_minus_1 = end.wrapping_sub(start) as u64;
                let offset = if span_minus_1 == u64::MAX {
                    rng.next_u64()
                } else {
                    uniform_below(rng, span_minus_1 + 1)
                };
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "invalid f64 range"
        );
        let v = self.start + rng.f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs of the reference C implementation for seed 0.
        let mut mix = SplitMix64::new(0);
        assert_eq!(mix.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(mix.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn random_range_int_bounds_and_coverage() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
        // Degenerate singleton ranges.
        assert_eq!(rng.random_range(7usize..=7), 7);
        assert_eq!(rng.random_range(3i64..4), 3);
    }

    #[test]
    fn random_range_int_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..7)] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "{counts:?}"
            );
        }
    }

    #[test]
    fn random_range_f64_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.random_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&v), "{v}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, (0..100).collect::<Vec<u32>>(), "shuffle did nothing");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.normal()).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn rng_works_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.f64()
        }
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut reference = Xoshiro256pp::seed_from_u64(9);
        assert_eq!(draw(&mut rng), reference.f64());
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
    }
}
