//! Network-fault injection for the framed socket transport — the
//! attack side of the sharded tile engine's recovery contract.
//!
//! The sharded coordinator (`sts_core::shard`) talks to its worker
//! fleet through `sts_isolate::FrameConn`, which consults an optional
//! [`NetInjector`] once per frame. [`NetChaos`] implements that seam
//! from a seeded [`NetFaultPlan`], turning individual frames into the
//! network failures that actually break distributed jobs:
//!
//! * [`NetFault::Drop`] — the frame is silently lost (a congested
//!   switch shedding load);
//! * [`NetFault::Delay`] — the frame arrives late (bufferbloat, a GC
//!   pause on the peer);
//! * [`NetFault::Corrupt`] — line noise on the wire, surfacing as a
//!   typed garbage frame;
//! * [`NetFault::Duplicate`] — the frame arrives twice (a retransmit
//!   the original survived);
//! * [`NetFault::Disconnect`] — the connection is torn down (a NAT
//!   table eviction, a peer crash);
//! * [`NetFault::Wedge`] — the connection goes permanently silent
//!   without closing (the worst case: a half-open TCP session).
//!
//! Every decision is a pure function of `(plan.seed, frame_index,
//! direction)`, so a chaos run is replayable from its seed alone, and
//! every fault that fires is logged ([`NetChaos::injected`]) so suites
//! can reconcile *injections against detections*: a fault the
//! coordinator neither survived nor accounted for is a test failure,
//! not a shrug.

use std::sync::Mutex;
use std::time::Duration;
use sts_isolate::{NetDirection, NetFault, NetInjector};
use sts_rng::{Rng, Xoshiro256pp};

/// A seeded, per-frame fault schedule. Rates are per-mille and
/// cumulative (their sum must be ≤ 1000), rolled independently per
/// frame and direction.
#[derive(Debug, Clone, Copy)]
pub struct NetFaultPlan {
    /// Seed for every per-frame decision.
    pub seed: u64,
    /// Per-mille of frames silently dropped.
    pub drop_per_mille: u32,
    /// Per-mille of frames delayed by [`delay`](Self::delay).
    pub delay_per_mille: u32,
    /// Per-mille of frames corrupted into line noise.
    pub corrupt_per_mille: u32,
    /// Per-mille of frames delivered twice.
    pub duplicate_per_mille: u32,
    /// Per-mille of frames that tear the connection down.
    pub disconnect_per_mille: u32,
    /// Per-mille of frames that wedge the connection silent.
    pub wedge_per_mille: u32,
    /// How late a delayed frame arrives. Keep this below half the
    /// coordinator's lease timeout and delays are harmless by
    /// construction — the byte-identity suites rely on that.
    pub delay: Duration,
}

impl NetFaultPlan {
    /// A plan that never injects — the identity seam, for
    /// differential runs.
    pub fn none(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            drop_per_mille: 0,
            delay_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            disconnect_per_mille: 0,
            wedge_per_mille: 0,
            delay: Duration::from_millis(5),
        }
    }

    /// The fault (if any) injected on frame `index` in direction
    /// `dir`. Pure: same plan, same frame, same answer.
    pub fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
        let mut rng = self.frame_rng(index, dir);
        let roll = rng.random_range(0u32..1000);
        let mut acc = self.drop_per_mille;
        if roll < acc {
            return Some(NetFault::Drop);
        }
        acc += self.delay_per_mille;
        if roll < acc {
            return Some(NetFault::Delay(self.delay));
        }
        acc += self.corrupt_per_mille;
        if roll < acc {
            return Some(NetFault::Corrupt);
        }
        acc += self.duplicate_per_mille;
        if roll < acc {
            return Some(NetFault::Duplicate);
        }
        acc += self.disconnect_per_mille;
        if roll < acc {
            return Some(NetFault::Disconnect);
        }
        acc += self.wedge_per_mille;
        if roll < acc {
            return Some(NetFault::Wedge);
        }
        None
    }

    /// The per-frame generator, decorrelated between directions (the
    /// same index must not fault identically both ways).
    fn frame_rng(&self, index: u64, dir: NetDirection) -> Xoshiro256pp {
        let dir_salt = match dir {
            NetDirection::Send => 0x5E4D_u64,
            NetDirection::Recv => 0x4ECF_u64,
        };
        Xoshiro256pp::seed_from_u64(
            self.seed
                ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ dir_salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        )
    }
}

/// One fault that actually fired, for post-run reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedNetFault {
    /// 0-based per-direction frame index the fault hit.
    pub index: u64,
    /// Which way the frame was going.
    pub dir: NetDirection,
    /// What was done to it.
    pub fault: NetFault,
}

/// Per-kind totals of fired faults — the injection side of the
/// accounting the network-chaos suite reconciles against
/// `ShardStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultCounts {
    /// Frames silently dropped.
    pub dropped: usize,
    /// Frames delayed.
    pub delayed: usize,
    /// Frames corrupted into line noise.
    pub corrupted: usize,
    /// Frames delivered twice.
    pub duplicated: usize,
    /// Connections torn down.
    pub disconnected: usize,
    /// Connections wedged silent.
    pub wedged: usize,
}

impl NetFaultCounts {
    /// Faults that silence or sever a connection — each forces the
    /// coordinator to expire a lease or restart a worker.
    pub fn lossy(&self) -> usize {
        self.dropped + self.disconnected + self.wedged
    }

    /// Every fault that fired.
    pub fn total(&self) -> usize {
        self.dropped
            + self.delayed
            + self.corrupted
            + self.duplicated
            + self.disconnected
            + self.wedged
    }
}

/// The ledger-keeping [`NetInjector`]: decides from a [`NetFaultPlan`]
/// and records every fault that fires. Returning the fault *is* the
/// injection (`FrameConn` always applies what the injector returns),
/// so the ledger and the wire agree by construction.
#[derive(Debug)]
pub struct NetChaos {
    plan: NetFaultPlan,
    log: Mutex<Vec<InjectedNetFault>>,
}

impl NetChaos {
    /// A ledger-keeping injector over `plan`.
    pub fn new(plan: NetFaultPlan) -> Self {
        NetChaos {
            plan,
            log: Mutex::new(Vec::new()),
        }
    }

    /// The plan this injector decides from.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Every fault that fired, in firing order.
    pub fn injected(&self) -> Vec<InjectedNetFault> {
        self.log.lock().unwrap().clone()
    }

    /// Per-kind totals of fired faults.
    pub fn counts(&self) -> NetFaultCounts {
        let mut c = NetFaultCounts::default();
        for f in self.log.lock().unwrap().iter() {
            match f.fault {
                NetFault::Drop => c.dropped += 1,
                NetFault::Delay(_) => c.delayed += 1,
                NetFault::Corrupt => c.corrupted += 1,
                NetFault::Duplicate => c.duplicated += 1,
                NetFault::Disconnect => c.disconnected += 1,
                NetFault::Wedge => c.wedged += 1,
            }
        }
        c
    }
}

impl NetInjector for NetChaos {
    fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
        let fault = self.plan.fault_for(index, dir)?;
        // Telemetry mirrors the ledger one-to-one — the chaos suites
        // assert the two reconcile exactly, so a fault that fires
        // without a counter increment (or vice versa) is a bug here.
        sts_obs::static_counter!("robust.net.injected").incr();
        match fault {
            NetFault::Drop => {
                sts_obs::static_counter!("robust.net.injected.drop").incr();
                sts_obs::trace::event("robust.net.drop", index as f64);
            }
            NetFault::Delay(_) => {
                sts_obs::static_counter!("robust.net.injected.delay").incr();
                sts_obs::trace::event("robust.net.delay", index as f64);
            }
            NetFault::Corrupt => {
                sts_obs::static_counter!("robust.net.injected.corrupt").incr();
                sts_obs::trace::event("robust.net.corrupt", index as f64);
            }
            NetFault::Duplicate => {
                sts_obs::static_counter!("robust.net.injected.duplicate").incr();
                sts_obs::trace::event("robust.net.duplicate", index as f64);
            }
            NetFault::Disconnect => {
                sts_obs::static_counter!("robust.net.injected.disconnect").incr();
                sts_obs::trace::event("robust.net.disconnect", index as f64);
            }
            NetFault::Wedge => {
                sts_obs::static_counter!("robust.net.injected.wedge").incr();
                sts_obs::trace::event("robust.net.wedge", index as f64);
            }
        }
        self.log
            .lock()
            .unwrap()
            .push(InjectedNetFault { index, dir, fault });
        Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_ladder_shaped() {
        let plan = NetFaultPlan {
            seed: 42,
            drop_per_mille: 167,
            delay_per_mille: 167,
            corrupt_per_mille: 167,
            duplicate_per_mille: 167,
            disconnect_per_mille: 166,
            wedge_per_mille: 166,
            delay: Duration::from_millis(1),
        };
        let mut counts = [0usize; 6];
        for idx in 0..6000 {
            let a = plan.fault_for(idx, NetDirection::Send);
            assert_eq!(
                a,
                plan.fault_for(idx, NetDirection::Send),
                "frame {idx} must replay identically"
            );
            match a {
                Some(NetFault::Drop) => counts[0] += 1,
                Some(NetFault::Delay(_)) => counts[1] += 1,
                Some(NetFault::Corrupt) => counts[2] += 1,
                Some(NetFault::Duplicate) => counts[3] += 1,
                Some(NetFault::Disconnect) => counts[4] += 1,
                Some(NetFault::Wedge) => counts[5] += 1,
                None => panic!("rates sum to 1000: every frame must fault"),
            }
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(c),
                "fault {i} fired {c}/6000 times — ladder is skewed"
            );
        }
        assert_eq!(
            NetFaultPlan::none(9).fault_for(123, NetDirection::Recv),
            None,
            "the identity plan never fires"
        );
    }

    #[test]
    fn directions_are_decorrelated() {
        let plan = NetFaultPlan {
            drop_per_mille: 500,
            ..NetFaultPlan::none(7)
        };
        let agree = (0..512)
            .filter(|&i| {
                plan.fault_for(i, NetDirection::Send) == plan.fault_for(i, NetDirection::Recv)
            })
            .count();
        // Independent 50/50 rolls agree about half the time (≈256 of
        // 512); identical schedules would agree always.
        assert!(
            (192..=320).contains(&agree),
            "send/recv schedules look correlated: {agree}/512 agree"
        );
    }

    #[test]
    fn ledger_records_exactly_the_fired_faults() {
        let chaos = NetChaos::new(NetFaultPlan {
            drop_per_mille: 300,
            corrupt_per_mille: 300,
            ..NetFaultPlan::none(11)
        });
        let mut expect_fired = 0usize;
        for idx in 0..200 {
            for dir in [NetDirection::Send, NetDirection::Recv] {
                if NetInjector::fault_for(&chaos, idx, dir).is_some() {
                    expect_fired += 1;
                }
            }
        }
        let counts = chaos.counts();
        assert_eq!(counts.total(), expect_fired);
        assert_eq!(counts.total(), chaos.injected().len());
        assert!(counts.dropped > 0 && counts.corrupted > 0);
        assert_eq!(counts.delayed + counts.duplicated + counts.wedged, 0);
        assert_eq!(counts.lossy(), counts.dropped);
    }
}
