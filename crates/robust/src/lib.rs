#![warn(missing_docs)]
//! # sts-robust — deterministic fault injection for trajectory data
//!
//! Real-world trajectory feeds are dirty: GPS units emit NaN fixes,
//! loggers shuffle or duplicate timestamps, multipath reflections
//! teleport points across town, uploads truncate mid-record, and disk
//! corruption mangles bytes. The paper's premise — location noise and
//! sporadic sampling are the *normal* case (§I) — extends naturally to
//! outright corruption, and a pipeline that reproduces the measure must
//! not fall over on the inputs the measure was designed for.
//!
//! This crate is the *attack side* of that contract. It provides:
//!
//! * the [`Injector`] trait — a named, deterministic corruption of a raw
//!   point stream, driven by an [`sts_rng::Xoshiro256pp`] so every
//!   chaos case is replayable from its seed;
//! * point-stream injectors: [`NanCoords`], [`InfCoords`],
//!   [`ShuffleTimes`], [`DuplicateStamps`], [`TeleportSpikes`],
//!   [`TruncateRecord`];
//! * [`ByteMangler`] — byte-level corruption of the `sts-traj` `io`
//!   text format (bit flips, deletions, line duplication);
//! * [`standard_injectors`] — the full battery, for chaos suites.
//!
//! The *defense side* lives across the workspace: `sts_traj::repair`
//! turns corrupted streams back into valid trajectories,
//! `sts_traj::io::read_trajectories_lenient` survives mangled files,
//! and `sts_core`'s degraded batch APIs quarantine whatever remains
//! unusable. The chaos suite in `tests/chaos.rs` drives every injector
//! through that whole pipeline and asserts the invariant that matters:
//! **never a panic — always a typed error or a repaired result.**
//!
//! Injectors mutate plain `Vec<TrajPoint>` (which may hold anything,
//! including NaN), never `Trajectory` (whose constructor enforces the
//! clean-data invariants).

pub mod disk;
pub mod net;

pub use disk::{DiskFault, DiskFaultPlan, FaultyStorage, InjectedFault};
pub use net::{InjectedNetFault, NetChaos, NetFaultCounts, NetFaultPlan};

use sts_rng::{Rng, Xoshiro256pp};
use sts_traj::TrajPoint;

/// A named, deterministic corruption of a raw point stream.
///
/// Implementations must be pure functions of `(points, rng)`: replaying
/// the same stream with the same seeded generator reproduces the same
/// corruption byte for byte. They must also be total — any input vector,
/// including one produced by another injector, is acceptable.
pub trait Injector {
    /// Short stable name, used in chaos-suite diagnostics.
    fn name(&self) -> &'static str;

    /// Corrupts `points` in place.
    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp);
}

/// Replaces coordinates with NaN at the given per-point rate.
#[derive(Debug, Clone, Copy)]
pub struct NanCoords {
    /// Probability that a given point's x and/or y becomes NaN.
    pub rate: f64,
}

impl Injector for NanCoords {
    fn name(&self) -> &'static str {
        "nan-coords"
    }

    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.injections").incr();
        for p in points.iter_mut() {
            if rng.f64() < self.rate {
                // Corrupt x, y or both — real units fail in all three ways.
                match rng.random_range(0..3u32) {
                    0 => p.loc.x = f64::NAN,
                    1 => p.loc.y = f64::NAN,
                    _ => {
                        p.loc.x = f64::NAN;
                        p.loc.y = f64::NAN;
                    }
                }
            }
        }
    }
}

/// Replaces coordinates with ±∞ at the given per-point rate.
#[derive(Debug, Clone, Copy)]
pub struct InfCoords {
    /// Probability that a given point's x or y becomes infinite.
    pub rate: f64,
}

impl Injector for InfCoords {
    fn name(&self) -> &'static str {
        "inf-coords"
    }

    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.injections").incr();
        for p in points.iter_mut() {
            if rng.f64() < self.rate {
                let val = if rng.f64() < 0.5 {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                if rng.f64() < 0.5 {
                    p.loc.x = val;
                } else {
                    p.loc.y = val;
                }
            }
        }
    }
}

/// Swaps randomly chosen pairs of timestamps, breaking monotonicity
/// while preserving the multiset of stamps (a reordered upload).
#[derive(Debug, Clone, Copy)]
pub struct ShuffleTimes {
    /// Number of random transpositions to apply.
    pub swaps: usize,
}

impl Injector for ShuffleTimes {
    fn name(&self) -> &'static str {
        "shuffle-times"
    }

    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.injections").incr();
        if points.len() < 2 {
            return;
        }
        for _ in 0..self.swaps {
            let i = rng.random_range(0..points.len());
            let j = rng.random_range(0..points.len());
            let (ti, tj) = (points[i].t, points[j].t);
            points[i].t = tj;
            points[j].t = ti;
        }
    }
}

/// Copies the previous point's timestamp onto a point at the given rate
/// (a logger stamping at coarser resolution than its sampling rate).
#[derive(Debug, Clone, Copy)]
pub struct DuplicateStamps {
    /// Probability that a given point inherits its predecessor's stamp.
    pub rate: f64,
}

impl Injector for DuplicateStamps {
    fn name(&self) -> &'static str {
        "duplicate-stamps"
    }

    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.injections").incr();
        for i in 1..points.len() {
            if rng.f64() < self.rate {
                points[i].t = points[i - 1].t;
            }
        }
    }
}

/// Displaces points by a large random jump at the given rate (GPS
/// multipath: the fix lands blocks away for one sample).
#[derive(Debug, Clone, Copy)]
pub struct TeleportSpikes {
    /// Probability that a given point is displaced.
    pub rate: f64,
    /// Magnitude of the displacement, in the stream's length unit.
    pub magnitude: f64,
}

impl Injector for TeleportSpikes {
    fn name(&self) -> &'static str {
        "teleport-spikes"
    }

    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.injections").incr();
        for p in points.iter_mut() {
            if rng.f64() < self.rate {
                let angle = rng.f64() * std::f64::consts::TAU;
                p.loc.x += self.magnitude * angle.cos();
                p.loc.y += self.magnitude * angle.sin();
            }
        }
    }
}

/// Truncates the stream at a random point — possibly to a single point
/// or to nothing (an upload cut off mid-record).
#[derive(Debug, Clone, Copy)]
pub struct TruncateRecord;

impl Injector for TruncateRecord {
    fn name(&self) -> &'static str {
        "truncate-record"
    }

    fn inject(&self, points: &mut Vec<TrajPoint>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.injections").incr();
        let keep = rng.random_range(0..points.len() + 1);
        points.truncate(keep);
    }
}

/// The full battery of point-stream injectors with representative
/// parameters, for chaos suites. The order is stable so chaos-case
/// numbering stays meaningful across runs.
pub fn standard_injectors() -> Vec<Box<dyn Injector>> {
    vec![
        Box::new(NanCoords { rate: 0.2 }),
        Box::new(InfCoords { rate: 0.2 }),
        Box::new(ShuffleTimes { swaps: 4 }),
        Box::new(DuplicateStamps { rate: 0.3 }),
        Box::new(TeleportSpikes {
            rate: 0.15,
            magnitude: 5_000.0,
        }),
        Box::new(TruncateRecord),
    ]
}

/// Byte-level corruption of the `sts-traj` `io` text format: flips
/// random bytes, deletes random spans, and duplicates random lines —
/// the failure modes of disk corruption and interrupted appends.
#[derive(Debug, Clone, Copy)]
pub struct ByteMangler {
    /// Number of single-byte flips.
    pub flips: usize,
    /// Number of random span deletions (up to 16 bytes each).
    pub deletions: usize,
    /// Number of line duplications.
    pub line_dups: usize,
}

impl Default for ByteMangler {
    fn default() -> Self {
        ByteMangler {
            flips: 8,
            deletions: 2,
            line_dups: 1,
        }
    }
}

impl ByteMangler {
    /// Corrupts `bytes` in place. Total for any input, including empty.
    pub fn mangle(&self, bytes: &mut Vec<u8>, rng: &mut Xoshiro256pp) {
        sts_obs::static_counter!("robust.byte_mangles").incr();
        for _ in 0..self.flips {
            if bytes.is_empty() {
                break;
            }
            let i = rng.random_range(0..bytes.len());
            bytes[i] ^= 1 << rng.random_range(0..8u32);
        }
        for _ in 0..self.deletions {
            if bytes.is_empty() {
                break;
            }
            let start = rng.random_range(0..bytes.len());
            let len = (rng.random_range(1..17usize)).min(bytes.len() - start);
            bytes.drain(start..start + len);
        }
        for _ in 0..self.line_dups {
            let lines: Vec<(usize, usize)> = line_spans(bytes);
            if lines.is_empty() {
                break;
            }
            let (start, end) = lines[rng.random_range(0..lines.len())];
            let line: Vec<u8> = bytes[start..end].to_vec();
            let at = lines[rng.random_range(0..lines.len())].0;
            bytes.splice(at..at, line);
        }
    }
}

/// `(start, end)` byte spans of the lines in `bytes`, each including its
/// trailing newline when present.
fn line_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            spans.push((start, i + 1));
            start = i + 1;
        }
    }
    if start < bytes.len() {
        spans.push((start, bytes.len()));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(n: usize) -> Vec<TrajPoint> {
        (0..n)
            .map(|i| TrajPoint::from_xy(3.0 * i as f64, 40.0, 10.0 * i as f64))
            .collect()
    }

    fn rng(seed: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(seed)
    }

    /// Bitwise image of a stream — NaN-proof equality for determinism
    /// checks (`assert_eq!` on points would treat NaN ≠ NaN).
    fn bits(points: &[TrajPoint]) -> Vec<(u64, u64, u64)> {
        points
            .iter()
            .map(|p| (p.loc.x.to_bits(), p.loc.y.to_bits(), p.t.to_bits()))
            .collect()
    }

    #[test]
    fn injectors_are_deterministic() {
        for inj in standard_injectors() {
            let mut a = walk(20);
            let mut b = walk(20);
            inj.inject(&mut a, &mut rng(7));
            inj.inject(&mut b, &mut rng(7));
            assert_eq!(
                bits(&a),
                bits(&b),
                "{} not a pure function of the seed",
                inj.name()
            );
        }
    }

    #[test]
    fn nan_coords_actually_injects_nan() {
        let mut pts = walk(50);
        NanCoords { rate: 0.5 }.inject(&mut pts, &mut rng(1));
        assert!(pts.iter().any(|p| p.loc.x.is_nan() || p.loc.y.is_nan()));
    }

    #[test]
    fn inf_coords_actually_injects_infinities() {
        let mut pts = walk(50);
        InfCoords { rate: 0.5 }.inject(&mut pts, &mut rng(1));
        assert!(pts
            .iter()
            .any(|p| p.loc.x.is_infinite() || p.loc.y.is_infinite()));
    }

    #[test]
    fn shuffle_times_preserves_stamp_multiset() {
        let mut pts = walk(30);
        let mut before: Vec<f64> = pts.iter().map(|p| p.t).collect();
        ShuffleTimes { swaps: 10 }.inject(&mut pts, &mut rng(3));
        let mut after: Vec<f64> = pts.iter().map(|p| p.t).collect();
        before.sort_by(f64::total_cmp);
        after.sort_by(f64::total_cmp);
        assert_eq!(before, after);
        assert!(
            pts.windows(2).any(|w| w[1].t <= w[0].t),
            "10 swaps over 30 points should break monotonicity"
        );
    }

    #[test]
    fn duplicate_stamps_creates_equal_neighbors() {
        let mut pts = walk(50);
        DuplicateStamps { rate: 0.5 }.inject(&mut pts, &mut rng(4));
        assert!(pts.windows(2).any(|w| w[0].t == w[1].t));
    }

    #[test]
    fn teleport_spikes_displace_by_the_magnitude() {
        let mut pts = walk(50);
        let clean = walk(50);
        TeleportSpikes {
            rate: 0.3,
            magnitude: 1_000.0,
        }
        .inject(&mut pts, &mut rng(5));
        let displaced = pts
            .iter()
            .zip(&clean)
            .filter(|(a, b)| a.loc.distance(&b.loc) > 999.0)
            .count();
        assert!(displaced > 0, "no point was teleported");
        for (a, b) in pts.iter().zip(&clean) {
            let d = a.loc.distance(&b.loc);
            assert!(d < 1e-9 || (d - 1_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn truncate_record_only_shortens() {
        for seed in 0..32 {
            let mut pts = walk(10);
            TruncateRecord.inject(&mut pts, &mut rng(seed));
            assert!(pts.len() <= 10);
            assert_eq!(pts[..], walk(10)[..pts.len()]);
        }
    }

    #[test]
    fn truncate_record_survives_empty_input() {
        let mut pts = Vec::new();
        TruncateRecord.inject(&mut pts, &mut rng(0));
        assert!(pts.is_empty());
    }

    #[test]
    fn byte_mangler_changes_bytes_and_survives_empty() {
        let mut bytes = b"traj 2\n0 40 0\n3 40 10\n".to_vec();
        let original = bytes.clone();
        ByteMangler::default().mangle(&mut bytes, &mut rng(9));
        assert_ne!(bytes, original);

        let mut empty = Vec::new();
        ByteMangler::default().mangle(&mut empty, &mut rng(9));
        assert!(empty.is_empty());
    }

    #[test]
    fn byte_mangler_is_deterministic() {
        let src = b"traj 3\n0 40 0\n3 40 10\n6 40 20\ntraj 1\n1 1 1\n".to_vec();
        let (mut a, mut b) = (src.clone(), src);
        ByteMangler::default().mangle(&mut a, &mut rng(11));
        ByteMangler::default().mangle(&mut b, &mut rng(11));
        assert_eq!(a, b);
    }
}
