//! Disk-fault injection for the [`Storage`] trait — the attack side of
//! the out-of-core tiled engine's durability contract.
//!
//! The tiled matrix engine (`sts_core::tiled`) routes every tile spill
//! through `sts_runtime::Storage`. [`FaultyStorage`] wraps the real
//! [`FsStorage`] and, per a seeded [`DiskFaultPlan`], turns individual
//! atomic writes into the disk failures that actually eat data in
//! production:
//!
//! * [`DiskFault::TornWrite`] — the file lands truncated at a seeded
//!   cut point (an fsync that lied, a kernel crash mid-flush): the
//!   write *reports success* and the corruption must be caught on
//!   read-back;
//! * [`DiskFault::BitFlip`] — one seeded bit of the payload flips
//!   (bit rot, a bad cable): again reported as success;
//! * [`DiskFault::Enospc`] — the write fails up front with
//!   `StorageFull`, the honest ENOSPC;
//! * [`DiskFault::StaleTmp`] — the `*.tmp` sibling is written and the
//!   operation dies before the rename (a SIGKILL between the two
//!   syscalls), leaving exactly the debris the runtime's
//!   `sweep_stale_tmp` exists for.
//!
//! Every decision is a pure function of `(plan.seed, write_index)`, so
//! a chaos run is replayable from its seed alone, and every injected
//! fault is logged ([`FaultyStorage::injected`]) so suites can assert
//! *exact* detection counts: a fault that was injected but never
//! detected is a test failure, not a shrug.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::store::tmp_path;
use sts_runtime::{FsStorage, Storage};

/// One way an atomic write can go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The file is durably written but truncated at a seeded cut
    /// point; the write reports success.
    TornWrite,
    /// One seeded bit of the written bytes is flipped; the write
    /// reports success.
    BitFlip,
    /// The write fails with `StorageFull` before touching the disk.
    Enospc,
    /// The `*.tmp` sibling is written, then the operation "crashes"
    /// before the rename: the target is untouched, the tmp file is
    /// left behind, and the write reports an error.
    StaleTmp,
}

/// A seeded, per-write fault schedule. Rates are per-mille and
/// cumulative (their sum must be ≤ 1000); `enospc_at_write` forces a
/// deterministic `Enospc` at exactly the k-th write regardless of the
/// rates — the "disk fills at the worst moment" scenario.
#[derive(Debug, Clone, Copy)]
pub struct DiskFaultPlan {
    /// Seed for every per-write decision.
    pub seed: u64,
    /// Per-mille of writes that land torn.
    pub torn_per_mille: u32,
    /// Per-mille of writes that land with a flipped bit.
    pub flip_per_mille: u32,
    /// Per-mille of writes that fail with `StorageFull`.
    pub enospc_per_mille: u32,
    /// Per-mille of writes that die between tmp write and rename.
    pub stale_per_mille: u32,
    /// Force `Enospc` at exactly this 0-based write index.
    pub enospc_at_write: Option<u64>,
}

impl DiskFaultPlan {
    /// A plan that never injects — the identity wrapper, for
    /// differential runs.
    pub fn none(seed: u64) -> Self {
        DiskFaultPlan {
            seed,
            torn_per_mille: 0,
            flip_per_mille: 0,
            enospc_per_mille: 0,
            stale_per_mille: 0,
            enospc_at_write: None,
        }
    }

    /// The fault (if any) injected at 0-based `write_index`. Pure:
    /// same plan, same index, same answer.
    pub fn fault_for(&self, write_index: u64) -> Option<DiskFault> {
        if Some(write_index) == self.enospc_at_write {
            return Some(DiskFault::Enospc);
        }
        let mut rng = self.write_rng(write_index);
        let roll = rng.random_range(0u32..1000);
        let mut acc = self.torn_per_mille;
        if roll < acc {
            return Some(DiskFault::TornWrite);
        }
        acc += self.flip_per_mille;
        if roll < acc {
            return Some(DiskFault::BitFlip);
        }
        acc += self.enospc_per_mille;
        if roll < acc {
            return Some(DiskFault::Enospc);
        }
        acc += self.stale_per_mille;
        if roll < acc {
            return Some(DiskFault::StaleTmp);
        }
        None
    }

    /// The per-write generator — also drives the cut point / bit
    /// choice, decorrelated from the fault roll above.
    fn write_rng(&self, write_index: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(
            self.seed ^ write_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD15C_FA17,
        )
    }
}

/// One fault that actually fired, for post-run assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// 0-based index of the write the fault hit.
    pub write_index: u64,
    /// The path the write targeted.
    pub path: PathBuf,
    /// What was done to it.
    pub fault: DiskFault,
}

/// A [`Storage`] that injects [`DiskFaultPlan`] faults into
/// `write_atomic` and delegates everything else (reads are always
/// honest: the point is detecting what the *writes* corrupted).
#[derive(Debug)]
pub struct FaultyStorage {
    inner: FsStorage,
    plan: DiskFaultPlan,
    writes: AtomicU64,
    log: Mutex<Vec<InjectedFault>>,
}

impl FaultyStorage {
    /// Wraps the real filesystem with `plan`.
    pub fn new(plan: DiskFaultPlan) -> Self {
        FaultyStorage {
            inner: FsStorage,
            plan,
            writes: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Total `write_atomic` calls observed so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Every fault that fired, in write order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.log.lock().unwrap().clone()
    }

    /// How many times `fault` fired.
    pub fn count(&self, fault: DiskFault) -> usize {
        self.log
            .lock()
            .unwrap()
            .iter()
            .filter(|f| f.fault == fault)
            .count()
    }

    fn record(&self, write_index: u64, path: &Path, fault: DiskFault) {
        // Telemetry mirrors the ledger one-to-one — chaos suites
        // reconcile the per-kind counters against `injected()` exactly.
        sts_obs::static_counter!("robust.disk.injected").incr();
        match fault {
            DiskFault::TornWrite => {
                sts_obs::static_counter!("robust.disk.injected.torn").incr();
                sts_obs::trace::event("robust.disk.torn", write_index as f64);
            }
            DiskFault::BitFlip => {
                sts_obs::static_counter!("robust.disk.injected.bitflip").incr();
                sts_obs::trace::event("robust.disk.bitflip", write_index as f64);
            }
            DiskFault::Enospc => {
                sts_obs::static_counter!("robust.disk.injected.enospc").incr();
                sts_obs::trace::event("robust.disk.enospc", write_index as f64);
            }
            DiskFault::StaleTmp => {
                sts_obs::static_counter!("robust.disk.injected.stale_tmp").incr();
                sts_obs::trace::event("robust.disk.stale_tmp", write_index as f64);
            }
        }
        self.log.lock().unwrap().push(InjectedFault {
            write_index,
            path: path.to_path_buf(),
            fault,
        });
    }
}

impl Storage for FaultyStorage {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let idx = self.writes.fetch_add(1, Ordering::SeqCst);
        let Some(fault) = self.plan.fault_for(idx) else {
            return self.inner.write_atomic(path, bytes);
        };
        self.record(idx, path, fault);
        let mut rng = self.plan.write_rng(idx);
        rng.next_u64(); // skip the fault roll's draw
        match fault {
            DiskFault::TornWrite => {
                // The truncated prefix lands "durably": success is
                // reported and detection is the reader's job.
                let cut = if bytes.len() < 2 {
                    0
                } else {
                    rng.random_range(1..bytes.len())
                };
                self.inner.write_atomic(path, &bytes[..cut])
            }
            DiskFault::BitFlip => {
                let mut mangled = bytes.to_vec();
                if !mangled.is_empty() {
                    let pos = rng.random_range(0..mangled.len());
                    let bit = rng.random_range(0u32..8);
                    mangled[pos] ^= 1 << bit;
                }
                self.inner.write_atomic(path, &mangled)
            }
            DiskFault::Enospc => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            DiskFault::StaleTmp => {
                // Crash between tmp write and rename: target untouched,
                // tmp debris left for sweep_stale_tmp to find.
                std::fs::write(tmp_path(path), bytes)?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected crash before rename",
                ))
            }
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn modified(&self, path: &Path) -> io::Result<Option<std::time::SystemTime>> {
        self.inner.modified(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sts-robust-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fault_schedule_is_deterministic_and_ladder_shaped() {
        let plan = DiskFaultPlan {
            seed: 42,
            torn_per_mille: 250,
            flip_per_mille: 250,
            enospc_per_mille: 250,
            stale_per_mille: 250,
            enospc_at_write: Some(7),
        };
        let mut counts = [0usize; 4];
        for idx in 0..4000 {
            let a = plan.fault_for(idx);
            assert_eq!(
                a,
                plan.fault_for(idx),
                "write {idx} must replay identically"
            );
            match a {
                Some(DiskFault::TornWrite) => counts[0] += 1,
                Some(DiskFault::BitFlip) => counts[1] += 1,
                Some(DiskFault::Enospc) => counts[2] += 1,
                Some(DiskFault::StaleTmp) => counts[3] += 1,
                None => panic!("rates sum to 1000: every write must fault"),
            }
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(c),
                "fault {i} fired {c}/4000 times — ladder is skewed"
            );
        }
        assert_eq!(
            plan.fault_for(7),
            Some(DiskFault::Enospc),
            "forced k-th write"
        );
        assert_eq!(
            DiskFaultPlan::none(9).fault_for(123),
            None,
            "the identity plan never fires"
        );
    }

    #[test]
    fn faults_land_on_disk_as_advertised() {
        let dir = temp_dir("land");
        // One deterministic fault per scenario via forced/none plans.
        let torn = FaultyStorage::new(DiskFaultPlan {
            torn_per_mille: 1000,
            ..DiskFaultPlan::none(1)
        });
        let target = dir.join("a.tile");
        let payload = vec![0xABu8; 256];
        torn.write_atomic(&target, &payload).unwrap();
        let back = std::fs::read(&target).unwrap();
        assert!(
            back.len() < payload.len() && !back.is_empty(),
            "torn prefix"
        );
        assert_eq!(torn.count(DiskFault::TornWrite), 1);

        let flip = FaultyStorage::new(DiskFaultPlan {
            flip_per_mille: 1000,
            ..DiskFaultPlan::none(2)
        });
        flip.write_atomic(&target, &payload).unwrap();
        let back = std::fs::read(&target).unwrap();
        assert_eq!(back.len(), payload.len());
        let flipped: u32 = back
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flips");

        let full = FaultyStorage::new(DiskFaultPlan {
            enospc_at_write: Some(0),
            ..DiskFaultPlan::none(3)
        });
        let err = full
            .write_atomic(&dir.join("b.tile"), &payload)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!dir.join("b.tile").exists(), "ENOSPC touches nothing");

        let stale = FaultyStorage::new(DiskFaultPlan {
            stale_per_mille: 1000,
            ..DiskFaultPlan::none(4)
        });
        let c = dir.join("c.tile");
        stale.write_atomic(&c, &payload).unwrap_err();
        assert!(!c.exists(), "target untouched");
        assert!(tmp_path(&c).exists(), "tmp debris left for the sweeper");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
