//! Chaos property suite: every injector, 100+ seeded cases each, driven
//! through the full defensive pipeline — repair → prepare → STP →
//! similarity — with the single invariant that matters under fault
//! injection: **the pipeline never panics.** Every case runs under
//! `catch_unwind`, so a violation is reported with the injector name and
//! seed that reproduce it.
//!
//! The byte-level half fuzzes the `io` text format through
//! [`sts_traj::io::read_trajectories_lenient`], and the acceptance test
//! checks the degraded batch API quarantines known-bad trajectories
//! while scoring every good pair.

use std::panic::{catch_unwind, AssertUnwindSafe};
use sts_core::{PairOutcome, QuarantineReason, Sts, StsConfig, StsError};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::{Rng, Xoshiro256pp};
use sts_robust::{standard_injectors, ByteMangler};
use sts_traj::repair::{repair, RepairConfig, RepairPolicy};
use sts_traj::{io, TrajPoint, Trajectory};

const CASES_PER_INJECTOR: u64 = 128;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(300.0, 120.0)),
        6.0,
    )
    .unwrap()
}

/// A clean random walk: length, origin, heading and cadence all drawn
/// from the seed, so the corpus of chaos cases spans short/long,
/// fast/slow, dense/sporadic streams.
fn random_walk(rng: &mut Xoshiro256pp) -> Vec<TrajPoint> {
    let n = rng.random_range(2..16usize);
    let mut x = rng.random_range(0.0..250.0);
    let mut y = rng.random_range(0.0..100.0);
    let mut t = rng.random_range(0.0..50.0);
    let speed = rng.random_range(0.5..8.0);
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        pts.push(TrajPoint::from_xy(x, y, t));
        let dt = rng.random_range(1.0..30.0);
        let angle = rng.f64() * std::f64::consts::TAU;
        x += speed * dt * angle.cos();
        y += speed * dt * angle.sin();
        t += dt;
    }
    pts
}

/// The defensive pipeline under test: repair the corrupted stream, then
/// prepare every surviving trajectory and score every pair (similarity
/// internally evaluates the STP estimator at every merged timestamp).
/// Unpreparable survivors must come back as typed errors, and every
/// produced score must be a valid probability.
fn run_pipeline(points: &[TrajPoint], policy: RepairPolicy) {
    let config = RepairConfig {
        policy,
        ..RepairConfig::default()
    };
    let outcome = match repair(points, &config) {
        Ok(o) => o,
        // Strict mode refusing corrupted input IS the contract.
        Err(_) => return,
    };
    let sts = Sts::new(StsConfig::default(), grid());
    let mut prepared = Vec::new();
    for t in &outcome.trajectories {
        match sts.prepare(t) {
            Ok(p) => prepared.push(p),
            Err(StsError::TrajectoryTooShort { .. }) | Err(StsError::Kde(_)) => {}
        }
    }
    for a in &prepared {
        for b in &prepared {
            let s = sts.similarity_prepared(a, b);
            assert!(
                (0.0..=1.0 + 1e-9).contains(&s),
                "similarity {s} is not a probability"
            );
        }
    }
}

/// Runs `f` with panic output silenced: the suite *expects* candidate
/// panics and reports them itself; default-hook backtraces for hundreds
/// of cases would bury the one that matters.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// 128 seeded cases per injector per repair policy: corrupt a clean
/// walk, then demand the pipeline completes without panicking.
#[test]
fn no_injector_panics_the_pipeline() {
    quietly(|| {
        for inj in standard_injectors() {
            for policy in [
                RepairPolicy::Strict,
                RepairPolicy::DropBad,
                RepairPolicy::SplitAtGaps,
                RepairPolicy::ClampSpeed,
            ] {
                for seed in 0..CASES_PER_INJECTOR {
                    let mut rng = Xoshiro256pp::seed_from_u64(seed);
                    let mut pts = random_walk(&mut rng);
                    inj.inject(&mut pts, &mut rng);
                    let ok = catch_unwind(AssertUnwindSafe(|| run_pipeline(&pts, policy))).is_ok();
                    assert!(
                        ok,
                        "pipeline panicked: injector={} policy={policy:?} seed={seed}",
                        inj.name()
                    );
                }
            }
        }
    });
}

/// Stacked corruption: every injector applied in sequence to the same
/// stream — the worst feed imaginable still must not panic the pipeline.
#[test]
fn stacked_injectors_do_not_panic_the_pipeline() {
    quietly(|| {
        let battery = standard_injectors();
        for seed in 0..CASES_PER_INJECTOR {
            let mut rng = Xoshiro256pp::seed_from_u64(0xDEAD_0000 + seed);
            let mut pts = random_walk(&mut rng);
            for inj in &battery {
                inj.inject(&mut pts, &mut rng);
            }
            let ok = catch_unwind(AssertUnwindSafe(|| {
                run_pipeline(&pts, RepairPolicy::DropBad)
            }))
            .is_ok();
            assert!(ok, "pipeline panicked on stacked corruption, seed={seed}");
        }
    });
}

/// Byte-level fuzz of the text format: serialize a clean corpus, mangle
/// the bytes, and demand the lenient reader returns per-record errors —
/// never a panic — and that whatever it recovers satisfies the
/// `Trajectory` invariants and survives repair + preparation.
#[test]
fn byte_mangled_files_never_panic_the_lenient_reader() {
    quietly(|| {
        let mangler = ByteMangler::default();
        for seed in 0..CASES_PER_INJECTOR {
            let mut rng = Xoshiro256pp::seed_from_u64(0xFEED_0000 + seed);
            let corpus: Vec<Trajectory> = (0..rng.random_range(1..5usize))
                .map(|_| loop {
                    if let Ok(t) = Trajectory::new(random_walk(&mut rng)) {
                        break t;
                    }
                })
                .collect();
            let mut bytes = Vec::new();
            io::write_trajectories(&mut bytes, &corpus).unwrap();
            mangler.mangle(&mut bytes, &mut rng);

            let ok = catch_unwind(AssertUnwindSafe(|| {
                let read = io::read_trajectories_lenient(&mut bytes.as_slice()).unwrap();
                // Recovered trajectories uphold the invariants...
                for t in &read.trajectories {
                    assert!(t.points().windows(2).all(|w| w[0].t < w[1].t));
                }
                // ...and the salvage path (repair the raw leftovers,
                // run the measure) completes too.
                for raw in &read.raw_invalid {
                    run_pipeline(raw, RepairPolicy::DropBad);
                }
            }))
            .is_ok();
            assert!(ok, "lenient read pipeline panicked, seed={seed}");
        }
    });
}

/// On clean output the lenient reader is exactly the strict reader:
/// same trajectories, no errors, nothing quarantined.
#[test]
fn lenient_reader_round_trips_clean_output() {
    for seed in 0..32u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0xC1EA_0000 + seed);
        let corpus: Vec<Trajectory> = (0..4)
            .map(|_| loop {
                if let Ok(t) = Trajectory::new(random_walk(&mut rng)) {
                    break t;
                }
            })
            .collect();
        let mut bytes = Vec::new();
        io::write_trajectories(&mut bytes, &corpus).unwrap();

        let strict = io::read_trajectories(&mut bytes.as_slice()).unwrap();
        let lenient = io::read_trajectories_lenient(&mut bytes.as_slice()).unwrap();
        assert!(lenient.errors.is_empty(), "seed={seed}");
        assert!(lenient.raw_invalid.is_empty());
        assert_eq!(lenient.trajectories.len(), strict.len());
        for (a, b) in lenient.trajectories.iter().zip(&strict) {
            assert_eq!(a.points(), b.points());
        }
    }
}

/// Acceptance: a batch containing known-bad trajectories yields a score
/// for every good pair and a report naming each quarantined index.
#[test]
fn degraded_matrix_scores_good_pairs_and_names_the_quarantined() {
    let sts = Sts::new(StsConfig::default(), grid());
    let good = |phase: f64| {
        Trajectory::new(
            (0..8)
                .map(|i| {
                    let t = phase + 12.0 * i as f64;
                    TrajPoint::from_xy(2.5 * t, 60.0, t)
                })
                .collect(),
        )
        .unwrap()
    };
    let bad = Trajectory::from_xyt(&[(10.0, 10.0, 0.0)]).unwrap(); // single point

    let queries = vec![good(0.0), bad.clone(), good(3.0)];
    let candidates = vec![good(6.0), bad, good(9.0)];
    let (matrix, report) = sts.similarity_matrix_degraded(&queries, &candidates);

    assert_eq!(
        report.quarantined_queries,
        vec![(
            1,
            QuarantineReason::Unpreparable(StsError::TrajectoryTooShort { len: 1 })
        )]
    );
    assert_eq!(
        report.quarantined_candidates,
        vec![(
            1,
            QuarantineReason::Unpreparable(StsError::TrajectoryTooShort { len: 1 })
        )]
    );
    assert_eq!(report.panic_count(), 0);
    assert!(!report.is_clean());

    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if i == 1 || j == 1 {
                assert_eq!(*cell, PairOutcome::Quarantined, "({i},{j})");
            } else {
                let s = cell
                    .score()
                    .unwrap_or_else(|| panic!("good pair ({i},{j}) was not scored: {cell:?}"));
                assert!(s.is_finite() && s > 0.0, "({i},{j}): {s}");
            }
        }
    }
}

/// End to end on a corrupted corpus: inject → repair → degraded batch.
/// Whatever survives repair is either scored or named in the report.
#[test]
fn corrupted_corpus_survives_repair_into_degraded_batch() {
    let battery = standard_injectors();
    let mut rng = Xoshiro256pp::seed_from_u64(0xE2E0_0001);
    let mut survivors = Vec::new();
    for k in 0..12 {
        let mut pts = random_walk(&mut rng);
        battery[k % battery.len()].inject(&mut pts, &mut rng);
        let outcome = repair(&pts, &RepairConfig::default()).unwrap();
        survivors.extend(outcome.trajectories);
    }
    // Repair guarantees invariants but not preparability (a 2-point
    // trajectory with one surviving speed sample can still fail KDE);
    // the degraded API absorbs whatever is left.
    let sts = Sts::new(StsConfig::default(), grid());
    let (matrix, report) = sts.similarity_matrix_degraded(&survivors, &survivors);
    assert_eq!(report.panic_count(), 0);
    let quarantined: Vec<usize> = report.quarantined_queries.iter().map(|&(i, _)| i).collect();
    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            match cell {
                PairOutcome::Score(s) => assert!(s.is_finite(), "({i},{j})"),
                PairOutcome::Quarantined => {
                    assert!(quarantined.contains(&i) || quarantined.contains(&j))
                }
                PairOutcome::Panicked
                | PairOutcome::Failed { .. }
                | PairOutcome::Poisoned { .. } => {
                    panic!("({i},{j}) panicked: {cell:?}")
                }
                PairOutcome::Skipped => {
                    panic!("({i},{j}) skipped: degraded batches run unbudgeted")
                }
            }
        }
    }
}
