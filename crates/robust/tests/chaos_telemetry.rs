//! Chaos observability: the fault-injection ledgers and the telemetry
//! plane must tell the same story, end to end.
//!
//! A sharded job runs over a hostile transport with `telemetry: true`;
//! afterwards the job report's merged metrics (coordinator delta plus
//! the workers' wire-shipped snapshots) are reconciled against
//! [`NetChaos`]'s injection ledger and the coordinator's `ShardStats`:
//!
//! * every injected fault kind appears in the metrics delta with
//!   exactly the ledger's count (`robust.net.injected.*`);
//! * detected garbage frames (`shard.frames.corrupt`) equal both the
//!   `ShardStats` count and the ledger's recv-corruption count;
//! * the coordinator's commit tally (`shard.pairs.committed`) equals
//!   the pairs the fleet actually committed — matrix pairs minus
//!   local-fallback pairs — and per-worker attribution sums to it;
//! * on a harmless-by-construction plan (sub-lease delays only), the
//!   fleet-summed `core.pairs.scored` equals the matrix pair count
//!   *exactly*: real subprocess workers own their registries, so
//!   shipped deltas are pure worker work. Under lossy chaos the same
//!   counter is `>=` committed work (expired leases re-score).
//!
//! Tests serialize on one mutex: the metrics registry is process-wide
//! and these assertions are exact deltas.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use sts_core::{
    default_worker_path, ExecMode, JobConfig, ShardOptions, Sts, StsConfig, TileConfig,
};
use sts_geo::{BoundingBox, Grid, Point};
use sts_isolate::{NetDirection, NetFault};
use sts_rng::{Rng, Xoshiro256pp};
use sts_robust::{NetChaos, NetFaultPlan};
use sts_runtime::ShardStats;
use sts_traj::{TrajPoint, Trajectory};

const N_TRAJECTORIES: usize = 16;
const N_PAIRS: u64 = (N_TRAJECTORIES * N_TRAJECTORIES) as u64;
const TILE_PAIRS: usize = 32;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        8.0,
    )
    .unwrap()
}

fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        let t = phase + 12.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

struct TempTiles(PathBuf);

impl TempTiles {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sts-chaos-telemetry-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempTiles(dir)
    }
}

impl Drop for TempTiles {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One sharded run over `plan` with real `sts-worker serve-tcp`
/// subprocesses and telemetry on. `None` when the worker binary is
/// not built (the suite then skips, like the other subprocess suites).
fn telemetry_run(
    seed: u64,
    plan: NetFaultPlan,
    tag: &str,
) -> Option<(ShardStats, Arc<NetChaos>, sts_obs::Snapshot)> {
    let worker = default_worker_path();
    if !worker.is_file() {
        eprintln!(
            "skipping chaos telemetry: worker binary not built at {}",
            worker.display()
        );
        return None;
    }
    let sts = Sts::new(StsConfig::default(), grid());
    let queries = corpus(0x5EA0 + seed, N_TRAJECTORIES);
    let candidates = corpus(0xC0DE + seed, N_TRAJECTORIES);
    let chaos = Arc::new(NetChaos::new(plan));
    let tiles = TempTiles::new(&format!("{tag}-{seed}"));
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(&tiles.0)
    };
    let cfg = JobConfig {
        telemetry: true,
        exec: ExecMode::Sharded(ShardOptions {
            worker: Some(worker),
            workers: 3,
            lease_timeout: Duration::from_millis(500),
            ready_timeout: Duration::from_secs(5),
            hb_every: 4,
            restart_budget: 64,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(500),
            injector: Some(chaos.clone() as Arc<dyn sts_isolate::NetInjector>),
            ..ShardOptions::default()
        }),
        ..JobConfig::default()
    };
    let (_, report) = sts
        .similarity_matrix_tiled(&queries, &candidates, &cfg, &tiling)
        .unwrap();
    assert!(report.is_complete(), "seed={seed}: {report}");
    let shard = report.stats.shard.expect("sharded job reports ShardStats");
    let metrics = report.telemetry.expect("telemetry was requested").metrics;
    Some((shard, chaos, metrics))
}

fn recv_corrupt(chaos: &NetChaos) -> usize {
    chaos
        .injected()
        .iter()
        .filter(|f| f.dir == NetDirection::Recv && f.fault == NetFault::Corrupt)
        .count()
}

/// Mixed chaos: the metrics delta, the `ShardStats` counters and the
/// injection ledger must reconcile exactly wherever the fault class
/// admits exact accounting.
#[test]
fn merged_telemetry_reconciles_with_ledger_and_shard_stats() {
    let _guard = serial();
    let mut injected_total = 0usize;
    for seed in 0..2 {
        let plan = NetFaultPlan {
            seed: 0x0E7C_4A05 ^ seed,
            drop_per_mille: 8,
            delay_per_mille: 10,
            corrupt_per_mille: 8,
            duplicate_per_mille: 8,
            disconnect_per_mille: 5,
            wedge_per_mille: 3,
            delay: Duration::from_millis(5),
        };
        let Some((shard, chaos, metrics)) = telemetry_run(seed, plan, "mixed") else {
            return;
        };
        let counts = chaos.counts();
        injected_total += counts.total();
        // Ledger ↔ telemetry: per-kind injection counters mirror the
        // ledger one-to-one (absent counter == zero fired).
        for (name, ledger) in [
            ("robust.net.injected", counts.total()),
            ("robust.net.injected.drop", counts.dropped),
            ("robust.net.injected.delay", counts.delayed),
            ("robust.net.injected.corrupt", counts.corrupted),
            ("robust.net.injected.duplicate", counts.duplicated),
            ("robust.net.injected.disconnect", counts.disconnected),
            ("robust.net.injected.wedge", counts.wedged),
        ] {
            assert_eq!(
                metrics.counter(name).unwrap_or(0),
                ledger as u64,
                "seed={seed}: {name} drifted from the injection ledger"
            );
        }
        // Detection ↔ ledger ↔ stats: every recv-corruption surfaces
        // as exactly one counted garbage frame, in both views.
        assert_eq!(shard.frames_corrupt, recv_corrupt(&chaos), "seed={seed}");
        assert_eq!(
            metrics.counter("shard.frames.corrupt").unwrap_or(0),
            shard.frames_corrupt as u64,
            "seed={seed}: metrics and ShardStats disagree on corrupt frames"
        );
        // Commit accounting: the fleet committed exactly the pairs the
        // local fallback did not, and per-worker attribution sums to
        // the coordinator's tally.
        let fleet_committed = N_PAIRS - (shard.tiles_local_fallback * TILE_PAIRS) as u64;
        assert_eq!(
            metrics.counter("shard.pairs.committed"),
            Some(fleet_committed),
            "seed={seed}: committed pairs must equal matrix minus fallback ({shard:?})"
        );
        let attributed: u64 = metrics
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("shard.pairs.committed{worker="))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(attributed, fleet_committed, "seed={seed}");
        // Work performed: cumulative worker snapshots ride the wire,
        // so a drop can eat a worker's *final* round before it dies —
        // under lossy chaos the fleet-summed scored count is a lower
        // bound on performed work, not an exact figure (the delay-only
        // test below proves exactness where it is provable).
        assert!(
            metrics.counter("core.pairs.scored").unwrap_or(0) > 0,
            "seed={seed}: no worker-shipped scored-pair telemetry arrived at all"
        );
        assert!(
            shard.telemetry_flushes <= shard.workers_spawned,
            "seed={seed}: more flushes than workers ({shard:?})"
        );
    }
    assert!(injected_total > 0, "the chaos plans never fired");
}

/// Sub-lease delays are harmless by construction, which makes the
/// accounting *fully* exact: no lease expires, no worker restarts, so
/// every pair is scored exactly once somewhere in the fleet and every
/// worker flushes cleanly at shutdown.
#[test]
fn harmless_chaos_makes_fleet_accounting_exact() {
    let _guard = serial();
    for seed in 0..2 {
        let plan = NetFaultPlan {
            delay_per_mille: 300,
            delay: Duration::from_millis(5),
            ..NetFaultPlan::none(0xDE1A_7000 ^ seed)
        };
        let Some((shard, chaos, metrics)) = telemetry_run(seed, plan, "delay") else {
            return;
        };
        assert!(chaos.counts().delayed > 0, "seed={seed}: plan never fired");
        assert_eq!(
            (
                shard.leases_expired,
                shard.worker_restarts,
                shard.tiles_local_fallback
            ),
            (0, 0, 0),
            "seed={seed}: sub-lease delays must be invisible to recovery ({shard:?})"
        );
        assert_eq!(
            metrics.counter("core.pairs.scored"),
            Some(N_PAIRS),
            "seed={seed}: fleet-summed scored pairs == matrix pair count"
        );
        assert_eq!(
            metrics.counter("shard.pairs.committed"),
            Some(N_PAIRS),
            "seed={seed}"
        );
        let attributed: u64 = metrics
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("core.pairs.scored{worker="))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(
            attributed, N_PAIRS,
            "seed={seed}: per-worker attribution sums to the fleet total"
        );
        assert_eq!(
            shard.telemetry_flushes, shard.workers_spawned,
            "seed={seed}: every worker flushes once on a clean shutdown ({shard:?})"
        );
    }
}
