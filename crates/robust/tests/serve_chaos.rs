//! Chaos suite for the streaming co-location service (`sts-serve`):
//! seeded network and disk faults injected at the server's two
//! external seams — the framed transport and the [`Storage`] trait —
//! with injections reconciled against the server's counters *exactly*
//! wherever the fault class admits it.
//!
//! The invariants under attack:
//!
//! * **Exact network accounting** — with faults injected only on the
//!   client→server direction of a ping-only connection, every corrupt
//!   frame surfaces as exactly one counted garbage frame, every
//!   duplicate as exactly one counted dup, and every distinct ping is
//!   applied exactly once; query answers are byte-identical to an
//!   uninjected reference server fed the same pings.
//! * **Full-duplex survival** — with every fault class firing both
//!   ways (drops, delays, corruption, duplicates, disconnects,
//!   wedges), a reconnecting resend-until-acked client still lands
//!   every ping exactly once and the server keeps serving.
//! * **Exact disk accounting** — torn and bit-flipped writes (which
//!   report success) are each caught by read-back verification, and
//!   honest write errors are each retried, with the WAL and snapshot
//!   counters matching the injected ledger split by artifact; a clean
//!   restart of the battered directory answers byte-identically and
//!   leaves no tmp debris.
//! * **Frame fuzz** — seeded byte-mangled frames (flips, deletions,
//!   duplicated lines) never take the server down.
//!
//! Every seeded assertion embeds its seed, so a CI failure (the
//! `serve_chaos` step of `scripts/ci.sh`) is replayable.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use sts_isolate::protocol::write_frame;
use sts_isolate::{NetDirection, NetFault, NetInjector};
use sts_rng::{Rng, Xoshiro256pp};
use sts_robust::{ByteMangler, DiskFault, DiskFaultPlan, FaultyStorage, NetChaos, NetFaultPlan};
use sts_runtime::{FsStorage, Storage};
use sts_serve::{Ping, ServeClient, ServeOptions, Server, ServerHandle};

fn tmp_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sts-serve-chaos-{tag}-{seed}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(opts: ServeOptions, storage: Arc<dyn Storage>) -> ServerHandle {
    Server::start(opts, storage, "127.0.0.1:0").unwrap()
}

/// Seeded random-walk pings over `objects` objects, seq 1..=n*objects.
fn corpus(seed: u64, rounds: u64, objects: u64) -> Vec<Ping> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut pos: Vec<(f64, f64)> = (0..objects)
        .map(|_| (rng.random_range(20.0..80.0), rng.random_range(20.0..80.0)))
        .collect();
    let mut out = Vec::new();
    let mut seq = 0;
    for i in 0..rounds {
        for obj in 0..objects {
            let p = &mut pos[obj as usize];
            p.0 = (p.0 + rng.random_range(-3.0..3.0)).clamp(0.5, 99.5);
            p.1 = (p.1 + rng.random_range(-3.0..3.0)).clamp(0.5, 99.5);
            seq += 1;
            out.push(Ping {
                seq,
                obj,
                t: i as f64 * 4.0 + 0.5 * obj as f64,
                x: p.0,
                y: p.1,
            });
        }
    }
    out
}

/// The query set whose raw replies are the unit of byte-identity
/// comparisons across servers and restarts.
fn probe(c: &mut ServeClient, t_hi: f64) -> Vec<String> {
    vec![
        c.colocate_raw(0, 1, 2.0, t_hi, 7).unwrap(),
        c.colocate_raw(1, 2, 0.0, t_hi / 2.0, 4).unwrap(),
        c.topk_raw(0, 1.0, t_hi, 6, 3).unwrap(),
    ]
}

/// Forwards faults only on the client→server direction, so the ledger
/// counts exactly the faults the *server's ingest path* experienced.
struct SendOnly(Arc<NetChaos>);

impl NetInjector for SendOnly {
    fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
        match dir {
            NetDirection::Send => self.0.fault_for(index, dir),
            NetDirection::Recv => None,
        }
    }
}

/// Exact reconciliation: faults on the ping path only, no delays (a
/// delayed reply would trigger a resend and muddy the dup count), no
/// disconnects/wedges (those end the connection, not the accounting).
/// Every corrupt fault must surface as one garbage frame, every
/// duplicate as one dup, and the final answers must match a fault-free
/// reference byte for byte.
#[test]
fn send_chaos_reconciles_exactly_against_reference() {
    let mut faults_fired_somewhere = 0usize;
    for seed in 0..4u64 {
        let pings = corpus(0xC0C0_0000 ^ seed, 20, 3);
        let n = pings.len() as u64;
        let t_hi = 20.0 * 4.0;

        // Reference run: same pings, no injector.
        let ref_dir = tmp_dir("netref", seed);
        let href = start(ServeOptions::new(&ref_dir), Arc::new(FsStorage));
        let mut cref = ServeClient::connect(href.addr()).unwrap();
        for p in &pings {
            cref.ingest_until_acked(p).unwrap();
        }
        cref.flush().unwrap();
        let want = probe(&mut cref, t_hi);
        drop(cref);
        href.shutdown();
        let _ = std::fs::remove_dir_all(&ref_dir);

        // Chaos run: the injected connection carries only `p` frames;
        // flush/queries/stats ride a clean second connection so the
        // ledger maps one-to-one onto the ingest counters.
        let chaos = Arc::new(NetChaos::new(NetFaultPlan {
            drop_per_mille: 40,
            corrupt_per_mille: 40,
            duplicate_per_mille: 40,
            ..NetFaultPlan::none(0x5E4D_C4A0 ^ seed)
        }));
        let dir = tmp_dir("netchaos", seed);
        let h = start(ServeOptions::new(&dir), Arc::new(FsStorage));
        let mut dirty = ServeClient::connect_with_injector(
            h.addr(),
            Some(Arc::new(SendOnly(Arc::clone(&chaos)))),
        )
        .unwrap();
        // A dropped ping costs one full read-deadline before the
        // resend; keep it short enough for CI, long enough that a
        // merely-slow reply is never mistaken for a drop (a spurious
        // resend would inflate the dup count and break exactness).
        dirty
            .set_read_deadline(Some(Duration::from_secs(1)))
            .unwrap();
        for p in &pings {
            dirty.ingest_until_acked(p).unwrap();
        }
        let mut clean = ServeClient::connect(h.addr()).unwrap();
        assert_eq!(clean.flush().unwrap(), n, "seed {seed}: all pings durable");
        let got = probe(&mut clean, t_hi);
        assert_eq!(
            got, want,
            "seed {seed}: answers under send-chaos must match the reference"
        );
        let counts = chaos.counts();
        faults_fired_somewhere += counts.total();
        let stats = h.stats();
        assert_eq!(
            stats.get("ingest_applied"),
            Some(n),
            "seed {seed}: every distinct ping applied exactly once"
        );
        assert_eq!(
            stats.get("ingest_garbage"),
            Some(counts.corrupted as u64),
            "seed {seed}: every corrupt frame surfaces as one garbage frame"
        );
        assert_eq!(
            stats.get("ingest_dup"),
            Some(counts.duplicated as u64),
            "seed {seed}: every duplicated frame surfaces as one dup"
        );
        assert_eq!(
            stats.get("shed_busy"),
            Some(0),
            "seed {seed}: no overload here"
        );
        assert_eq!(
            counts.delayed + counts.disconnected + counts.wedged,
            0,
            "seed {seed}: plan only fires drop/corrupt/duplicate"
        );
        drop((dirty, clean));
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        faults_fired_somewhere > 0,
        "rates must actually fire across the seeds or the suite proves nothing"
    );
}

/// Survival under every fault class both ways: the client reconnects
/// through disconnects and wedges, resends through drops and garbage,
/// and every ping still lands exactly once.
#[test]
fn full_duplex_chaos_lands_every_ping_exactly_once() {
    for seed in 0..3u64 {
        let pings = corpus(0xD0_0D ^ seed, 12, 2);
        let n = pings.len() as u64;
        let chaos = Arc::new(NetChaos::new(NetFaultPlan {
            drop_per_mille: 30,
            delay_per_mille: 30,
            corrupt_per_mille: 30,
            duplicate_per_mille: 30,
            disconnect_per_mille: 20,
            wedge_per_mille: 10,
            delay: Duration::from_millis(5),
            ..NetFaultPlan::none(0xF0_11 ^ seed)
        }));
        let dir = tmp_dir("duplex", seed);
        let h = start(ServeOptions::new(&dir), Arc::new(FsStorage));
        let mut next = 0usize;
        let mut sessions = 0u32;
        while next < pings.len() {
            sessions += 1;
            assert!(
                sessions < 300,
                "seed {seed}: {next}/{} pings after {sessions} sessions",
                pings.len()
            );
            let Ok(mut c) = ServeClient::connect_with_injector(
                h.addr(),
                Some(Arc::clone(&chaos) as Arc<dyn NetInjector>),
            ) else {
                continue;
            };
            // Fail fast on a wedged connection: a handful of resends
            // against silence, then reconnect.
            c.max_resends = 4;
            let _ = c.set_read_deadline(Some(Duration::from_millis(150)));
            while next < pings.len() {
                match c.ingest_until_acked(&pings[next]) {
                    Ok(_) => next += 1,
                    Err(_) => break, // reconnect through the fault
                }
            }
        }
        let mut clean = ServeClient::connect(h.addr()).unwrap();
        assert_eq!(clean.flush().unwrap(), n, "seed {seed}: all pings durable");
        let stats = h.stats();
        assert_eq!(
            stats.get("ingest_applied"),
            Some(n),
            "seed {seed}: exactly-once apply despite resends and dups"
        );
        let (_, v) = clean.colocate(0, 1, 2.0, 40.0, 5).unwrap();
        assert!(v.is_finite(), "seed {seed}: still answering queries");
        assert!(
            chaos.counts().total() > 0,
            "seed {seed}: the duplex plan must actually fire"
        );
        drop(clean);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn under(path: &Path, dir_name: &str) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_str() == Some(dir_name))
}

fn ledger_split(faulty: &FaultyStorage, dir_name: &str) -> (u64, u64) {
    let mut silent = 0u64; // reported success, corrupted payload
    let mut honest = 0u64; // reported an error
    for f in faulty.injected() {
        if !under(&f.path, dir_name) {
            continue;
        }
        match f.fault {
            DiskFault::TornWrite | DiskFault::BitFlip => silent += 1,
            DiskFault::Enospc | DiskFault::StaleTmp => honest += 1,
        }
    }
    (silent, honest)
}

/// Exact disk reconciliation: every silent corruption (torn write,
/// bit flip) is caught by read-back verification and every honest
/// error is retried, per artifact; then a clean restart of the
/// battered directory answers byte-identically with no tmp debris.
#[test]
fn disk_chaos_reconciles_exactly_and_recovers_clean() {
    for seed in 0..3u64 {
        let pings = corpus(0xD15C ^ seed, 25, 2);
        let n = pings.len() as u64;
        let t_hi = 25.0 * 4.0;
        let dir = tmp_dir("disk", seed);
        let faulty = Arc::new(FaultyStorage::new(DiskFaultPlan {
            torn_per_mille: 60,
            flip_per_mille: 60,
            enospc_per_mille: 60,
            stale_per_mille: 60,
            ..DiskFaultPlan::none(0xBAD_D15C ^ seed)
        }));
        let mut opts = ServeOptions::new(&dir);
        opts.commit_every = 2;
        opts.segment_records = 16;
        opts.snapshot_every = 20;
        let h = start(opts, Arc::clone(&faulty) as Arc<dyn Storage>);
        let mut c = ServeClient::connect(h.addr()).unwrap();
        for p in &pings {
            c.ingest_until_acked(p).unwrap();
        }
        assert_eq!(c.flush().unwrap(), n, "seed {seed}");
        c.snapshot().unwrap();
        let want = probe(&mut c, t_hi);
        drop(c);
        let stats = h.stats();
        h.shutdown();
        // Reconcile after shutdown: the ledger and the counters are
        // both final, and commit-with-empty-pending writes nothing.
        let (wal_silent, wal_honest) = ledger_split(&faulty, "wal");
        let (snap_silent, snap_honest) = ledger_split(&faulty, "snap");
        assert!(
            faulty.injected().len() > 4,
            "seed {seed}: the disk plan must actually fire"
        );
        assert_eq!(
            stats.get("wal_verify_failed"),
            Some(wal_silent),
            "seed {seed}: every silent WAL corruption caught by read-back"
        );
        assert_eq!(
            stats.get("wal_append_errors"),
            Some(wal_honest),
            "seed {seed}: every honest WAL write error retried"
        );
        assert_eq!(
            stats.get("snapshot_verify_failed"),
            Some(snap_silent),
            "seed {seed}: every silent snapshot corruption caught"
        );
        assert_eq!(
            stats.get("snapshot_write_errors"),
            Some(snap_honest),
            "seed {seed}: every honest snapshot write error retried"
        );
        // Clean restart over the battered directory: same answers,
        // no debris.
        let h2 = start(ServeOptions::new(&dir), Arc::new(FsStorage));
        assert_eq!(h2.durable_seq(), n, "seed {seed}: nothing acked was lost");
        let mut c2 = ServeClient::connect(h2.addr()).unwrap();
        assert_eq!(
            probe(&mut c2, t_hi),
            want,
            "seed {seed}: recovery from a fault-battered disk is byte-identical"
        );
        drop(c2);
        h2.shutdown();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let p = entry.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    assert!(
                        p.extension().map(|e| e != "tmp").unwrap_or(true),
                        "seed {seed}: tmp debris survived recovery: {}",
                        p.display()
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Seeded frame fuzz: barrages of byte-mangled (flipped, torn,
/// line-duplicated) frames must never take the server down — after
/// every barrage a fresh clean client still gets served.
#[test]
fn mangled_frames_never_kill_the_server() {
    let dir = tmp_dir("fuzz", 0);
    let h = start(ServeOptions::new(&dir), Arc::new(FsStorage));
    let mangler = ByteMangler::default();
    let templates = [
        "p 1 0 4010000000000000 4024000000000000 4034000000000000",
        "coloc 0 1 4000000000000000 4024000000000000 5",
        "topk 0 4000000000000000 4024000000000000 5 3",
        "hello",
        "stats",
        "flush",
    ];
    for seed in 0..6u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0xF422 ^ seed);
        // Writes may fail once the server cuts a poisoned connection;
        // that is the server defending itself, not a test failure.
        if let Ok(mut stream) = TcpStream::connect(h.addr()) {
            for _ in 0..24 {
                let template = templates[rng.random_range(0..templates.len())];
                let mut bytes = Vec::new();
                write_frame(&mut bytes, template).unwrap();
                mangler.mangle(&mut bytes, &mut rng);
                if stream.write_all(&bytes).is_err() {
                    break;
                }
            }
        }
        // The server must still be serving after every barrage.
        let mut c = ServeClient::connect(h.addr()).unwrap();
        let p = Ping {
            seq: 1000 + seed,
            obj: 9,
            t: seed as f64,
            x: 50.0,
            y: 50.0,
        };
        c.ingest_until_acked(&p).unwrap();
        assert!(
            c.stats_get("ingest_applied").unwrap() >= seed + 1,
            "seed {seed}: server lost pings after fuzz"
        );
        drop(c);
    }
    h.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
