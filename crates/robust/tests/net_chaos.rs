//! Network-chaos suite for the sharded tile coordinator: seeded frame
//! drops, delays, corruption, duplicates, disconnects and wedges
//! injected into the coordinator↔worker transport via [`NetChaos`].
//!
//! The invariants under attack are the lease/commit contract of
//! `sts_core::shard` and the tiled engine's recovery semantics:
//!
//! * a sharded job on a hostile network produces the **byte-identical**
//!   matrix of an in-process run, for every seed — network faults cost
//!   retries and restarts, never correctness, and never a double
//!   commit;
//! * injections reconcile against detections **exactly** where the
//!   fault class admits it: every corrupted coordinator-bound frame
//!   surfaces as a counted garbage frame, delays below half the lease
//!   timeout are harmless by construction, and the lease ledger
//!   conserves (every granted lease is either committed or expired);
//! * when chaos (or a fleet that cannot spawn at all) takes every
//!   worker down, the job degrades to local compute instead of
//!   failing.
//!
//! Every seeded assertion embeds its seed, so a CI failure (the
//! `net_chaos` step of `scripts/ci.sh`) is replayable.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use sts_core::{
    ExecMode, JobConfig, PairOutcome, ShardOptions, Sts, StsConfig, TileConfig, WorkerHandle,
    WorkerLauncher,
};
use sts_geo::{BoundingBox, Grid, Point};
use sts_isolate::{NetDirection, NetFault};
use sts_rng::{Rng, Xoshiro256pp};
use sts_robust::{NetChaos, NetFaultPlan};
use sts_traj::{TrajPoint, Trajectory};

const N_TRAJECTORIES: usize = 16;
const TILE_PAIRS: usize = 32;
const N_TILES: usize = N_TRAJECTORIES * N_TRAJECTORIES / TILE_PAIRS;
const SEEDS: u64 = 8;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        8.0,
    )
    .unwrap()
}

/// Seeded straight walkers: clean data, so every failure below is
/// injected by the transport, not latent in the corpus.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        let t = phase + 12.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// In-thread workers speaking the wire protocol over real loopback
/// sockets: every transport byte is real, only the process boundary is
/// elided (the SIGKILL suite in `tests/shard_crash.rs` covers that).
struct ThreadLauncher;

struct ThreadHandle {
    stream: TcpStream,
}

impl WorkerHandle for ThreadHandle {
    fn kill(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl WorkerLauncher for ThreadLauncher {
    fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        let writer = stream.try_clone()?;
        std::thread::spawn(move || {
            let mut r = io::BufReader::new(reader);
            let mut w = writer;
            let _ = sts_core::serve(&mut r, &mut w);
        });
        Ok(Box::new(ThreadHandle { stream }))
    }
}

/// RAII tile directory under the system tmp dir.
struct TempTiles(PathBuf);

impl TempTiles {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-net-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempTiles(dir)
    }
}

impl Drop for TempTiles {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn outcome_bits(cell: &PairOutcome) -> (u8, u64) {
    match cell {
        PairOutcome::Score(s) => (0, s.to_bits()),
        PairOutcome::Quarantined => (1, 0),
        PairOutcome::Panicked => (2, 0),
        PairOutcome::Failed { attempts } => (3, *attempts as u64),
        PairOutcome::Skipped => (4, 0),
        PairOutcome::Poisoned { .. } => (5, 0),
    }
}

fn matrix_bits(matrix: &[Vec<PairOutcome>]) -> Vec<Vec<(u8, u64)>> {
    matrix
        .iter()
        .map(|row| row.iter().map(outcome_bits).collect())
        .collect()
}

/// Lease timeout used by every plan here; `NetFaultPlan::delay` stays
/// below half of it so delayed frames can never expire a lease.
const LEASE: Duration = Duration::from_millis(250);

fn shard_opts(chaos: &Arc<NetChaos>) -> ShardOptions {
    ShardOptions {
        workers: 3,
        lease_timeout: LEASE,
        // In-thread workers answer `ready` in milliseconds; a short
        // deadline keeps chaos-eaten ready frames from stalling the
        // suite.
        ready_timeout: Duration::from_millis(800),
        hb_every: 4,
        restart_budget: 64,
        backoff_base: Duration::from_micros(50),
        backoff_cap: Duration::from_micros(500),
        launcher: Some(Arc::new(ThreadLauncher)),
        injector: Some(chaos.clone() as Arc<dyn sts_isolate::NetInjector>),
        ..ShardOptions::default()
    }
}

/// Runs the same corpus in-process (reference) and sharded under
/// `plan`, asserts byte-identity and lease conservation, and returns
/// `(ShardStats, NetChaos ledger)` for fault-class-specific checks.
fn chaotic_run(
    seed: u64,
    plan: NetFaultPlan,
    tag: &str,
) -> (sts_runtime::ShardStats, Arc<NetChaos>) {
    let sts = Sts::new(StsConfig::default(), grid());
    let queries = corpus(0x5EA0 + seed, N_TRAJECTORIES);
    let candidates = corpus(0xC0DE + seed, N_TRAJECTORIES);
    let cfg = JobConfig::default();

    let (reference, ref_report) = sts
        .similarity_matrix_supervised(&queries, &candidates, &cfg)
        .unwrap();
    assert!(ref_report.is_complete(), "seed={seed}: {ref_report}");

    let chaos = Arc::new(NetChaos::new(plan));
    let tiles = TempTiles::new(&format!("{tag}-{seed}"));
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(&tiles.0)
    };
    let cfg = JobConfig {
        exec: ExecMode::Sharded(shard_opts(&chaos)),
        ..JobConfig::default()
    };
    let (sharded, report) = sts
        .similarity_matrix_tiled(&queries, &candidates, &cfg, &tiling)
        .unwrap();
    assert!(report.is_complete(), "seed={seed}: {report}");
    assert_eq!(
        matrix_bits(&sharded),
        matrix_bits(&reference),
        "seed={seed}: sharded matrix under network chaos differs from in-process run"
    );

    let shard = report.stats.shard.expect("sharded job reports ShardStats");
    // Lease conservation: nothing stops this run, so every granted
    // lease either committed a tile on the fleet or expired. The fleet
    // committed exactly the tiles local fallback did not.
    assert_eq!(
        shard.tiles_leased,
        (N_TILES - shard.tiles_local_fallback) + shard.leases_expired,
        "seed={seed}: lease ledger does not conserve ({shard:?})"
    );
    (shard, chaos)
}

/// Recv-direction corrupt injections from the ledger — each one must
/// surface as exactly one counted garbage frame at the coordinator.
fn recv_corrupt(chaos: &NetChaos) -> usize {
    chaos
        .injected()
        .iter()
        .filter(|f| f.dir == NetDirection::Recv && f.fault == NetFault::Corrupt)
        .count()
}

/// The acceptance criterion: for 8 seeds, a sharded job over a
/// transport that drops, delays, corrupts, duplicates, disconnects and
/// wedges produces the byte-identical matrix of an in-process run,
/// with corruption detection reconciling exactly against the injection
/// ledger — and the battery actually exercises every fault class.
#[test]
fn mixed_network_chaos_is_byte_identical_across_seeds() {
    let mut totals = sts_robust::NetFaultCounts::default();
    let mut expired_total = 0usize;
    let mut restarts_total = 0usize;
    for seed in 0..SEEDS {
        let plan = NetFaultPlan {
            seed: 0x0E7C_4A05 ^ seed,
            drop_per_mille: 8,
            delay_per_mille: 10,
            corrupt_per_mille: 8,
            duplicate_per_mille: 8,
            disconnect_per_mille: 5,
            wedge_per_mille: 3,
            delay: Duration::from_millis(5),
        };
        let (shard, chaos) = chaotic_run(seed, plan, "mixed");
        assert_eq!(
            shard.frames_corrupt,
            recv_corrupt(&chaos),
            "seed={seed}: coordinator-side garbage frames must reconcile exactly \
             against injected recv-corruption ({shard:?})"
        );
        let counts = chaos.counts();
        totals.dropped += counts.dropped;
        totals.delayed += counts.delayed;
        totals.corrupted += counts.corrupted;
        totals.duplicated += counts.duplicated;
        totals.disconnected += counts.disconnected;
        totals.wedged += counts.wedged;
        expired_total += shard.leases_expired;
        restarts_total += shard.worker_restarts;
    }
    // Non-vacuity: the rates must actually have fired every class
    // across the seed battery, and the chaos must actually have forced
    // the recovery machinery to engage.
    for (kind, n) in [
        ("drop", totals.dropped),
        ("delay", totals.delayed),
        ("corrupt", totals.corrupted),
        ("duplicate", totals.duplicated),
        ("disconnect", totals.disconnected),
        ("wedge", totals.wedged),
    ] {
        assert!(n > 0, "fault kind {kind} never fired across {SEEDS} seeds");
    }
    assert!(
        expired_total > 0,
        "chaos never expired a lease — the suite is not stressing recovery"
    );
    assert!(
        restarts_total > 0,
        "chaos never restarted a worker — the suite is not stressing failover"
    );
}

/// Delays below half the lease timeout are harmless *by construction*:
/// no lease expires, no worker restarts, and the matrix is
/// byte-identical. This is the exact-detection claim for the delay
/// class.
#[test]
fn sub_lease_delays_are_provably_harmless() {
    for seed in 0..2 {
        let plan = NetFaultPlan {
            delay_per_mille: 300,
            delay: Duration::from_millis(5),
            ..NetFaultPlan::none(0xDE1A_7000 ^ seed)
        };
        let (shard, chaos) = chaotic_run(seed, plan, "delay");
        assert!(
            chaos.counts().delayed > 0,
            "seed={seed}: the delay plan never fired"
        );
        assert_eq!(
            (
                shard.leases_expired,
                shard.worker_restarts,
                shard.frames_corrupt
            ),
            (0, 0, 0),
            "seed={seed}: sub-lease delays must be invisible to recovery ({shard:?})"
        );
    }
}

/// Duplicated frames are absorbed by the at-most-once commit gate:
/// byte-identical output with every replayed result refused, never
/// double-committed (`chaotic_run` asserts byte-identity, and the
/// engine spills each tile exactly once). Duplicated *control* frames
/// are not free — a second `begin` is a protocol violation that kills
/// the worker — so restarts are legitimate here; what must never
/// happen is a duplicate changing the answer.
#[test]
fn duplicates_never_double_commit() {
    let mut fired = 0usize;
    for seed in 0..2 {
        let plan = NetFaultPlan {
            duplicate_per_mille: 250,
            ..NetFaultPlan::none(0xD0_0B1E ^ seed)
        };
        let (_, chaos) = chaotic_run(seed, plan, "dup");
        fired += chaos.counts().duplicated;
    }
    assert!(fired > 0, "the duplicate plan never fired");
}

/// Corruption-only chaos: every recv-direction injection is detected
/// as exactly one garbage frame, and the job still completes
/// byte-identically (send-direction corruption garbles the worker's
/// input and is recovered by respawn).
#[test]
fn every_corrupted_frame_is_detected_exactly_once() {
    let mut fired = 0usize;
    for seed in 0..3 {
        let plan = NetFaultPlan {
            corrupt_per_mille: 60,
            ..NetFaultPlan::none(0xC0_44B7 ^ seed)
        };
        let (shard, chaos) = chaotic_run(seed, plan, "corrupt");
        assert_eq!(
            shard.frames_corrupt,
            recv_corrupt(&chaos),
            "seed={seed}: garbage-frame count drifted from the injection ledger ({shard:?})"
        );
        fired += chaos.counts().corrupted;
    }
    assert!(fired > 0, "the corruption plan never fired");
}

/// Lossy chaos only (drops, disconnects, wedges): the classes that
/// silence or sever connections. Leases expire, workers restart, and
/// the matrix still comes back byte-identical.
#[test]
fn lossy_chaos_recovers_through_leases_and_restarts() {
    let mut expired = 0usize;
    for seed in 0..2 {
        let plan = NetFaultPlan {
            drop_per_mille: 15,
            disconnect_per_mille: 10,
            wedge_per_mille: 5,
            ..NetFaultPlan::none(0x1055_1000 ^ seed)
        };
        let (shard, chaos) = chaotic_run(seed, plan, "lossy");
        assert!(
            chaos.counts().lossy() > 0,
            "seed={seed}: the lossy plan never fired"
        );
        expired += shard.leases_expired + shard.worker_restarts;
    }
    assert!(
        expired > 0,
        "lossy chaos never engaged lease expiry or worker restart"
    );
}
