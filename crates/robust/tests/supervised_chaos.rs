//! Chaos suite for the supervised batch runtime: panics and slow
//! pairs injected into real 64-trajectory similarity jobs.
//!
//! PR 2's chaos suite attacks the *data* (corrupt coordinates, mangled
//! bytes); this one attacks the *operation*: cells that panic once,
//! cells that panic forever, cells that wedge. The invariants under
//! attack are the runtime's, not the measure's:
//!
//! * a job under injection still terminates under its deadline, with
//!   every healthy cell scored and every poisoned cell named in the
//!   [`JobReport`] — partial-but-consistent, never hung, never dead;
//! * crash (cancel mid-job) → resume from checkpoint reproduces an
//!   uninterrupted run's matrix byte for byte, *including* the failed
//!   cells, across 8 seeds;
//! * a corpus of wedged-slow pairs cannot outlive the wall-clock
//!   deadline by more than one chunk's worth of work.
//!
//! Every seeded assertion embeds its seed, so a CI failure (the
//! `runtime` step of `scripts/ci.sh`) is replayable.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use sts_core::{CheckpointConfig, JobConfig, PairOutcome, Sts, StsConfig};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::{Budget, FaultPlan, JobState, RetryPolicy};
use sts_traj::{TrajPoint, Trajectory};

const N_TRAJECTORIES: usize = 64;
const N_PAIRS: usize = N_TRAJECTORIES * N_TRAJECTORIES;
const SEEDS: u64 = 8;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        8.0,
    )
    .unwrap()
}

/// A seeded corpus of straight walkers with varied lanes, phases and
/// speeds — clean data, so every fault below is injected, not latent.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        let t = phase + 12.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// The chaos mix: ~3% of pairs panic once then heal, ~1% panic on
/// every attempt, ~0.5% wedge for 2 ms.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed: 0xFA17 ^ seed,
        slow_per_mille: 5,
        transient_per_mille: 30,
        transient_failures: 1,
        persistent_per_mille: 10,
        slow_for: Duration::from_millis(2),
        ..FaultPlan::default()
    }
}

/// Fast-backoff retry policy so 8 seeded jobs stay CI-sized.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff_base: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        seed: 0xBAC0FF,
    }
}

struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-supervised-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempCkpt(dir.join(format!("{tag}.ckpt")))
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

/// A comparable, bit-exact rendering of one cell outcome.
fn outcome_bits(cell: &PairOutcome) -> (u8, u64) {
    match cell {
        PairOutcome::Score(s) => (0, s.to_bits()),
        PairOutcome::Quarantined => (1, 0),
        PairOutcome::Panicked => (2, 0),
        PairOutcome::Failed { attempts } => (3, *attempts as u64),
        PairOutcome::Skipped => (4, 0),
        // Process faults never fire on the in-process path; the arm
        // exists so this stays exhaustive.
        PairOutcome::Poisoned { .. } => (5, 0),
    }
}

fn matrix_bits(matrix: &[Vec<PairOutcome>]) -> Vec<Vec<(u8, u64)>> {
    matrix
        .iter()
        .map(|row| row.iter().map(outcome_bits).collect())
        .collect()
}

/// Runs `f` with panic output silenced (this suite injects panics on
/// purpose; hundreds of default-hook backtraces would bury a genuine
/// failure).
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The acceptance criterion: for 8 seeds, a 64-trajectory matrix job
/// under injected panics and slow pairs (1) completes under its
/// deadline with the failed cells named in the report, and (2) a crash
/// (cancel mid-job) followed by a resume from checkpoint reproduces
/// the uninterrupted run's matrix byte for byte.
#[test]
fn chaos_job_meets_deadline_names_failures_and_resumes_byte_identical() {
    quietly(|| {
        for seed in 0..SEEDS {
            let sts = Sts::new(StsConfig::default(), grid());
            let qs = corpus(0xC405 + seed, N_TRAJECTORIES);
            let plan = chaos_plan(seed);
            let deadline = Duration::from_secs(120);
            let base = JobConfig {
                budget: Budget::with_deadline(deadline),
                retry: fast_retry(),
                chunk_pairs: 32,
                soft_timeout: Some(Duration::from_millis(1)),
                fault: Some(plan.clone()),
                ..JobConfig::default()
            };

            // Uninterrupted run under injection.
            let started = Instant::now();
            let (full, report) = sts.similarity_matrix_supervised(&qs, &qs, &base).unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed < deadline,
                "seed={seed}: job blew its deadline ({elapsed:?})"
            );
            assert_eq!(report.state(), JobState::Degraded, "seed={seed}: {report}");
            assert!(report.is_complete(), "seed={seed}: {report}");

            // Every persistently poisoned pair — and nothing else — is
            // reported failed, with the full retry budget consumed.
            let expected: Vec<(usize, usize)> = plan
                .persistent_pairs(N_PAIRS)
                .iter()
                .map(|&lin| (lin / N_TRAJECTORIES, lin % N_TRAJECTORIES))
                .collect();
            assert!(!expected.is_empty(), "seed={seed}: plan injected nothing");
            let mut reported = report.batch.failed_pairs.clone();
            reported.sort_unstable();
            assert_eq!(reported, expected, "seed={seed}");
            for &(i, j) in &expected {
                assert_eq!(
                    full[i][j],
                    PairOutcome::Failed {
                        attempts: fast_retry().max_retries + 1
                    },
                    "seed={seed}: ({i},{j})"
                );
            }
            // Transient panics healed through retries...
            assert!(
                report.stats.retries > report.batch.failed_count() as u64,
                "seed={seed}: no transient retries recorded ({report})"
            );
            // ...and the watchdog marked the wedged-slow chunks.
            assert!(
                !report.stats.slow_chunks.is_empty(),
                "seed={seed}: no slow chunk marked ({report})"
            );

            // Crash: checkpoint every chunk, cancel via a mid-job pair
            // budget, then resume under the same fault plan.
            let ckpt = TempCkpt::new(&format!("chaos-{seed}"));
            let crash = JobConfig {
                budget: Budget::with_max_pairs(N_PAIRS / 2).deadline(deadline),
                checkpoint: Some(CheckpointConfig {
                    path: ckpt.0.clone(),
                    flush_every_chunks: 1,
                }),
                ..base.clone()
            };
            let (_partial, crash_report) =
                sts.similarity_matrix_supervised(&qs, &qs, &crash).unwrap();
            assert!(
                !crash_report.is_complete(),
                "seed={seed}: crash run finished ({crash_report})"
            );
            assert!(
                crash_report.stats.checkpoint_flushes > 0,
                "seed={seed}: nothing checkpointed"
            );

            let resume = JobConfig {
                checkpoint: Some(CheckpointConfig::new(ckpt.0.clone())),
                ..base.clone()
            };
            let (resumed, resume_report) =
                sts.similarity_matrix_supervised(&qs, &qs, &resume).unwrap();
            assert_eq!(
                resume_report.state(),
                JobState::Degraded,
                "seed={seed}: {resume_report}"
            );
            assert!(
                resume_report.stats.pairs_resumed > 0,
                "seed={seed}: checkpoint restored nothing"
            );
            assert_eq!(
                matrix_bits(&resumed),
                matrix_bits(&full),
                "seed={seed}: resumed matrix differs from uninterrupted run"
            );
        }
    });
}

/// Liveness under wedging: a corpus where *every* pair sleeps longer
/// than the deadline's headroom must still return promptly — the
/// boundary checks stop dealing work, completed chunks survive, and
/// nothing is mislabelled as failed.
#[test]
fn wedged_slow_pairs_cannot_outlive_the_deadline() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(0x51_0e, 16); // 256 pairs, every one wedged
    let plan = FaultPlan {
        seed: 1,
        slow_per_mille: 1000,
        slow_for: Duration::from_millis(20),
        ..FaultPlan::default()
    };
    // Sequentially the job would sleep ≥ 256 × 20 ms ≈ 5 s; the
    // deadline allows ~100 ms plus at most one in-flight chunk per
    // worker (4 pairs × 20 ms).
    let deadline = Duration::from_millis(100);
    let cfg = JobConfig {
        budget: Budget::with_deadline(deadline),
        chunk_pairs: 4,
        soft_timeout: Some(Duration::from_millis(5)),
        fault: Some(plan),
        ..JobConfig::default()
    };
    let started = Instant::now();
    let (matrix, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline did not bound the wedged job ({elapsed:?})"
    );
    assert_eq!(report.state(), JobState::DeadlineExceeded, "{report}");
    assert_eq!(report.batch.failed_count(), 0, "{report}");
    assert_eq!(report.batch.panic_count(), 0, "{report}");
    assert!(report.stats.pairs_skipped > 0, "{report}");
    assert!(
        !report.stats.slow_chunks.is_empty(),
        "watchdog missed the wedge ({report})"
    );
    // Partial but consistent: every cell is either a real score or an
    // honestly reported skip.
    for row in &matrix {
        for cell in row {
            match cell {
                PairOutcome::Score(s) => assert!(s.is_finite(), "{s}"),
                PairOutcome::Skipped => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
}
