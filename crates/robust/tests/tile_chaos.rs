//! Disk-chaos suite for the out-of-core tiled matrix engine: seeded
//! torn writes, bit flips, ENOSPC and crash-before-rename injected
//! into real tiled similarity jobs via [`FaultyStorage`].
//!
//! The invariants under attack are the tile store's durability
//! contract and the engine's resume semantics:
//!
//! * a tiled job on a faulty disk produces the **byte-identical**
//!   matrix of an in-memory supervised run, for every seed — faults
//!   cost durability, never correctness;
//! * every injected corruption is **detected** (quarantined and
//!   recomputed or served from memory), never silently read back —
//!   the suite asserts *exact* counts against the injection log;
//! * a run interrupted mid-job resumes from its tile directory to the
//!   byte-identical full result, and crash debris (`*.tmp`) is swept
//!   and counted on the next open.
//!
//! Every seeded assertion embeds its seed, so a CI failure (the
//! `tile_chaos` step of `scripts/ci.sh`) is replayable.

use std::path::PathBuf;
use std::sync::Arc;
use sts_core::{JobConfig, PairOutcome, Sts, StsConfig, TileConfig};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::{Rng, Xoshiro256pp};
use sts_robust::{DiskFault, DiskFaultPlan, FaultyStorage};
use sts_runtime::{Budget, FaultPlan, JobState, RetryPolicy, Storage};
use sts_traj::{TrajPoint, Trajectory};

const N_TRAJECTORIES: usize = 32;
const N_PAIRS: usize = N_TRAJECTORIES * N_TRAJECTORIES;
const TILE_PAIRS: usize = 64;
const SEEDS: u64 = 8;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        8.0,
    )
    .unwrap()
}

/// Seeded straight walkers (same shape as the supervised chaos suite):
/// clean data, so every fault below is injected, not latent.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        let t = phase + 12.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// Compute-side chaos, layered *under* the disk chaos: transient
/// panics heal through retries, persistent ones become Failed cells —
/// byte-identity must hold for those too.
fn cell_chaos(seed: u64) -> FaultPlan {
    FaultPlan {
        seed: 0xFA17 ^ seed,
        transient_per_mille: 20,
        transient_failures: 1,
        persistent_per_mille: 5,
        ..FaultPlan::default()
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff_base: std::time::Duration::from_micros(20),
        backoff_cap: std::time::Duration::from_micros(200),
        seed: 0xBAC0FF,
    }
}

fn base_cfg(seed: u64) -> JobConfig {
    JobConfig {
        retry: fast_retry(),
        chunk_pairs: 16,
        fault: Some(cell_chaos(seed)),
        ..JobConfig::default()
    }
}

/// RAII tile directory under the system tmp dir.
struct TempTiles(PathBuf);

impl TempTiles {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-tile-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempTiles(dir)
    }
}

impl Drop for TempTiles {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn outcome_bits(cell: &PairOutcome) -> (u8, u64) {
    match cell {
        PairOutcome::Score(s) => (0, s.to_bits()),
        PairOutcome::Quarantined => (1, 0),
        PairOutcome::Panicked => (2, 0),
        PairOutcome::Failed { attempts } => (3, *attempts as u64),
        PairOutcome::Skipped => (4, 0),
        PairOutcome::Poisoned { .. } => (5, 0),
    }
}

fn matrix_bits(matrix: &[Vec<PairOutcome>]) -> Vec<Vec<(u8, u64)>> {
    matrix
        .iter()
        .map(|row| row.iter().map(outcome_bits).collect())
        .collect()
}

fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// `*.tile` files currently in `dir` (absent dir counts as none).
fn tile_files(dir: &PathBuf) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut v: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tile"))
        .collect();
    v.sort();
    v
}

/// The acceptance criterion: for 8 seeds, a tiled job on a disk that
/// tears, flips, fills and crashes produces the byte-identical matrix
/// of an in-memory supervised run, and the report's detection counts
/// match the injection log exactly — every torn/flipped write is
/// caught as corrupt, every failed spill is counted, nothing is
/// silently read back.
#[test]
fn faulty_disk_runs_are_byte_identical_and_every_fault_detected() {
    quietly(|| {
        let mut injected_kinds = [0usize; 4];
        for seed in 0..SEEDS {
            let sts = Sts::new(StsConfig::default(), grid());
            let qs = corpus(0x71C5 + seed, N_TRAJECTORIES);
            let cfg = base_cfg(seed);

            let (reference, ref_report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
            assert!(ref_report.is_complete(), "seed={seed}: {ref_report}");

            let tiles = TempTiles::new(&format!("faulty-{seed}"));
            let storage = Arc::new(FaultyStorage::new(DiskFaultPlan {
                seed: 0xD15C ^ seed,
                torn_per_mille: 150,
                flip_per_mille: 150,
                enospc_per_mille: 100,
                stale_per_mille: 100,
                enospc_at_write: None,
            }));
            let tiling = TileConfig {
                tile_pairs: TILE_PAIRS,
                storage: storage.clone() as Arc<dyn Storage>,
                ..TileConfig::new(&tiles.0)
            };
            let (tiled, report) = sts
                .similarity_matrix_tiled(&qs, &qs, &cfg, &tiling)
                .unwrap();
            assert!(report.is_complete(), "seed={seed}: {report}");
            assert_eq!(
                matrix_bits(&tiled),
                matrix_bits(&reference),
                "seed={seed}: faulty-disk tiled matrix differs from in-memory run"
            );

            // Exact detection accounting against the injection log:
            // torn/flipped writes *reported success*, so only read-back
            // verification can catch them — and it must catch each one.
            let torn = storage.count(DiskFault::TornWrite);
            let flip = storage.count(DiskFault::BitFlip);
            let enospc = storage.count(DiskFault::Enospc);
            let stale = storage.count(DiskFault::StaleTmp);
            let t = report.stats.tiles.expect("tiled job reports TileStats");
            assert_eq!(
                t.tiles_corrupt,
                torn + flip,
                "seed={seed}: corrupt-detection count drifted from injections ({t})"
            );
            assert_eq!(
                t.spill_errors,
                torn + flip + enospc + stale,
                "seed={seed}: every injected fault must cost exactly one spill ({t})"
            );
            assert_eq!(
                t.tiles_spilled + t.spill_errors,
                t.tiles_computed,
                "seed={seed}: every computed tile either spilled or degraded ({t})"
            );
            for i in 0..4 {
                injected_kinds[i] += [torn, flip, enospc, stale][i];
            }
        }
        // The rates must actually have exercised all four fault kinds
        // across the seed battery, or the suite is vacuous.
        for (i, n) in injected_kinds.iter().enumerate() {
            assert!(*n > 0, "fault kind {i} never fired across {SEEDS} seeds");
        }
    });
}

/// Crash/resume: a tiled job stopped halfway by a pair budget leaves
/// its verified tiles on disk; a resumed run restores them (counted in
/// the report), computes only the remainder, matches the uninterrupted
/// in-memory run byte for byte, and cleans the directory on success.
#[test]
fn interrupted_tiled_run_resumes_byte_identical() {
    quietly(|| {
        for seed in 0..SEEDS {
            let sts = Sts::new(StsConfig::default(), grid());
            let qs = corpus(0x2E5 + seed, N_TRAJECTORIES);
            let cfg = base_cfg(seed);
            let (reference, _) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();

            let tiles = TempTiles::new(&format!("resume-{seed}"));
            let tiling = TileConfig {
                tile_pairs: TILE_PAIRS,
                ..TileConfig::new(&tiles.0)
            };
            let crash = JobConfig {
                budget: Budget::with_max_pairs(N_PAIRS / 2),
                ..cfg.clone()
            };
            let (_partial, crash_report) = sts
                .similarity_matrix_tiled(&qs, &qs, &crash, &tiling)
                .unwrap();
            assert_eq!(
                crash_report.state(),
                JobState::BudgetExhausted,
                "seed={seed}: {crash_report}"
            );
            assert!(
                !tile_files(&tiles.0).is_empty(),
                "seed={seed}: interrupted run left no tiles to resume from"
            );

            let (resumed, resume_report) = sts
                .similarity_matrix_tiled(&qs, &qs, &cfg, &tiling)
                .unwrap();
            assert!(resume_report.is_complete(), "seed={seed}: {resume_report}");
            let t = resume_report.stats.tiles.unwrap();
            assert!(
                t.tiles_resumed > 0 && resume_report.stats.pairs_resumed > 0,
                "seed={seed}: resume restored nothing ({resume_report})"
            );
            assert!(
                t.tiles_computed < t.tiles_total,
                "seed={seed}: resume recomputed everything ({t})"
            );
            assert_eq!(
                matrix_bits(&resumed),
                matrix_bits(&reference),
                "seed={seed}: resumed tiled matrix differs from uninterrupted run"
            );
            assert!(
                tile_files(&tiles.0).is_empty(),
                "seed={seed}: completed run must clean its tiles"
            );
        }
    });
}

/// On-disk rot between runs: mangle one kept tile file (flip a byte)
/// and truncate another; the next run must detect both by
/// verification, quarantine the evidence aside and recompute — with
/// the final matrix still byte-identical.
#[test]
fn mangled_tiles_on_disk_are_detected_quarantined_and_recomputed() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(0xB07, N_TRAJECTORIES);
    let cfg = JobConfig {
        chunk_pairs: 16,
        ..JobConfig::default()
    };
    let (reference, _) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();

    let tiles = TempTiles::new("mangle");
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        keep_tiles: true,
        ..TileConfig::new(&tiles.0)
    };
    let (_, first) = sts
        .similarity_matrix_tiled(&qs, &qs, &cfg, &tiling)
        .unwrap();
    assert!(first.is_complete(), "{first}");
    let files = tile_files(&tiles.0);
    assert!(files.len() >= 3, "need several tiles, got {}", files.len());

    // Bit-rot one tile mid-file, truncate another's tail.
    let mut bytes = std::fs::read(&files[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&files[1], &bytes).unwrap();
    let bytes = std::fs::read(&files[2]).unwrap();
    std::fs::write(&files[2], &bytes[..bytes.len() - 4]).unwrap();

    let (second_matrix, second) = sts
        .similarity_matrix_tiled(&qs, &qs, &cfg, &tiling)
        .unwrap();
    let t = second.stats.tiles.unwrap();
    assert_eq!(t.tiles_corrupt, 2, "both mangled tiles detected: {t}");
    assert_eq!(
        t.tiles_computed, 2,
        "exactly the mangled tiles recomputed: {t}"
    );
    assert_eq!(
        t.tiles_resumed,
        t.tiles_total - 2,
        "healthy tiles resumed: {t}"
    );
    assert_eq!(
        matrix_bits(&second_matrix),
        matrix_bits(&reference),
        "matrix after on-disk rot differs"
    );
    // The corrupt files were quarantined aside as evidence, not erased.
    let corrupt: Vec<PathBuf> = std::fs::read_dir(&tiles.0)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with(".corrupt"))
        .collect();
    assert_eq!(corrupt.len(), 2, "quarantine evidence missing: {corrupt:?}");
}

/// ENOSPC at the k-th write: the affected tile degrades to memory
/// (counted as a spill error), everything else stays durable, and the
/// job completes with the correct matrix — a full disk costs
/// durability, not data.
#[test]
fn enospc_at_kth_write_degrades_without_data_loss() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(0xE05, N_TRAJECTORIES);
    let cfg = JobConfig {
        chunk_pairs: 16,
        ..JobConfig::default()
    };
    let (reference, _) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();

    let tiles = TempTiles::new("enospc");
    let storage = Arc::new(FaultyStorage::new(DiskFaultPlan {
        enospc_at_write: Some(2),
        ..DiskFaultPlan::none(0)
    }));
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        storage: storage.clone() as Arc<dyn Storage>,
        ..TileConfig::new(&tiles.0)
    };
    let (matrix, report) = sts
        .similarity_matrix_tiled(&qs, &qs, &cfg, &tiling)
        .unwrap();
    assert_eq!(report.state(), JobState::Complete, "{report}");
    let t = report.stats.tiles.unwrap();
    assert_eq!(t.spill_errors, 1, "exactly the k-th write failed: {t}");
    assert_eq!(t.tiles_corrupt, 0, "ENOSPC is not corruption: {t}");
    assert_eq!(t.tiles_spilled, t.tiles_computed - 1, "{t}");
    assert_eq!(matrix_bits(&matrix), matrix_bits(&reference));
}

/// Crash-before-rename debris: a run whose every spill dies between
/// tmp write and rename still completes correctly from memory; the
/// next run sweeps every orphaned `*.tmp` (counted in its report)
/// before computing.
#[test]
fn stale_tmp_debris_is_swept_and_counted_on_the_next_open() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(0x57A1E, N_TRAJECTORIES);
    let cfg = JobConfig {
        chunk_pairs: 16,
        ..JobConfig::default()
    };
    let tiles = TempTiles::new("stale");

    let crashy = Arc::new(FaultyStorage::new(DiskFaultPlan {
        stale_per_mille: 1000,
        ..DiskFaultPlan::none(0)
    }));
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        storage: crashy.clone() as Arc<dyn Storage>,
        ..TileConfig::new(&tiles.0)
    };
    let (_, first) = sts
        .similarity_matrix_tiled(&qs, &qs, &cfg, &tiling)
        .unwrap();
    assert!(first.is_complete(), "{first}");
    let t = first.stats.tiles.unwrap();
    assert_eq!(
        t.spill_errors, t.tiles_computed,
        "every spill must have crashed: {t}"
    );
    let tmps = std::fs::read_dir(&tiles.0)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
        .count();
    assert_eq!(tmps, t.tiles_computed, "one tmp orphan per crashed spill");

    let healthy = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(&tiles.0)
    };
    let (_, second) = sts
        .similarity_matrix_tiled(&qs, &qs, &cfg, &healthy)
        .unwrap();
    let t2 = second.stats.tiles.unwrap();
    assert_eq!(
        t2.stale_tmp_swept, tmps,
        "second open must sweep every orphan: {t2}"
    );
}

/// Config validation: a zero tile size and a checkpoint+tiling combo
/// are rejected up front with a typed error — not accepted, not spun
/// on forever.
#[test]
fn unusable_tile_configs_are_rejected_up_front() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(1, 4);
    let tiles = TempTiles::new("reject");

    let mut tiling = TileConfig::new(&tiles.0);
    tiling.tile_pairs = 0;
    let err = sts
        .similarity_matrix_tiled(&qs, &qs, &JobConfig::default(), &tiling)
        .unwrap_err();
    assert!(
        matches!(err, sts_core::JobError::InvalidTiling(_)),
        "zero tile_pairs: {err}"
    );

    let with_ckpt = JobConfig {
        checkpoint: Some(sts_core::CheckpointConfig::new(tiles.0.join("x.ckpt"))),
        ..JobConfig::default()
    };
    let err = sts
        .similarity_matrix_tiled(&qs, &qs, &with_ckpt, &TileConfig::new(&tiles.0))
        .unwrap_err();
    assert!(
        matches!(err, sts_core::JobError::InvalidTiling(_)),
        "checkpoint+tiles: {err}"
    );
}

/// The out-of-core ranking path: per-row top-k matches the supervised
/// ranking bit for bit while the engine's resident-cell high-water
/// mark stays bounded by one tile — the N² matrix is never held.
#[test]
fn top_k_tiled_matches_supervised_within_tile_sized_memory() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(0x70B, N_TRAJECTORIES);
    let cfg = JobConfig {
        chunk_pairs: 16,
        ..JobConfig::default()
    };
    let k = 5;

    let tiles = TempTiles::new("topk");
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(&tiles.0)
    };
    let (ranked, report) = sts.top_k_matrix_tiled(&qs, &qs, k, &cfg, &tiling).unwrap();
    assert!(report.is_complete(), "{report}");
    let t = report.stats.tiles.unwrap();
    assert!(
        t.max_resident_cells <= TILE_PAIRS,
        "engine held {} cells — more than one {TILE_PAIRS}-pair tile",
        t.max_resident_cells
    );

    for (i, q) in qs.iter().enumerate() {
        let (expected, _) = sts.top_k_supervised(q, &qs, k, &cfg).unwrap();
        let got: Vec<(usize, u64)> = ranked[i].iter().map(|(j, s)| (*j, s.to_bits())).collect();
        let want: Vec<(usize, u64)> = expected.iter().map(|(j, s)| (*j, s.to_bits())).collect();
        assert_eq!(got, want, "row {i}: tiled ranking differs");
    }
}
