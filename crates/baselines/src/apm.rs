//! APM — Anchor-Point calibration + DTW (Su et al., SIGMOD 2013
//! "Calibrating trajectory data for similarity-based analysis" — paper
//! ref. [34]).
//!
//! APM transforms heterogeneously sampled trajectories into a *unified
//! sampling strategy* before comparing them: each trajectory is rewritten
//! onto a fixed set of anchor points at a fixed time step, and the
//! calibrated sequences are compared with DTW — exactly the pipeline the
//! paper uses ("we divide the space into grids, and use the centrals of
//! grids as the anchor points for calibration. DTW is used as the
//! similarity metric after calibration", §VI-A).
//!
//! Reconstruction: the geometry-based calibration of the APM paper —
//! resample the trajectory's linear interpolation at the unified time
//! step, snapping every resampled position to the nearest anchor (grid
//! center). The calibration is *universal* (same anchors, same step for
//! everyone), which is what the STS-F ablation contrasts with the
//! personalized model.

use crate::dtw::dtw_points;
use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_geo::{Grid, Point};
use sts_traj::{Path, Trajectory};

/// APM distance: anchor calibration followed by DTW.
#[derive(Debug, Clone)]
pub struct ApmDistance {
    grid: Grid,
    time_step: f64,
}

impl ApmDistance {
    /// Creates the calibrator with the anchor grid and unified sampling
    /// period (seconds).
    pub fn new(grid: Grid, time_step: f64) -> Self {
        assert!(time_step > 0.0, "time step must be positive");
        ApmDistance { grid, time_step }
    }

    /// Calibrates a trajectory to the anchor lattice: resample every
    /// `time_step` seconds on the linear interpolation, snap to the
    /// nearest anchor (grid center).
    pub fn calibrate(&self, traj: &Trajectory) -> Vec<Point> {
        let path = Path::from(traj.clone());
        let mut anchors = Vec::new();
        let mut t = path.start_time();
        let end = path.end_time();
        loop {
            let p = path.position_at(t);
            anchors.push(self.grid.center(self.grid.cell_at_clamped(p)));
            if t >= end {
                break;
            }
            t = (t + self.time_step).min(end);
        }
        anchors
    }
}

impl DistanceMeasure for ApmDistance {
    fn name(&self) -> &'static str {
        "APM"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        dtw_points(&self.calibrate(a), &self.calibrate(b))
    }
}

/// APM as a similarity measure (`1/(1+d)`).
pub struct Apm(DistanceSimilarity<ApmDistance>);

impl Apm {
    /// Creates the measure with the anchor grid and unified time step.
    pub fn new(grid: Grid, time_step: f64) -> Self {
        Apm(DistanceSimilarity(ApmDistance::new(grid, time_step)))
    }
}

impl SimilarityMeasure for Apm {
    fn name(&self) -> &'static str {
        "APM"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};
    use sts_geo::BoundingBox;
    use sts_traj::sampling::every_kth;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::new(-10.0, -10.0), Point::new(600.0, 600.0)),
            10.0,
        )
        .unwrap()
    }

    #[test]
    fn identical_is_zero() {
        let apm = ApmDistance::new(grid(), 5.0);
        let a = line(0.0, 1.0, 12, 5.0, 0.0);
        assert_eq!(apm.distance(&a, &a), 0.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Apm::new(grid(), 5.0));
    }

    #[test]
    fn calibration_unifies_sampling_rates() {
        let apm = ApmDistance::new(grid(), 5.0);
        let dense = line(0.0, 1.0, 21, 5.0, 0.0);
        let sparse = every_kth(&dense, 4);
        // After calibration both have the same number of anchors.
        assert_eq!(apm.calibrate(&dense).len(), apm.calibrate(&sparse).len());
        // And the calibrated distance between them is zero (same path).
        assert_eq!(apm.distance(&dense, &sparse), 0.0);
    }

    #[test]
    fn anchors_are_grid_centers() {
        let g = grid();
        let apm = ApmDistance::new(g.clone(), 5.0);
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        for anchor in apm.calibrate(&a) {
            let cell = g.cell_at_clamped(anchor);
            assert_eq!(g.center(cell), anchor);
        }
    }

    #[test]
    fn calibration_covers_whole_duration() {
        let apm = ApmDistance::new(grid(), 7.0);
        let a = line(0.0, 1.0, 10, 5.0, 0.0); // 45 s duration
        let n = apm.calibrate(&a).len();
        // ceil(45 / 7) + 1 = 8 anchor times (including the clamped end).
        assert_eq!(n, 8);
    }
}
