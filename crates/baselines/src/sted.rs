//! STED — time-focused synchronized Euclidean distance (Nanni &
//! Pedreschi, JIIS 2006 — paper ref. [33]).
//!
//! The time-focused distance between two trajectories is the average
//! Euclidean distance between their *linearly interpolated* positions
//! over the common time interval:
//!
//! ```text
//! d(T1, T2) = (1/|I|) ∫_I dis(T1(t), T2(t)) dt,   I = span(T1) ∩ span(T2)
//! ```
//!
//! §II groups it with EDwP under "linear interpolation to model user
//! mobility … too strong for some scenarios": between two distant fixes
//! the object is assumed to travel the straight line. The integral is
//! evaluated by uniform sampling of `I` (the integrand is piecewise
//! smooth; 1-second resolution is far below any evaluation scale here).

use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_traj::{Path, Trajectory};

/// STED distance.
#[derive(Debug, Clone, Copy)]
pub struct StedDistance {
    /// Integration step, seconds.
    step: f64,
    /// Distance reported when the time spans do not overlap.
    disjoint_distance: f64,
}

impl StedDistance {
    /// Creates the distance with the given integration step.
    pub fn new(step: f64, disjoint_distance: f64) -> Self {
        assert!(step > 0.0, "integration step must be positive");
        StedDistance {
            step,
            disjoint_distance,
        }
    }
}

impl DistanceMeasure for StedDistance {
    fn name(&self) -> &'static str {
        "STED"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let lo = a.start_time().max(b.start_time());
        let hi = a.end_time().min(b.end_time());
        if lo > hi {
            return self.disjoint_distance;
        }
        let pa = Path::from(a.clone());
        let pb = Path::from(b.clone());
        if lo == hi {
            return pa.position_at(lo).distance(&pb.position_at(lo));
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut t = lo;
        while t <= hi {
            sum += pa.position_at(t).distance(&pb.position_at(t));
            count += 1;
            t += self.step;
        }
        sum / count as f64
    }
}

/// STED as a similarity measure (`1/(1+d)`).
pub struct Sted(DistanceSimilarity<StedDistance>);

impl Sted {
    /// Creates the measure.
    pub fn new(step: f64, disjoint_distance: f64) -> Self {
        Sted(DistanceSimilarity(StedDistance::new(
            step,
            disjoint_distance,
        )))
    }
}

impl SimilarityMeasure for Sted {
    fn name(&self) -> &'static str {
        "STED"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    fn sted() -> StedDistance {
        StedDistance::new(1.0, 1e6)
    }

    #[test]
    fn identical_is_zero() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(sted().distance(&a, &a), 0.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Sted::new(1.0, 1e6));
    }

    #[test]
    fn parallel_lines_average_offset() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(7.0, 1.0, 10, 5.0, 0.0);
        assert!((sted().distance(&a, &b) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn synchronized_unlike_dtw() {
        // Same spatial footprint, opposite directions: synchronized
        // comparison sees large distances, spatial DTW would see ~0.
        let forward = line(0.0, 1.0, 11, 5.0, 0.0);
        let backward = {
            let pts: Vec<(f64, f64, f64)> = (0..11)
                .map(|i| (50.0 - 5.0 * i as f64, 0.0, 5.0 * i as f64))
                .collect();
            Trajectory::from_xyt(&pts).unwrap()
        };
        let d = sted().distance(&forward, &backward);
        assert!(d > 15.0, "opposite directions must be far apart: {d}");
    }

    #[test]
    fn disjoint_spans_get_sentinel() {
        let a = line(0.0, 1.0, 5, 5.0, 0.0);
        let b = line(0.0, 1.0, 5, 5.0, 1000.0);
        assert_eq!(sted().distance(&a, &b), 1e6);
    }

    #[test]
    fn interpolation_bridges_sparse_sampling() {
        use sts_traj::sampling::every_kth;
        let dense = line(0.0, 1.0, 21, 5.0, 0.0);
        let sparse = every_kth(&dense, 5);
        // Straight-line motion: interpolation is exact, distance ~0.
        assert!(sted().distance(&dense, &sparse) < 1e-9);
    }
}
