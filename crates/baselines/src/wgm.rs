//! WGM — Weighted Geometric Mean similarity (Ketabi, Alipour & Helmy,
//! SIGSPATIAL 2018 — paper ref. [19]).
//!
//! "WGM measures similarity as the arithmetic mean of point-wise
//! distances (e.g., origin vs. origin and destination vs. destination),
//! each achieved through the weighted geometric mean of Euclidean
//! similarity (spatial) and their temporal similarity" (§VI-A). The
//! original assumes equal-length trajectories (§II criticizes exactly
//! that); unequal lengths are handled by index-proportional alignment,
//! the standard workaround.
//!
//! Per aligned pair `(p, q)`:
//! `sim = s(p,q)^w · τ(p,q)^(1−w)` with the exponential-decay
//! similarities `s = exp(−d_space/λ_s)` and `τ = exp(−d_time/λ_t)`;
//! WGM is the arithmetic mean over pairs.

use crate::SimilarityMeasure;
use sts_traj::Trajectory;

/// WGM similarity.
#[derive(Debug, Clone, Copy)]
pub struct Wgm {
    /// Spatial decay scale λ_s (meters).
    spatial_scale: f64,
    /// Temporal decay scale λ_t (seconds).
    temporal_scale: f64,
    /// Spatial weight `w ∈ [0, 1]` of the geometric mean.
    spatial_weight: f64,
}

impl Wgm {
    /// Creates the measure.
    pub fn new(spatial_scale: f64, temporal_scale: f64, spatial_weight: f64) -> Self {
        assert!(spatial_scale > 0.0, "spatial scale must be positive");
        assert!(temporal_scale > 0.0, "temporal scale must be positive");
        assert!(
            (0.0..=1.0).contains(&spatial_weight),
            "spatial weight must be in [0, 1]"
        );
        Wgm {
            spatial_scale,
            temporal_scale,
            spatial_weight,
        }
    }
}

impl SimilarityMeasure for Wgm {
    fn name(&self) -> &'static str {
        "WGM"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        // Index-proportional alignment over k pairs, k = min(|a|, |b|):
        // pair i maps a[round(i·(n−1)/(k−1))] to b[round(i·(m−1)/(k−1))],
        // so origins align with origins and destinations with
        // destinations as the published description requires.
        let k = a.len().min(b.len());
        let idx = |len: usize, i: usize| -> usize {
            if k == 1 {
                0
            } else {
                ((i as f64) * (len - 1) as f64 / (k - 1) as f64).round() as usize
            }
        };
        let mut total = 0.0;
        for i in 0..k {
            let p = a.get(idx(a.len(), i));
            let q = b.get(idx(b.len(), i));
            let s = (-p.loc.distance(&q.loc) / self.spatial_scale).exp();
            let tau = (-(p.t - q.t).abs() / self.temporal_scale).exp();
            total += s.powf(self.spatial_weight) * tau.powf(1.0 - self.spatial_weight);
        }
        total / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    fn wgm() -> Wgm {
        Wgm::new(20.0, 60.0, 0.5)
    }

    #[test]
    fn identical_is_one() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert!((wgm().similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&wgm());
    }

    #[test]
    fn temporal_mismatch_lowers_similarity() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let synced = line(0.0, 1.0, 10, 5.0, 0.0);
        let late = line(0.0, 1.0, 10, 5.0, 300.0);
        assert!(wgm().similarity(&a, &synced) > wgm().similarity(&a, &late));
    }

    #[test]
    fn spatial_weight_extremes() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let offset = line(20.0, 1.0, 10, 5.0, 0.0); // spatial offset only
        let all_spatial = Wgm::new(20.0, 60.0, 1.0);
        let all_temporal = Wgm::new(20.0, 60.0, 0.0);
        // A purely temporal WGM ignores the spatial offset entirely.
        assert!((all_temporal.similarity(&a, &offset) - 1.0).abs() < 1e-12);
        assert!(all_spatial.similarity(&a, &offset) < 0.5);
    }

    #[test]
    fn unequal_lengths_align_endpoints() {
        let a = line(0.0, 1.0, 5, 5.0, 0.0);
        let b = line(0.0, 1.0, 9, 2.5, 0.0); // same path, double density
        let s = wgm().similarity(&a, &b);
        assert!(s > 0.9, "same endpoints and route should score high: {s}");
    }

    #[test]
    fn single_point_trajectories() {
        let p = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        let q = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        assert!((wgm().similarity(&p, &q) - 1.0).abs() < 1e-12);
    }
}
