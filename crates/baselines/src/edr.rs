//! Edit Distance on Real sequence (Chen, Özsu & Oria, SIGMOD 2005 —
//! paper ref. [14]).
//!
//! Edit distance where substituting two points costs 0 when they match
//! (within `epsilon` meters) and 1 otherwise; insertions and deletions
//! cost 1. Normalized by the longer length so values are comparable
//! across trajectory sizes.

use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_traj::Trajectory;

/// EDR distance with spatial match threshold `epsilon` (meters).
#[derive(Debug, Clone, Copy)]
pub struct EdrDistance {
    epsilon: f64,
}

impl EdrDistance {
    /// Creates the distance; `epsilon` must be positive.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        EdrDistance { epsilon }
    }
}

impl DistanceMeasure for EdrDistance {
    fn name(&self) -> &'static str {
        "EDR"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa = a.points();
        let pb = b.points();
        let m = pb.len();
        let mut prev: Vec<usize> = (0..=m).collect();
        let mut curr = vec![0usize; m + 1];
        for (i, p) in pa.iter().enumerate() {
            curr[0] = i + 1;
            for (j, q) in pb.iter().enumerate() {
                let subst = usize::from(p.loc.distance(&q.loc) > self.epsilon);
                curr[j + 1] = (prev[j] + subst).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m] as f64 / pa.len().max(pb.len()) as f64
    }
}

/// EDR as a similarity measure (`1/(1+d)`).
pub struct Edr(DistanceSimilarity<EdrDistance>);

impl Edr {
    /// Creates the measure with the given spatial threshold.
    pub fn new(epsilon: f64) -> Self {
        Edr(DistanceSimilarity(EdrDistance::new(epsilon)))
    }
}

impl SimilarityMeasure for Edr {
    fn name(&self) -> &'static str {
        "EDR"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    #[test]
    fn identical_is_zero_distance() {
        let a = line(0.0, 1.0, 12, 5.0, 0.0);
        assert_eq!(EdrDistance::new(1.0).distance(&a, &a), 0.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Edr::new(5.0));
    }

    #[test]
    fn completely_different_is_normalized_max() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(1000.0, 1.0, 10, 5.0, 0.0);
        // Every position must be substituted: distance n / n = 1.
        assert!((EdrDistance::new(5.0).distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_cost_counts() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(0.0, 1.0, 5, 5.0, 0.0); // prefix of a
                                             // 5 deletions over max length 10.
        assert!((EdrDistance::new(1.0).distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epsilon_tolerance() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(3.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(EdrDistance::new(4.0).distance(&a, &b), 0.0);
        assert!(EdrDistance::new(2.0).distance(&a, &b) > 0.9);
    }
}
