//! Discrete Fréchet distance (Eiter & Mannila's coupling of Fréchet's
//! curve distance — paper ref. [30]).
//!
//! The minimal, over all order-preserving couplings, of the maximal
//! pointwise distance ("dog-leash distance"). §II notes its sensitivity
//! to noise and sporadic sampling: a single noisy outlier sets the whole
//! distance.

use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_geo::Point;
use sts_traj::Trajectory;

/// Discrete Fréchet distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrechetDistance;

impl DistanceMeasure for FrechetDistance {
    fn name(&self) -> &'static str {
        "Frechet"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa: Vec<Point> = a.locations().collect();
        let pb: Vec<Point> = b.locations().collect();
        let m = pb.len();
        let mut prev = vec![f64::INFINITY; m];
        let mut curr = vec![f64::INFINITY; m];
        for (i, p) in pa.iter().enumerate() {
            for (j, q) in pb.iter().enumerate() {
                let d = p.distance(q);
                let reach = if i == 0 && j == 0 {
                    d
                } else if i == 0 {
                    curr[j - 1].max(d)
                } else if j == 0 {
                    prev[0].max(d)
                } else {
                    prev[j - 1].min(prev[j]).min(curr[j - 1]).max(d)
                };
                curr[j] = reach;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m - 1]
    }
}

/// Discrete Fréchet as a similarity measure (`1/(1+d)`).
pub struct DiscreteFrechet(DistanceSimilarity<FrechetDistance>);

impl DiscreteFrechet {
    /// Creates the measure.
    pub fn new() -> Self {
        DiscreteFrechet(DistanceSimilarity(FrechetDistance))
    }
}

impl Default for DiscreteFrechet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityMeasure for DiscreteFrechet {
    fn name(&self) -> &'static str {
        "Frechet"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    #[test]
    fn identical_is_zero() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(FrechetDistance.distance(&a, &a), 0.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&DiscreteFrechet::new());
    }

    #[test]
    fn parallel_lines_distance_is_offset() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(7.0, 1.0, 10, 5.0, 0.0);
        assert!((FrechetDistance.distance(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_outlier_dominates() {
        // The noise sensitivity §II describes: one far point sets the
        // whole distance.
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let mut pts: Vec<(f64, f64, f64)> = (0..10)
            .map(|i| (5.0 * i as f64, 0.0, 5.0 * i as f64))
            .collect();
        pts[5].1 = 50.0; // one outlier 50 m off
        let noisy = Trajectory::from_xyt(&pts).unwrap();
        let d = FrechetDistance.distance(&a, &noisy);
        assert!(d >= 49.0, "outlier should dominate, got {d}");
    }

    #[test]
    fn monotone_coupling_beats_pointwise_max() {
        // Frechet <= max pointwise distance of the identity coupling.
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(3.0, 1.1, 10, 5.0, 0.0);
        let ident_max = a
            .points()
            .iter()
            .zip(b.points())
            .map(|(p, q)| p.loc.distance(&q.loc))
            .fold(0.0f64, f64::max);
        assert!(FrechetDistance.distance(&a, &b) <= ident_max + 1e-12);
    }
}
