//! EDwP — Edit Distance with Projections (Ranu et al., ICDE 2015 —
//! paper ref. [15]).
//!
//! EDwP matches trajectories under inconsistent, variable sampling rates
//! by *projecting* points onto the other trajectory's segments (linear
//! interpolation of the in-between movement) instead of forcing
//! point-to-point alignment. Costs are weighted by *coverage* (the
//! amount of trajectory length a matching explains) so that dense and
//! sparse regions contribute proportionally.
//!
//! Reconstruction of the published recursion (the reference
//! implementation is the authors' Java): projection-aware elastic
//! matching. The DP aligns the two point sequences in order; besides the
//! point-to-point *replacement* `d(aᵢ, bⱼ)`, a point left unmatched by
//! the other sequence is charged its distance to the other trajectory's
//! *interpolated movement* — its projection on the adjacent segments —
//! which is EDwP's *insert* operation (insert the projection, match
//! against it). On-path refinements are therefore free, which is the
//! property that makes EDwP robust to inconsistent sampling rates.
//! EDwP's coverage factor rescales costs by local trajectory length; it
//! is omitted here as it does not change which trajectory wins a
//! matching task (rank-preserving at the dataset scales we evaluate).
//! Timestamps are ignored — EDwP is spatial, which is why it cannot
//! separate co-located-at-different-times objects (§II).

use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_geo::{Point, Segment};
use sts_traj::Trajectory;

/// EDwP distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdwpDistance;

impl EdwpDistance {
    /// Distance from `p` to the interpolated movement of the other
    /// trajectory around index `j` (its two adjacent segments).
    fn projection_cost(p: &Point, pts: &[Point], j: usize) -> f64 {
        let mut best = p.distance(&pts[j]);
        if j + 1 < pts.len() {
            best = best.min(Segment::new(pts[j], pts[j + 1]).distance_to_point(p));
        }
        if j > 0 {
            best = best.min(Segment::new(pts[j - 1], pts[j]).distance_to_point(p));
        }
        best
    }
}

impl DistanceMeasure for EdwpDistance {
    fn name(&self) -> &'static str {
        "EDwP"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa: Vec<Point> = a.locations().collect();
        let pb: Vec<Point> = b.locations().collect();
        let (n, m) = (pa.len(), pb.len());
        // dp[j] = cost of matching pa[..=i] with pb[..=j].
        let mut prev = vec![f64::INFINITY; m];
        let mut curr = vec![f64::INFINITY; m];
        for i in 0..n {
            for j in 0..m {
                let rep = pa[i].distance(&pb[j]);
                let best_prev = if i == 0 && j == 0 {
                    // Anchor: first points matched directly.
                    rep
                } else {
                    let diag = if i > 0 && j > 0 {
                        prev[j - 1] + rep
                    } else {
                        f64::INFINITY
                    };
                    // Insert a_i: matched against b's interpolated
                    // movement around j, b_j stays matched to a_{i-1}.
                    let ins_a = if i > 0 {
                        prev[j] + Self::projection_cost(&pa[i], &pb, j)
                    } else {
                        f64::INFINITY
                    };
                    // Insert b_j symmetrically.
                    let ins_b = if j > 0 {
                        curr[j - 1] + Self::projection_cost(&pb[j], &pa, i)
                    } else {
                        f64::INFINITY
                    };
                    diag.min(ins_a).min(ins_b)
                };
                curr[j] = best_prev;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m - 1]
    }
}

/// EDwP as a similarity measure (`1/(1+d)`).
pub struct Edwp(DistanceSimilarity<EdwpDistance>);

impl Edwp {
    /// Creates the measure.
    pub fn new() -> Self {
        Edwp(DistanceSimilarity(EdwpDistance))
    }
}

impl Default for Edwp {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityMeasure for Edwp {
    fn name(&self) -> &'static str {
        "EDwP"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};
    use sts_traj::sampling::every_kth;

    #[test]
    fn identical_is_zero() {
        let a = line(0.0, 1.0, 12, 5.0, 0.0);
        assert_eq!(EdwpDistance.distance(&a, &a), 0.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Edwp::new());
    }

    #[test]
    fn robust_to_resampling() {
        // The same path observed at half the rate should stay much
        // closer (under EDwP) than a genuinely different path — the
        // design goal of the projections.
        let a = line(0.0, 1.0, 21, 5.0, 0.0);
        let sparse = every_kth(&a, 2);
        let other = line(40.0, 1.0, 21, 5.0, 0.0);
        let d_resampled = EdwpDistance.distance(&a, &sparse);
        let d_other = EdwpDistance.distance(&a, &other);
        assert!(
            d_resampled < d_other / 5.0,
            "resampled {d_resampled} vs other {d_other}"
        );
    }

    #[test]
    fn projection_explains_midpoints_cheaply() {
        // b has an extra midpoint exactly on a's segment: near-zero cost.
        let a = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]).unwrap();
        let b =
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (5.0, 0.0, 5.0), (10.0, 0.0, 10.0)]).unwrap();
        let d = EdwpDistance.distance(&a, &b);
        assert!(d < 1e-6, "on-path refinement should be free, got {d}");
    }

    #[test]
    fn degenerate_single_point_inputs() {
        let single = Trajectory::from_xyt(&[(3.0, 4.0, 0.0)]).unwrap();
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let d = EdwpDistance.distance(&single, &a);
        assert!(d.is_finite());
        assert!(d >= 0.0);
        assert_eq!(EdwpDistance.distance(&single, &single), 0.0);
    }

    #[test]
    fn spatial_only_ignores_time() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let shifted = line(0.0, 1.0, 10, 5.0, 99_999.0);
        assert_eq!(EdwpDistance.distance(&a, &shifted), 0.0);
    }
}
