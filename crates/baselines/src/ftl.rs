//! FTL-style linking compatibility (Wu et al., ICDE 2016 — paper
//! ref. [1]; the same mechanism underlies ST-Link [22] and SLIM [23]).
//!
//! "FTL merges two trajectories and defines the compatibility of a
//! mutual segment based on a predefined threshold for velocity. In FTL,
//! a global velocity threshold is used for all objects" (§II). ST-Link
//! and SLIM additionally restrict matching to events within a time
//! window.
//!
//! Reconstruction: the two trajectories are merged by timestamp; every
//! *mutual* segment (consecutive points contributed by different
//! trajectories, within the optional time window) is compatible when
//! its implied speed `dis/Δt` does not exceed the global threshold.
//! The score is the fraction of compatible mutual segments — 1.0 when
//! the merged movement is everywhere explainable by one object moving
//! at most at `v_max`. This is exactly the "strong assumption of a
//! fixed known speed" the paper criticizes, and the ablation point for
//! STS's personalized speed model.

use crate::SimilarityMeasure;
use sts_traj::{TrajPoint, Trajectory};

/// FTL linking compatibility with a global speed threshold.
#[derive(Debug, Clone, Copy)]
pub struct Ftl {
    /// Global maximum speed, m/s.
    v_max: f64,
    /// Optional window: mutual segments longer than this (seconds) are
    /// ignored rather than scored (the ST-Link/SLIM restriction).
    time_window: Option<f64>,
}

impl Ftl {
    /// Creates the measure; `v_max` must be positive.
    pub fn new(v_max: f64, time_window: Option<f64>) -> Self {
        assert!(v_max > 0.0, "speed threshold must be positive");
        if let Some(w) = time_window {
            assert!(w > 0.0, "time window must be positive");
        }
        Ftl { v_max, time_window }
    }
}

impl SimilarityMeasure for Ftl {
    fn name(&self) -> &'static str {
        "FTL"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        // Merge by timestamp, tagging the source trajectory.
        let mut merged: Vec<(TrajPoint, u8)> = a
            .points()
            .iter()
            .map(|&p| (p, 0u8))
            .chain(b.points().iter().map(|&p| (p, 1u8)))
            .collect();
        merged.sort_by(|x, y| x.0.t.partial_cmp(&y.0.t).expect("finite timestamps"));
        let mut mutual = 0usize;
        let mut compatible = 0usize;
        for w in merged.windows(2) {
            let ((p, sp), (q, sq)) = (w[0], w[1]);
            if sp == sq {
                continue; // same source: not a mutual segment
            }
            let dt = q.t - p.t;
            if let Some(window) = self.time_window {
                if dt > window {
                    continue;
                }
            }
            mutual += 1;
            if dt <= 0.0 {
                // Simultaneous observations: compatible only if (nearly)
                // co-located.
                if p.loc.distance(&q.loc) < 1e-9 {
                    compatible += 1;
                }
                continue;
            }
            if p.loc.distance(&q.loc) / dt <= self.v_max {
                compatible += 1;
            }
        }
        if mutual == 0 {
            return 0.0; // nothing links the two trajectories
        }
        compatible as f64 / mutual as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    #[test]
    fn same_object_halves_are_fully_compatible() {
        // A 1 m/s walker split into interleaved halves: every mutual
        // segment implies ~1 m/s.
        let full = line(0.0, 1.0, 20, 5.0, 0.0);
        let (h1, h2) = sts_traj::sampling::alternate_split(&full).unwrap();
        let ftl = Ftl::new(2.0, None);
        assert_eq!(ftl.similarity(&h1, &h2), 1.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Ftl::new(5.0, None));
    }

    #[test]
    fn teleporting_pairs_are_incompatible() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let far = line(10_000.0, 1.0, 10, 5.0, 2.5); // 10 km away, interleaved times
        let ftl = Ftl::new(10.0, None);
        assert_eq!(ftl.similarity(&a, &far), 0.0);
    }

    #[test]
    fn threshold_choice_is_decisive() {
        // The fragility the paper criticizes: a fast object is judged
        // incompatible by a threshold tuned for slow ones.
        let fast = line(0.0, 20.0, 10, 5.0, 0.0); // 20 m/s
        let (h1, h2) = sts_traj::sampling::alternate_split(&fast).unwrap();
        let pedestrian_ftl = Ftl::new(2.0, None);
        let highway_ftl = Ftl::new(40.0, None);
        assert_eq!(pedestrian_ftl.similarity(&h1, &h2), 0.0);
        assert_eq!(highway_ftl.similarity(&h1, &h2), 1.0);
    }

    #[test]
    fn time_window_excludes_distant_events() {
        let a = line(0.0, 1.0, 5, 100.0, 0.0); // sparse: 100 s gaps
        let b = line(0.0, 1.0, 5, 100.0, 50.0);
        let windowed = Ftl::new(2.0, Some(10.0));
        // All mutual gaps are 50 s > 10 s: no scored segments.
        assert_eq!(windowed.similarity(&a, &b), 0.0);
        let open = Ftl::new(2.0, None);
        assert!(open.similarity(&a, &b) > 0.9);
    }

    #[test]
    fn disjoint_time_spans_still_score_edge_segment() {
        let a = line(0.0, 1.0, 5, 5.0, 0.0); // ends t=20
        let b = line(0.0, 1.0, 5, 5.0, 100.0); // starts t=100
                                               // One mutual segment (t=20 -> t=100), speed tiny: compatible.
        let ftl = Ftl::new(2.0, None);
        assert_eq!(ftl.similarity(&a, &b), 1.0);
        // With a window it is excluded and the score collapses to 0.
        assert_eq!(Ftl::new(2.0, Some(30.0)).similarity(&a, &b), 0.0);
    }
}
