//! SST — Synchronized Spatial-Temporal trajectory similarity (Zhao et
//! al., GeoInformatica 2020 — paper ref. [32]).
//!
//! "SST measures the similarity by synchronously matching the spatial
//! distance against temporal distance. It matches points of two
//! trajectories using the strategy of minimal point-to-segment
//! similarity and maximal point-to-point similarity" (§VI-A / §II).
//!
//! Reconstruction: each point `p` of one trajectory is matched against
//! the other trajectory's *segments*. For a segment `(q_j, q_{j+1})` the
//! spatial distance is the point-to-segment distance (the "minimal
//! point-to-segment" rule: interpolate the in-between movement) and the
//! temporal distance is `p.t`'s gap to the segment's time interval. Each
//! candidate combines both with exponential decays; `p` takes its best
//! candidate (the "maximal point-to-point similarity" rule). SST is the
//! symmetric mean over points. The decay scales are the parameter
//! sensitivity §II attributes to SST.

use crate::SimilarityMeasure;
use sts_geo::Segment;
use sts_traj::{TrajPoint, Trajectory};

/// SST similarity.
#[derive(Debug, Clone, Copy)]
pub struct Sst {
    /// Spatial decay scale (meters).
    spatial_scale: f64,
    /// Temporal decay scale (seconds).
    temporal_scale: f64,
}

impl Sst {
    /// Creates the measure.
    pub fn new(spatial_scale: f64, temporal_scale: f64) -> Self {
        assert!(spatial_scale > 0.0, "spatial scale must be positive");
        assert!(temporal_scale > 0.0, "temporal scale must be positive");
        Sst {
            spatial_scale,
            temporal_scale,
        }
    }

    fn best_match(&self, p: &TrajPoint, other: &Trajectory) -> f64 {
        let pts = other.points();
        if pts.len() == 1 {
            let q = pts[0];
            let s = (-p.loc.distance(&q.loc) / self.spatial_scale).exp();
            let tau = (-(p.t - q.t).abs() / self.temporal_scale).exp();
            return s * tau;
        }
        let mut best = 0.0f64;
        for w in pts.windows(2) {
            let seg = Segment::new(w[0].loc, w[1].loc);
            let d_space = seg.distance_to_point(&p.loc);
            let d_time = if p.t < w[0].t {
                w[0].t - p.t
            } else if p.t > w[1].t {
                p.t - w[1].t
            } else {
                0.0
            };
            let s = (-d_space / self.spatial_scale).exp();
            let tau = (-d_time / self.temporal_scale).exp();
            best = best.max(s * tau);
        }
        best
    }

    fn directed(&self, from: &Trajectory, to: &Trajectory) -> f64 {
        let total: f64 = from.points().iter().map(|p| self.best_match(p, to)).sum();
        total / from.len() as f64
    }
}

impl SimilarityMeasure for Sst {
    fn name(&self) -> &'static str {
        "SST"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        0.5 * (self.directed(a, b) + self.directed(b, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};
    use sts_traj::sampling::every_kth;

    fn sst() -> Sst {
        Sst::new(10.0, 60.0)
    }

    #[test]
    fn identical_is_one() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert!((sst().similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&sst());
    }

    #[test]
    fn segment_interpolation_handles_sparser_sampling() {
        let a = line(0.0, 1.0, 21, 5.0, 0.0);
        let sparse = every_kth(&a, 4);
        // Sparse points still lie on the dense trajectory's segments and
        // within its time intervals: similarity stays near 1.
        let s = sst().similarity(&a, &sparse);
        assert!(s > 0.95, "{s}");
    }

    #[test]
    fn temporal_gap_decays_similarity() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let late = line(0.0, 1.0, 10, 5.0, 600.0);
        let s_late = sst().similarity(&a, &late);
        assert!(s_late < 0.01, "10-minute offset should decay: {s_late}");
    }

    #[test]
    fn spatial_gap_decays_similarity() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let near = line(5.0, 1.0, 10, 5.0, 0.0);
        let far = line(30.0, 1.0, 10, 5.0, 0.0);
        assert!(sst().similarity(&a, &near) > sst().similarity(&a, &far));
    }

    #[test]
    fn single_point_other_trajectory() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let single = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        let s = sst().similarity(&a, &single);
        assert!(s.is_finite() && s > 0.0);
    }
}
