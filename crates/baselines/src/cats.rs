//! CATS — Clue-Aware Trajectory Similarity (Hung, Peng & Lee, VLDB J.
//! 2015 — paper ref. [21]).
//!
//! CATS "aims to couple as many spatially and temporally co-located data
//! points between two trajectories" and "relies on two manually defined
//! parameters" (§VI-A): a spatial tolerance ε and a temporal window τ.
//!
//! Reconstruction (the original is research Python): each point `p` of
//! one trajectory collects a *clue* from the other trajectory — the best
//! spatial closeness `max(0, 1 − d/ε)` among that trajectory's points
//! within `τ` seconds of `p`. The directed score is the mean clue over
//! the querying trajectory's points; CATS is the symmetric average.
//! This preserves the published behaviour the evaluation depends on:
//! strong when many points pair up within both tolerances, degrading as
//! sampling gets sparser or noisier than the fixed thresholds allow.

use crate::SimilarityMeasure;
use sts_traj::{TrajPoint, Trajectory};

/// CATS similarity with spatial tolerance `epsilon` (meters) and temporal
/// window `tau` (seconds).
#[derive(Debug, Clone, Copy)]
pub struct Cats {
    epsilon: f64,
    tau: f64,
}

impl Cats {
    /// Creates the measure; both parameters must be positive.
    pub fn new(epsilon: f64, tau: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(tau > 0.0, "tau must be positive");
        Cats { epsilon, tau }
    }

    /// The best clue point `p` obtains from `other` — linear spatial
    /// decay within the temporal window.
    fn clue(&self, p: &TrajPoint, other: &Trajectory) -> f64 {
        // Binary search to the temporal window [p.t - tau, p.t + tau].
        let pts = other.points();
        let start = pts.partition_point(|q| q.t < p.t - self.tau);
        let mut best = 0.0f64;
        for q in &pts[start..] {
            if q.t > p.t + self.tau {
                break;
            }
            let s = 1.0 - p.loc.distance(&q.loc) / self.epsilon;
            best = best.max(s);
        }
        best.max(0.0)
    }

    fn directed(&self, from: &Trajectory, to: &Trajectory) -> f64 {
        let total: f64 = from.points().iter().map(|p| self.clue(p, to)).sum();
        total / from.len() as f64
    }
}

impl SimilarityMeasure for Cats {
    fn name(&self) -> &'static str {
        "CATS"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        0.5 * (self.directed(a, b) + self.directed(b, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    fn cats() -> Cats {
        Cats::new(10.0, 15.0)
    }

    #[test]
    fn identical_is_one() {
        let a = line(0.0, 1.0, 12, 5.0, 0.0);
        assert!((cats().similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&cats());
    }

    #[test]
    fn outside_temporal_window_scores_zero() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let late = line(0.0, 1.0, 10, 5.0, 10_000.0);
        assert_eq!(cats().similarity(&a, &late), 0.0);
    }

    #[test]
    fn outside_spatial_tolerance_scores_zero() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let far = line(50.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(cats().similarity(&a, &far), 0.0);
    }

    #[test]
    fn clue_decays_linearly_with_distance() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let near = line(2.0, 1.0, 10, 5.0, 0.0);
        let farther = line(6.0, 1.0, 10, 5.0, 0.0);
        let s_near = cats().similarity(&a, &near);
        let s_far = cats().similarity(&a, &farther);
        assert!((s_near - 0.8).abs() < 1e-9, "{s_near}");
        assert!((s_far - 0.4).abs() < 1e-9, "{s_far}");
    }

    #[test]
    fn sparser_counterpart_lowers_directed_score() {
        // The asymmetry CATS smooths over: a has 20 points, b only 4 —
        // many of a's points find no temporally close clue.
        let a = line(0.0, 1.0, 20, 5.0, 0.0);
        let b = line(0.0, 1.0, 4, 25.0, 0.0);
        let s = cats().similarity(&a, &b);
        assert!(s < 1.0);
        assert!(s > 0.0);
    }
}
