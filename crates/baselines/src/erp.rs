//! Edit distance with Real Penalty (Chen & Ng, VLDB 2004 — paper
//! ref. [28]).
//!
//! Unlike EDR's constant edit cost, ERP charges the real distance to a
//! fixed *gap point* `g` for unmatched positions, making it a metric
//! (triangle inequality holds). `g` is conventionally the origin of the
//! data space or its centroid.

use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_geo::Point;
use sts_traj::Trajectory;

/// ERP distance with gap point `g`.
#[derive(Debug, Clone, Copy)]
pub struct ErpDistance {
    gap: Point,
}

impl ErpDistance {
    /// Creates the distance with the given gap point.
    pub fn new(gap: Point) -> Self {
        ErpDistance { gap }
    }
}

impl DistanceMeasure for ErpDistance {
    fn name(&self) -> &'static str {
        "ERP"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa: Vec<Point> = a.locations().collect();
        let pb: Vec<Point> = b.locations().collect();
        let m = pb.len();
        let mut prev = vec![0.0f64; m + 1];
        let mut curr = vec![0.0f64; m + 1];
        // First row: delete all of b against gaps.
        for j in 0..m {
            prev[j + 1] = prev[j] + pb[j].distance(&self.gap);
        }
        for p in &pa {
            curr[0] = prev[0] + p.distance(&self.gap);
            for (j, q) in pb.iter().enumerate() {
                let subst = prev[j] + p.distance(q);
                let del_a = prev[j + 1] + p.distance(&self.gap);
                let del_b = curr[j] + q.distance(&self.gap);
                curr[j + 1] = subst.min(del_a).min(del_b);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m]
    }
}

/// ERP as a similarity measure (`1/(1+d)`).
pub struct Erp(DistanceSimilarity<ErpDistance>);

impl Erp {
    /// Creates the measure with the given gap point.
    pub fn new(gap: Point) -> Self {
        Erp(DistanceSimilarity(ErpDistance::new(gap)))
    }
}

impl SimilarityMeasure for Erp {
    fn name(&self) -> &'static str {
        "ERP"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    fn erp() -> ErpDistance {
        ErpDistance::new(Point::ORIGIN)
    }

    #[test]
    fn identical_is_zero() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(erp().distance(&a, &a), 0.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Erp::new(Point::ORIGIN));
    }

    #[test]
    fn gap_penalty_for_extra_points() {
        // b is a plus one extra point at distance 7 from the gap point.
        let a = Trajectory::from_xyt(&[(1.0, 0.0, 0.0), (2.0, 0.0, 1.0)]).unwrap();
        let b = Trajectory::from_xyt(&[(1.0, 0.0, 0.0), (2.0, 0.0, 1.0), (7.0, 0.0, 2.0)]).unwrap();
        let d = erp().distance(&a, &b);
        assert!((d - 7.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn triangle_inequality_samples() {
        let xs = [
            line(0.0, 1.0, 8, 5.0, 0.0),
            line(10.0, 1.2, 10, 5.0, 0.0),
            line(-5.0, 0.8, 6, 5.0, 0.0),
        ];
        let e = erp();
        for x in &xs {
            for y in &xs {
                for z in &xs {
                    assert!(e.distance(x, z) <= e.distance(x, y) + e.distance(y, z) + 1e-9);
                }
            }
        }
    }
}
