//! KF — Kalman-filter location estimation + DTW (§VI-A).
//!
//! "Kalman filter (KF) is an algorithm to estimate unknown variables
//! that tend to be more accurate than those based on a single
//! measurement. It is used to estimate the object location at a given
//! time in our experiments. After the locations are estimated, we use
//! DTW for similarity comparison."
//!
//! Implementation: each trajectory is RTS-smoothed with the 2-D
//! constant-velocity filter of `sts-stats`, then both are resampled at a
//! unified time step over their own spans; DTW compares the estimated
//! position sequences.

use crate::dtw::dtw_points;
use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_geo::Point;
use sts_stats::{KalmanConfig, KalmanFilter2D};
use sts_traj::Trajectory;

/// KF distance: Kalman smoothing + uniform resampling + DTW.
#[derive(Debug, Clone)]
pub struct KalmanDtwDistance {
    filter: KalmanFilter2D,
    time_step: f64,
}

impl KalmanDtwDistance {
    /// Creates the measure with the filter configuration and the
    /// resampling period (seconds).
    pub fn new(config: KalmanConfig, time_step: f64) -> Self {
        assert!(time_step > 0.0, "time step must be positive");
        KalmanDtwDistance {
            filter: KalmanFilter2D::new(config),
            time_step,
        }
    }

    /// Smooths and resamples one trajectory to estimated positions at the
    /// unified time lattice over its span.
    pub fn estimate(&self, traj: &Trajectory) -> Vec<Point> {
        let obs: Vec<(Point, f64)> = traj.points().iter().map(|p| (p.loc, p.t)).collect();
        let states = self.filter.smooth(&obs);
        let mut out = Vec::new();
        let mut t = traj.start_time();
        let end = traj.end_time();
        loop {
            out.push(KalmanFilter2D::position_at(&states, t));
            if t >= end {
                break;
            }
            t = (t + self.time_step).min(end);
        }
        out
    }
}

impl DistanceMeasure for KalmanDtwDistance {
    fn name(&self) -> &'static str {
        "KF"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        dtw_points(&self.estimate(a), &self.estimate(b))
    }
}

/// KF as a similarity measure (`1/(1+d)`).
pub struct KalmanDtw(DistanceSimilarity<KalmanDtwDistance>);

impl KalmanDtw {
    /// Creates the measure.
    pub fn new(config: KalmanConfig, time_step: f64) -> Self {
        KalmanDtw(DistanceSimilarity(KalmanDtwDistance::new(
            config, time_step,
        )))
    }
}

impl SimilarityMeasure for KalmanDtw {
    fn name(&self) -> &'static str {
        "KF"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    fn kf() -> KalmanDtwDistance {
        KalmanDtwDistance::new(
            KalmanConfig {
                process_noise: 0.5,
                measurement_std: 3.0,
                initial_velocity_var: 25.0,
            },
            5.0,
        )
    }

    #[test]
    fn identical_is_zero() {
        let a = line(0.0, 1.0, 12, 5.0, 0.0);
        assert!(kf().distance(&a, &a) < 1e-9);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&KalmanDtw::new(
            KalmanConfig {
                process_noise: 0.5,
                measurement_std: 3.0,
                initial_velocity_var: 25.0,
            },
            5.0,
        ));
    }

    #[test]
    fn estimate_lattice_covers_span() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0); // 45 s
        let est = kf().estimate(&a);
        assert_eq!(est.len(), 10); // ceil(45/5) + 1
        for p in est {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn smoothing_attenuates_noise() {
        use sts_traj::noise::add_gaussian_noise;
        let clean = line(0.0, 1.0, 40, 5.0, 0.0);
        let mut rng = sts_rng::Xoshiro256pp::seed_from_u64(3);
        let noisy = add_gaussian_noise(&clean, 5.0, &mut rng);
        // DTW on raw noisy points vs DTW on KF-estimated points, against
        // the clean reference.
        let raw: Vec<Point> = noisy.locations().collect();
        let clean_pts: Vec<Point> = clean.locations().collect();
        let d_raw = dtw_points(&raw, &clean_pts);
        let est = kf().estimate(&noisy);
        let clean_est = kf().estimate(&clean);
        let d_est = dtw_points(&est, &clean_est);
        assert!(
            d_est < d_raw,
            "KF should denoise: est {d_est} vs raw {d_raw}"
        );
    }

    #[test]
    fn single_point_trajectory_is_handled() {
        let single = Trajectory::from_xyt(&[(5.0, 5.0, 0.0)]).unwrap();
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert!(kf().distance(&single, &a).is_finite());
    }
}
