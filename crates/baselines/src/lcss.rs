//! Longest Common SubSequence similarity (Vlachos, Kollios & Gunopulos,
//! ICDE 2002 — paper ref. [18]).
//!
//! Two points *match* when they are within `epsilon` meters and (when a
//! temporal window is set) within `delta` seconds; LCSS is the longest
//! in-order chain of matches, normalized by the shorter trajectory's
//! length. The manually defined thresholds are exactly the brittleness
//! §II criticizes ("use manually defined thresholds to match positions").

use crate::SimilarityMeasure;
use sts_traj::Trajectory;

/// LCSS similarity with spatial threshold `epsilon` (meters) and an
/// optional temporal window `delta` (seconds; `None` = spatial only).
#[derive(Debug, Clone, Copy)]
pub struct Lcss {
    epsilon: f64,
    delta: Option<f64>,
}

impl Lcss {
    /// Creates the measure. `epsilon` must be positive.
    pub fn new(epsilon: f64, delta: Option<f64>) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        if let Some(d) = delta {
            assert!(d >= 0.0, "delta must be non-negative");
        }
        Lcss { epsilon, delta }
    }

    fn matches(&self, a: &sts_traj::TrajPoint, b: &sts_traj::TrajPoint) -> bool {
        if a.loc.distance(&b.loc) > self.epsilon {
            return false;
        }
        match self.delta {
            Some(d) => (a.t - b.t).abs() <= d,
            None => true,
        }
    }
}

impl SimilarityMeasure for Lcss {
    fn name(&self) -> &'static str {
        "LCSS"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa = a.points();
        let pb = b.points();
        let m = pb.len();
        let mut prev = vec![0usize; m + 1];
        let mut curr = vec![0usize; m + 1];
        for p in pa {
            for (j, q) in pb.iter().enumerate() {
                curr[j + 1] = if self.matches(p, q) {
                    prev[j] + 1
                } else {
                    prev[j + 1].max(curr[j])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
            curr[0] = 0;
        }
        prev[m] as f64 / pa.len().min(pb.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    #[test]
    fn identical_is_one() {
        let a = line(0.0, 1.0, 15, 5.0, 0.0);
        let m = Lcss::new(1.0, None);
        assert_eq!(m.similarity(&a, &a), 1.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Lcss::new(5.0, None));
    }

    #[test]
    fn far_apart_is_zero() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(100.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(Lcss::new(5.0, None).similarity(&a, &b), 0.0);
    }

    #[test]
    fn temporal_window_excludes_asynchronous_matches() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let shifted = line(0.0, 1.0, 10, 5.0, 1000.0); // same shape, late
        let spatial_only = Lcss::new(1.0, None);
        let temporal = Lcss::new(1.0, Some(10.0));
        assert_eq!(spatial_only.similarity(&a, &shifted), 1.0);
        assert_eq!(temporal.similarity(&a, &shifted), 0.0);
    }

    #[test]
    fn epsilon_controls_tolerance() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(3.0, 1.0, 10, 5.0, 0.0); // 3 m offset
        assert_eq!(Lcss::new(2.0, None).similarity(&a, &b), 0.0);
        assert_eq!(Lcss::new(4.0, None).similarity(&a, &b), 1.0);
    }

    #[test]
    fn normalizes_by_shorter_length() {
        let a = line(0.0, 1.0, 5, 5.0, 0.0);
        let b = line(0.0, 1.0, 10, 5.0, 0.0); // superset of a's points
        assert_eq!(Lcss::new(1.0, None).similarity(&a, &b), 1.0);
    }
}
