#![warn(missing_docs)]
//! # sts-baselines — comparison measures rebuilt from scratch
//!
//! The similarity measures the paper evaluates STS against (§VI-A), plus
//! the classic spatial measures the related-work section frames (DTW,
//! LCSS, EDR, ERP, discrete Fréchet — also needed as components: APM and
//! KF calibrate and then run DTW).
//!
//! | Measure | Paper ref | Module |
//! |---------|-----------|--------|
//! | CATS    | [21]      | [`cats`] |
//! | EDwP    | [15]      | [`edwp`] |
//! | APM     | [34]      | [`apm`] |
//! | KF      | —         | [`kf`] |
//! | WGM     | [19]      | [`wgm`] |
//! | SST     | [32]      | [`sst`] |
//! | DTW     | [13]      | [`dtw`] |
//! | LCSS    | [18]      | [`lcss`] |
//! | EDR     | [14]      | [`edr`] |
//! | ERP     | [28]      | [`erp`] |
//! | Fréchet | [30]      | [`frechet`] |
//! | FTL     | [1] (also ST-Link [22], SLIM [23]) | [`ftl`] |
//! | STED    | [33]      | [`sted`] |
//!
//! The original implementations were Python/Java research code that is
//! not shipped with the paper; each module documents the published
//! definition it follows and any reconstruction choices (`DESIGN.md` §2).
//!
//! Every measure implements [`SimilarityMeasure`]: **higher = more
//! similar**. Distance functions are wrapped by
//! [`DistanceSimilarity`] (`1/(1+d)`), which preserves rankings — the
//! trajectory-matching task only consumes ranks.

pub mod apm;
pub mod cats;
pub mod dtw;
pub mod edr;
pub mod edwp;
pub mod erp;
pub mod frechet;
pub mod ftl;
pub mod kf;
pub mod lcss;
pub mod sst;
pub mod sted;
pub mod wgm;

pub use apm::Apm;
pub use cats::Cats;
pub use dtw::Dtw;
pub use edr::Edr;
pub use edwp::Edwp;
pub use erp::Erp;
pub use frechet::DiscreteFrechet;
pub use ftl::Ftl;
pub use kf::KalmanDtw;
pub use lcss::Lcss;
pub use sst::Sst;
pub use sted::Sted;
pub use wgm::Wgm;

use sts_traj::Trajectory;

/// A trajectory similarity measure: higher = more similar.
pub trait SimilarityMeasure: Send + Sync {
    /// Short display name used in experiment reports (matches the
    /// paper's figure legends).
    fn name(&self) -> &'static str;

    /// The similarity of two trajectories. Must be symmetric.
    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64;
}

/// A trajectory distance function: lower = more similar.
pub trait DistanceMeasure: Send + Sync {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// The distance between two trajectories. Must be symmetric and
    /// non-negative.
    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64;
}

/// Adapts a [`DistanceMeasure`] into a [`SimilarityMeasure`] via the
/// order-reversing map `s = 1 / (1 + d)`.
pub struct DistanceSimilarity<D: DistanceMeasure>(pub D);

impl<D: DistanceMeasure> SimilarityMeasure for DistanceSimilarity<D> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        1.0 / (1.0 + self.0.distance(a, b))
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use sts_traj::{TrajPoint, Trajectory};

    /// Straight-line walker along y = `y` at `speed` m/s, one fix every
    /// `dt` seconds, starting at `t0`.
    pub fn line(y: f64, speed: f64, n: usize, dt: f64, t0: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = t0 + i as f64 * dt;
                    TrajPoint::from_xy(speed * (t - t0), y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    /// Asserts the three-way sanity contract shared by all baselines:
    /// self-similarity ≥ near ≥ far.
    pub fn assert_ranking<M: super::SimilarityMeasure>(m: &M) {
        let a = line(0.0, 1.0, 20, 5.0, 0.0);
        let near = line(2.0, 1.0, 20, 5.0, 2.0);
        let far = line(500.0, 1.0, 20, 5.0, 2.0);
        let s_self = m.similarity(&a, &a);
        let s_near = m.similarity(&a, &near);
        let s_far = m.similarity(&a, &far);
        assert!(
            s_self >= s_near,
            "{}: self {s_self} < near {s_near}",
            m.name()
        );
        assert!(s_near > s_far, "{}: near {s_near} <= far {s_far}", m.name());
        // Symmetry.
        let ab = m.similarity(&a, &near);
        let ba = m.similarity(&near, &a);
        assert!(
            (ab - ba).abs() < 1e-9,
            "{}: asymmetric {ab} vs {ba}",
            m.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::Point;

    struct Const(f64);
    impl DistanceMeasure for Const {
        fn name(&self) -> &'static str {
            "const"
        }
        fn distance(&self, _: &Trajectory, _: &Trajectory) -> f64 {
            self.0
        }
    }

    #[test]
    fn distance_adapter_reverses_order() {
        let t = Trajectory::new(vec![sts_traj::TrajPoint::new(Point::ORIGIN, 0.0)]).unwrap();
        let close = DistanceSimilarity(Const(0.0)).similarity(&t, &t);
        let far = DistanceSimilarity(Const(9.0)).similarity(&t, &t);
        assert_eq!(close, 1.0);
        assert_eq!(far, 0.1);
    }
}
