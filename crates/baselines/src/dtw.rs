//! Dynamic Time Warping (Yi, Jagadish & Faloutsos, ICDE 1998 — paper
//! ref. [13]).
//!
//! The classic elastic alignment: every point of one trajectory is
//! matched to at least one point of the other, in order, minimizing the
//! summed pointwise distance. Purely spatial — timestamps are ignored —
//! which is exactly the limitation §II calls out. Besides serving as a
//! reference measure, DTW is the post-calibration metric of the APM and
//! KF baselines (§VI-A).

use crate::{DistanceMeasure, DistanceSimilarity, SimilarityMeasure};
use sts_geo::Point;
use sts_traj::Trajectory;

/// DTW distance over point sequences.
#[derive(Debug, Clone, Copy, Default)]
pub struct DtwDistance;

/// Computes DTW over raw point slices (shared with APM/KF which align
/// derived point sequences rather than trajectories).
pub fn dtw_points(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "DTW needs non-empty inputs");
    let m = b.len();
    // Rolling single-row DP; O(n·m) time, O(m) space.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for pa in a {
        curr[0] = f64::INFINITY;
        for (j, pb) in b.iter().enumerate() {
            let cost = pa.distance(pb);
            curr[j + 1] = cost + prev[j].min(prev[j + 1]).min(curr[j]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

impl DistanceMeasure for DtwDistance {
    fn name(&self) -> &'static str {
        "DTW"
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa: Vec<Point> = a.locations().collect();
        let pb: Vec<Point> = b.locations().collect();
        dtw_points(&pa, &pb)
    }
}

/// DTW as a similarity measure (`1/(1+d)`).
pub struct Dtw(DistanceSimilarity<DtwDistance>);

impl Dtw {
    /// Creates the measure.
    pub fn new() -> Self {
        Dtw(DistanceSimilarity(DtwDistance))
    }
}

impl Default for Dtw {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityMeasure for Dtw {
    fn name(&self) -> &'static str {
        "DTW"
    }

    fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_ranking, line};

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        assert_eq!(DtwDistance.distance(&a, &a), 0.0);
        assert_eq!(Dtw::new().similarity(&a, &a), 1.0);
    }

    #[test]
    fn ranking_contract() {
        assert_ranking(&Dtw::new());
    }

    #[test]
    fn known_small_case() {
        // a = (0,0), (1,0); b = (0,0), (2,0).
        // Optimal alignment: (a1,b1) + (a2,b2) = 0 + 1 = 1.
        let a = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]).unwrap();
        let b = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (2.0, 0.0, 1.0)]).unwrap();
        assert!((DtwDistance.distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_unequal_lengths() {
        // Same 20 m of line, sampled with 5 vs 17 points.
        let a = line(0.0, 1.0, 5, 5.0, 0.0);
        let b = line(0.0, 1.0, 17, 1.25, 0.0);
        let d = DtwDistance.distance(&a, &b);
        assert!(d.is_finite());
        // Many-to-one matches absorb the density difference cheaply.
        assert!(d < 50.0, "got {d}");
    }

    #[test]
    fn ignores_time_shifts_entirely() {
        // Same spatial footprint, wildly different timestamps: DTW can't
        // tell them apart — the weakness STS addresses.
        let a = line(0.0, 1.0, 10, 5.0, 0.0);
        let b = line(0.0, 1.0, 10, 5.0, 100_000.0);
        assert_eq!(DtwDistance.distance(&a, &b), 0.0);
    }

    #[test]
    fn dtw_points_single_elements() {
        let d = dtw_points(&[Point::new(0.0, 0.0)], &[Point::new(3.0, 4.0)]);
        assert!((d - 5.0).abs() < 1e-12);
    }
}
