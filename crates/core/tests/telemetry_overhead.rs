//! Overhead guard: telemetry that is switched off must be close to
//! free. Runs as its own test binary so the process-global kill
//! switches (`set_metrics_enabled(false)`, no subscriber) cannot leak
//! into the end-to-end telemetry suite.
//!
//! Bounds are deliberately generous — they catch a disabled path that
//! regresses to locking or allocation, not nanosecond drift on shared
//! CI hardware. Fixtures use fixed seeds.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use sts_core::{Sts, StsConfig};
use sts_geo::{BoundingBox, Grid, Point};
use sts_obs::{set_metrics_enabled, static_counter, static_gauge, static_histogram, trace};
use sts_rng::{Rng, Xoshiro256pp};
use sts_traj::{TrajPoint, Trajectory};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..5)
                    .map(|i| {
                        let t = phase + 10.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// With metrics disabled and no subscriber installed, every telemetry
/// primitive is a relaxed atomic load — far under 1 µs per call even
/// in a debug build on loaded hardware.
#[test]
fn disabled_primitives_stay_under_a_microsecond() {
    let _guard = serial();
    set_metrics_enabled(false);
    trace::clear_subscriber();
    assert!(!sts_obs::metrics_enabled());
    assert!(!trace::tracing_enabled());

    const N: u32 = 1_000_000;
    let per_call = |label: &str, elapsed: Duration| {
        let each = elapsed / N;
        assert!(
            each < Duration::from_micros(1),
            "disabled {label} costs {each:?} per call"
        );
    };

    let start = Instant::now();
    for _ in 0..N {
        static_counter!("overhead.counter").incr();
    }
    per_call("counter.incr", start.elapsed());

    let start = Instant::now();
    for i in 0..N {
        static_gauge!("overhead.gauge").set(i as i64);
    }
    per_call("gauge.set", start.elapsed());

    let start = Instant::now();
    for i in 0..N {
        static_histogram!("overhead.histogram").record(i as u64);
    }
    per_call("histogram.record", start.elapsed());

    let start = Instant::now();
    for _ in 0..N {
        let _span = trace::span("overhead.span");
    }
    per_call("span", start.elapsed());

    // Nothing was recorded while disabled.
    let snap = sts_obs::metrics::global().snapshot();
    assert_eq!(snap.counter("overhead.counter"), Some(0));
    assert_eq!(snap.histogram("overhead.histogram").unwrap().count, 0);

    set_metrics_enabled(true);
}

/// The instrumented similarity matrix stays within noise of the same
/// work done through the bare per-pair API when telemetry is off. The
/// 3× bound is generous: the real delta is a handful of relaxed loads
/// per pair against ~10⁵ ns of STP arithmetic.
#[test]
fn instrumented_matrix_within_noise_of_bare_loop() {
    let _guard = serial();
    set_metrics_enabled(false);
    trace::clear_subscriber();

    let grid = Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        6.0,
    )
    .unwrap();
    let sts = Sts::new(StsConfig::default(), grid);
    let qs = corpus(0x0F_F0, 6);

    let bare = || {
        let prepared: Vec<_> = qs.iter().map(|t| sts.prepare(t).unwrap()).collect();
        let mut acc = 0.0;
        for a in &prepared {
            for b in &prepared {
                acc += sts.similarity_prepared(a, b);
            }
        }
        acc
    };
    let instrumented = || {
        sts.similarity_matrix(&qs, &qs)
            .unwrap()
            .iter()
            .flatten()
            .sum::<f64>()
    };

    // Warm-up, then interleaved runs so clock drift hits both sides.
    let (mut acc_bare, mut acc_inst) = (bare(), instrumented());
    let mut bare_ns = Vec::new();
    let mut inst_ns = Vec::new();
    for _ in 0..5 {
        let t = Instant::now();
        acc_bare += bare();
        bare_ns.push(t.elapsed().as_nanos());
        let t = Instant::now();
        acc_inst += instrumented();
        inst_ns.push(t.elapsed().as_nanos());
    }
    assert!(acc_bare.is_finite() && acc_inst.is_finite());
    bare_ns.sort_unstable();
    inst_ns.sort_unstable();
    let (bare_med, inst_med) = (bare_ns[2], inst_ns[2]);
    assert!(
        inst_med <= bare_med.saturating_mul(3),
        "instrumented matrix {inst_med} ns vs bare loop {bare_med} ns (> 3×)"
    );

    set_metrics_enabled(true);
}
