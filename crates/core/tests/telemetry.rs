//! End-to-end telemetry over a real supervised job: JSONL traces cover
//! every pipeline stage, metric totals are thread-count invariant, and
//! `JobConfig::telemetry` attaches the registry delta to the report.
//!
//! The metrics registry and trace subscriber are process-global, so
//! every test here serializes on one poison-tolerant lock. The overhead
//! guard lives in a separate test binary (`telemetry_overhead.rs`) —
//! separate process, no shared registry.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use sts_core::{CheckpointConfig, JobConfig, Sts, StsConfig};
use sts_geo::{BoundingBox, Grid, Point};
use sts_obs::json::is_valid_json;
use sts_obs::{clear_subscriber, set_subscriber, JsonlSubscriber};
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::JobState;
use sts_traj::{TrajPoint, Trajectory};

/// Serializes tests that touch the process-global registry/subscriber.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        6.0,
    )
    .unwrap()
}

/// A seeded corpus of straight walkers with varied lanes and phases.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..5)
                    .map(|i| {
                        let t = phase + 10.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// A unique temp path that is cleaned up on drop.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-telemetry-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempFile(dir.join(tag.to_string()))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

/// `STS_TRACE=jsonl`-equivalent: a JSONL subscriber on a file captures
/// parseable span/event lines covering prepare → chunk work →
/// checkpoint, stitched into one tree under `job.run`.
#[test]
fn jsonl_trace_covers_the_job_stages() {
    let _guard = serial();
    let trace = TempFile::new("stages.jsonl");
    let ckpt = TempFile::new("stages.ckpt");

    let sub = Arc::new(JsonlSubscriber::to_file(&trace.0).unwrap());
    set_subscriber(sub.clone());
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(11, 10);
    let cfg = JobConfig {
        checkpoint: Some(CheckpointConfig {
            path: ckpt.0.clone(),
            flush_every_chunks: 2,
        }),
        chunk_pairs: 8,
        threads: 2,
        ..JobConfig::default()
    };
    let (_, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    clear_subscriber();
    assert_eq!(report.state(), JobState::Complete);
    assert_eq!(sub.write_errors(), 0);

    let text = std::fs::read_to_string(&trace.0).unwrap();
    let mut span_names = BTreeSet::new();
    let mut event_names = BTreeSet::new();
    let mut lines = 0;
    for line in text.lines() {
        lines += 1;
        assert!(is_valid_json(line), "unparseable trace line: {line}");
        let name = line
            .split("\"name\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("trace line without a name: {line}"))
            .to_string();
        if line.starts_with("{\"type\":\"span\"") {
            span_names.insert(name);
        } else {
            assert!(line.starts_with("{\"type\":\"event\""), "{line}");
            event_names.insert(name);
        }
    }
    assert!(lines > 10, "expected a real trace, got {lines} lines");
    for required in [
        "job.run",
        "job.prepare",
        "sts.prepare",
        "pool.run",
        "pool.chunk",
        "checkpoint.save",
    ] {
        assert!(
            span_names.contains(required),
            "missing span {required}; got {span_names:?}"
        );
    }
    assert!(
        event_names.contains("job.checkpoint_flush"),
        "missing flush event; got {event_names:?}"
    );
}

/// Resuming from a checkpoint traces `checkpoint.load` + `job.resume`.
#[test]
fn resume_traces_checkpoint_load() {
    let _guard = serial();
    let trace = TempFile::new("resume.jsonl");
    let ckpt = TempFile::new("resume.ckpt");

    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(12, 8);
    let base_cfg = JobConfig {
        checkpoint: Some(CheckpointConfig {
            path: ckpt.0.clone(),
            flush_every_chunks: 1,
        }),
        chunk_pairs: 8,
        threads: 1,
        ..JobConfig::default()
    };
    // First pass writes checkpoints but is budget-cut partway.
    let cfg = JobConfig {
        budget: sts_runtime::Budget::with_max_pairs(24),
        ..base_cfg.clone()
    };
    let (_, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    assert_eq!(report.state(), JobState::BudgetExhausted);

    // Second pass resumes under tracing.
    let sub = Arc::new(JsonlSubscriber::to_file(&trace.0).unwrap());
    set_subscriber(sub);
    let (_, report) = sts
        .similarity_matrix_supervised(&qs, &qs, &base_cfg)
        .unwrap();
    clear_subscriber();
    assert_eq!(report.state(), JobState::Complete);
    assert!(report.stats.pairs_resumed > 0, "{report}");

    let text = std::fs::read_to_string(&trace.0).unwrap();
    for required in ["\"checkpoint.load\"", "\"job.resume\""] {
        assert!(text.contains(required), "missing {required} in trace");
    }
}

/// The same job produces the same work counters whether it runs on one
/// thread or eight — instrumentation must not perturb determinism.
#[test]
fn metric_totals_are_thread_count_invariant() {
    let _guard = serial();
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(13, 9);
    let watched = [
        "core.pairs.scored",
        "core.stp.evals",
        "core.stp.cells",
        "core.trajectories.prepared",
        "core.speed_models.built",
    ];

    let mut totals: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 8] {
        let base = sts_obs::metrics::global().snapshot();
        let cfg = JobConfig {
            threads,
            chunk_pairs: 8,
            ..JobConfig::default()
        };
        let (_, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
        assert_eq!(report.state(), JobState::Complete);
        let delta = sts_obs::metrics::global().snapshot().since(&base);
        totals.push(
            watched
                .iter()
                .map(|name| delta.counter(name).unwrap_or(0))
                .collect(),
        );
    }
    assert_eq!(
        totals[0], totals[1],
        "counter deltas diverged between 1 and 8 threads ({watched:?})"
    );
    assert_eq!(totals[0][0], 81, "9×9 pairs all scored");
}

/// `JobConfig::telemetry` attaches the job's registry delta to the
/// report, and the section serializes to parseable JSONL.
#[test]
fn telemetry_section_reports_job_work() {
    let _guard = serial();
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(14, 6);

    // Off by default.
    let (_, report) = sts
        .similarity_matrix_supervised(&qs, &qs, &JobConfig::default())
        .unwrap();
    assert!(report.telemetry.is_none());

    let cfg = JobConfig {
        telemetry: true,
        ..JobConfig::default()
    };
    let (_, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    let t = report.telemetry.as_ref().expect("telemetry requested");
    assert_eq!(
        t.metrics.counter("core.pairs.scored"),
        Some(report.stats.pairs_completed as u64),
        "{report}"
    );
    for line in t.metrics.to_jsonl_string().lines() {
        assert!(is_valid_json(line), "unparseable telemetry line: {line}");
    }
    // The zero-valued instruments of other subsystems are dropped.
    assert_eq!(t.metrics.counter("robust.injections"), None);
    // The report's Display mentions the section.
    assert!(report.to_string().contains("telemetry:"), "{report}");
}
