//! Cross-process trace propagation for the sharded fleet: a real
//! `sts-worker serve-tcp` subprocess fleet runs under a coordinator
//! whose tracing is on, and the coordinator's merged view must be a
//! *single coherent trace*:
//!
//! * every worker span shipped over the wire re-parents under the
//!   coordinator's `job.shard` span — no orphan spans anywhere;
//! * every line the JSONL subscriber exported is valid JSON;
//! * the `shard.tile.*` lifecycle events reconstruct a complete
//!   lease → deal → commit timeline for every tile;
//! * the fleet-merged telemetry attached to the job report reconciles
//!   exactly: fleet-summed `core.pairs.scored` equals the matrix pair
//!   count, and so does the coordinator's commit tally.
//!
//! This file is one test on purpose: the trace subscriber and metrics
//! registry are process-global, and this is the only test in this
//! process, so the deltas below are exact.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use sts_core::{
    default_worker_path, ExecMode, JobConfig, ShardOptions, Sts, StsConfig, TileConfig,
};
use sts_geo::{BoundingBox, Grid, Point};
use sts_obs::{
    build_timeline, parse_jsonl, write_chrome_trace, FanoutSubscriber, JsonlSubscriber,
    RingRecorder, Subscriber,
};
use sts_rng::{Rng, Xoshiro256pp};
use sts_traj::{TrajPoint, Trajectory};

const N: usize = 8; // N×N pair matrix
const TILE_PAIRS: usize = 16;
const N_TILES: usize = N * N / TILE_PAIRS;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        8.0,
    )
    .unwrap()
}

fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        let t = phase + 12.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// RAII temp dir + trace file under the system tmp dir.
struct Temp(PathBuf);

impl Temp {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sts-fleet-trace-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Temp(dir)
    }
}

impl Drop for Temp {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn subprocess_fleet_produces_one_coherent_trace_and_exact_telemetry() {
    let worker = default_worker_path();
    if !worker.is_file() {
        eprintln!(
            "skipping fleet trace test: worker binary not built at {}",
            worker.display()
        );
        return;
    }
    let tmp = Temp::new("run");
    let trace_path = tmp.0.join("trace.jsonl");
    let ring = Arc::new(RingRecorder::new(4096));
    let jsonl = Arc::new(JsonlSubscriber::to_file(&trace_path).unwrap());
    sts_obs::set_subscriber(Arc::new(FanoutSubscriber::new(vec![
        ring.clone() as Arc<dyn Subscriber>,
        jsonl.clone() as Arc<dyn Subscriber>,
    ])));

    let sts = Sts::new(StsConfig::default(), grid());
    let queries = corpus(0xF1EE_7001, N);
    let candidates = corpus(0xF1EE_7002, N);
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(tmp.0.join("tiles"))
    };
    let cfg = JobConfig {
        telemetry: true,
        exec: ExecMode::Sharded(ShardOptions {
            worker: Some(worker),
            workers: 2,
            ..ShardOptions::default()
        }),
        ..JobConfig::default()
    };
    let (matrix, report) = sts
        .similarity_matrix_tiled(&queries, &candidates, &cfg, &tiling)
        .unwrap();
    sts_obs::clear_subscriber();
    assert!(report.is_complete(), "{report}");
    assert_eq!(matrix.len() * matrix[0].len(), N * N);

    let shard = report.stats.shard.expect("sharded job reports ShardStats");
    assert_eq!(shard.tiles_local_fallback, 0, "clean run: no fallback");
    assert_eq!(
        shard.telemetry_flushes, shard.workers_spawned,
        "every worker alive at shutdown flushes exactly once ({shard:?})"
    );

    // --- Every exported line is valid JSON; no span is orphaned. ---
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert_eq!(jsonl.write_errors(), 0);
    let log = parse_jsonl(&text);
    assert_eq!(log.skipped, 0, "every exported line must be valid JSON");
    assert!(!log.spans.is_empty() && !log.events.is_empty());
    assert_eq!(
        log.orphan_spans(),
        Vec::<u64>::new(),
        "no span may reference an unknown parent"
    );

    // --- Every worker span resolves to a coordinator ancestor. ---
    let by_id: BTreeMap<u64, &sts_obs::timeline::OwnedSpan> =
        log.spans.iter().map(|s| (s.id, s)).collect();
    let shard_span = log
        .spans
        .iter()
        .find(|s| s.name == "job.shard")
        .expect("the coordinator exported its job.shard span");
    let worker_spans: Vec<_> = log
        .spans
        .iter()
        .filter(|s| s.name.starts_with("worker."))
        .collect();
    assert!(
        worker_spans.iter().any(|s| s.name == "worker.serve")
            && worker_spans.iter().any(|s| s.name == "worker.chunk"),
        "the fleet shipped both serve and chunk spans: {worker_spans:?}"
    );
    for span in &worker_spans {
        // Shipped ids were rebased into a per-connection window above
        // any coordinator-local id.
        assert!(span.id >= 1 << 32, "worker span id not rebased: {span:?}");
        let mut cur = *span;
        let mut hops = 0;
        while cur.id != shard_span.id {
            let parent = by_id.get(&cur.parent).unwrap_or_else(|| {
                panic!("worker span {span:?} does not resolve to a coordinator ancestor")
            });
            cur = parent;
            hops += 1;
            assert!(hops < 16, "parent chain cycle from {span:?}");
        }
    }
    // Worker clocks were mapped into coordinator trace time: every
    // chunk span lands inside (a generously padded) job.shard window.
    let lo = shard_span.start_ns.saturating_sub(1_000_000_000);
    let hi = shard_span.start_ns + shard_span.dur_ns + 1_000_000_000;
    for span in &worker_spans {
        assert!(
            (lo..=hi).contains(&span.start_ns),
            "worker span outside the mapped clock window: {span:?} vs job.shard {shard_span:?}"
        );
    }

    // --- The lifecycle timeline reconstructs every tile. ---
    let tiles = build_timeline(&log);
    assert_eq!(tiles.len(), N_TILES, "one lifecycle per tile");
    for t in &tiles {
        assert!(!t.lease_ns.is_empty(), "tile {} never leased", t.tile);
        assert!(!t.deal_ns.is_empty(), "tile {} never dealt", t.tile);
        assert!(t.commit_ns.is_some(), "tile {} never committed", t.tile);
        assert!(t.fallback_ns.is_none(), "tile {} fell back locally", t.tile);
        assert!(t.complete());
    }
    let mut chrome = Vec::new();
    write_chrome_trace(&log, &mut chrome).unwrap();
    assert!(sts_obs::json::is_valid_json(
        std::str::from_utf8(&chrome).unwrap()
    ));

    // --- Fleet telemetry reconciles exactly. ---
    // Subprocess workers own their registries, so the fleet-summed
    // counters in the report are exactly the work performed: on a
    // clean run every pair is scored once and committed once.
    let t = report.telemetry.as_ref().expect("telemetry was requested");
    assert_eq!(
        t.metrics.counter("core.pairs.scored"),
        Some((N * N) as u64),
        "fleet-summed scored pairs == matrix pair count"
    );
    assert_eq!(
        t.metrics.counter("shard.pairs.committed"),
        Some((N * N) as u64),
        "coordinator committed every pair exactly once"
    );
    let attributed: u64 = t
        .metrics
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("core.pairs.scored{worker="))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(
        attributed,
        (N * N) as u64,
        "per-worker attribution sums to the fleet total: {:?}",
        t.metrics.counters
    );
}
