//! Differential equivalence suite for the STP-cache hot path.
//!
//! [`StpCacheMode::Off`] is the uncached oracle — Algorithm 1 exactly
//! as written. These tests pin the cached paths against it:
//!
//! * `Exact` mode must agree **bit for bit** — on full matrices, on
//!   top-k, through checkpoint crash→resume, and through
//!   `ExecMode::Subprocess` workers;
//! * `Lattice` mode is a documented tolerance-gated approximation
//!   (same co-location curve, different time quadrature), so it is
//!   gated on *ranking* agreement, not bit equality.
//!
//! Scenario axes per seed: Gaussian noise on a normal grid, a
//! degenerate single-cell grid, duplicate timestamps across
//! trajectories, and corpora containing quarantined (single-point)
//! inputs. Seeded assertions embed the seed and scenario so a CI
//! failure replays exactly (`scripts/ci.sh` convention).

use std::path::PathBuf;
use sts_core::{
    default_worker_path, CheckpointConfig, ExecMode, IsolateOptions, JobConfig, PairOutcome,
    StpCacheMode, Sts, StsConfig,
};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::check::Checker;
use sts_rng::{prop_assert, Rng, Xoshiro256pp};
use sts_runtime::{Budget, CancelToken, JobState};
use sts_traj::Trajectory;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        5.0,
    )
    .unwrap()
}

/// A grid whose single cell covers the whole area: every in-span STP
/// distribution collapses to one entry of weight 1.
fn single_cell_grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        120.0,
    )
    .unwrap()
}

/// Seeded random walks confined to the grid; all preparable.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut x = rng.random_range(20.0..80.0);
            let mut y = rng.random_range(20.0..80.0);
            let mut t = rng.random_range(0.0..5.0);
            let pts: Vec<(f64, f64, f64)> = (0..10)
                .map(|_| {
                    x = (x + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    y = (y + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    t += rng.random_range(2.0..8.0);
                    (x, y, t)
                })
                .collect();
            Trajectory::from_xyt(&pts).unwrap()
        })
        .collect()
}

/// Walkers that all sample at the *same* integer timestamps, so every
/// merged list is full of exact duplicates (the multiplicity-weighted
/// branch of Eq. 10).
fn duplicate_stamp_corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(10.0..90.0);
            let speed = rng.random_range(1.0..3.0);
            let pts: Vec<(f64, f64, f64)> = (0..8)
                .map(|i| {
                    let t = 10.0 * i as f64; // identical stamps for all
                    ((speed * t).clamp(0.5, 99.5), y, t)
                })
                .collect();
            Trajectory::from_xyt(&pts).unwrap()
        })
        .collect()
}

/// A corpus with two unpreparable (single-point) members that the
/// supervised path must quarantine identically in every mode.
fn quarantined_corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut c = corpus(seed, n);
    c[0] = Trajectory::from_xyt(&[(50.0, 50.0, 0.0)]).unwrap();
    c[n / 2] = Trajectory::from_xyt(&[(20.0, 80.0, 10.0)]).unwrap();
    c
}

/// The four scenario axes: `(name, grid, corpus)`.
fn scenarios(seed: u64) -> Vec<(&'static str, Grid, Vec<Trajectory>)> {
    vec![
        ("gaussian", grid(), corpus(seed, 6)),
        ("single-cell-grid", single_cell_grid(), corpus(seed, 6)),
        ("duplicate-stamps", grid(), duplicate_stamp_corpus(seed, 6)),
        ("quarantined", grid(), quarantined_corpus(seed, 6)),
    ]
}

fn sts_with(grid: Grid, mode: StpCacheMode) -> Sts {
    Sts::new(StsConfig::default(), grid).with_cache_mode(mode)
}

/// Every cell's exact bit pattern (non-scores as `None`), so matrix
/// comparison covers outcomes, not just values.
fn score_bits(matrix: &[Vec<PairOutcome>]) -> Vec<Vec<Option<u64>>> {
    matrix
        .iter()
        .map(|row| row.iter().map(|c| c.score().map(f64::to_bits)).collect())
        .collect()
}

/// A unique temp path that is cleaned up on drop.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-cache-equiv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempCkpt(dir.join(format!("{tag}.ckpt")))
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

/// The tentpole differential: `Exact` cached scoring is bit-identical
/// to the uncached oracle on full matrices and top-k, across 8 seeds
/// and all four scenario axes, under a multi-threaded pool.
#[test]
fn exact_mode_matches_uncached_oracle_bit_for_bit() {
    for seed in 0..8u64 {
        for (scenario, g, ts) in scenarios(seed) {
            let cfg = JobConfig {
                threads: 3,
                chunk_pairs: 5,
                ..JobConfig::default()
            };
            let off = sts_with(g.clone(), StpCacheMode::Off);
            let exact = sts_with(g, StpCacheMode::Exact);
            let (m_off, r_off) = off.similarity_matrix_supervised(&ts, &ts, &cfg).unwrap();
            let (m_exact, r_exact) = exact.similarity_matrix_supervised(&ts, &ts, &cfg).unwrap();
            assert_eq!(
                score_bits(&m_off),
                score_bits(&m_exact),
                "seed={seed} scenario={scenario}: cached matrix differs from oracle"
            );
            assert_eq!(
                r_off.batch.quarantine_count(),
                r_exact.batch.quarantine_count(),
                "seed={seed} scenario={scenario}: quarantine sets diverge"
            );

            let (top_off, _) = off.top_k_supervised(&ts[1], &ts, 4, &cfg).unwrap();
            let (top_exact, _) = exact.top_k_supervised(&ts[1], &ts, 4, &cfg).unwrap();
            let bits = |v: &[(usize, f64)]| -> Vec<(usize, u64)> {
                v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
            };
            assert_eq!(
                bits(&top_off),
                bits(&top_exact),
                "seed={seed} scenario={scenario}: top-k differs"
            );
        }
    }
}

/// Lattice mode is an approximation, so it is gated on ranking: on a
/// corpus of well-separated lane walkers, the best match of every
/// query under the lattice score is the best match under the oracle,
/// and scores stay in [0, 1].
#[test]
fn lattice_mode_preserves_oracle_ranking_on_separated_lanes() {
    for seed in 0..8u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0x7A77 ^ seed);
        // Pairs of co-moving walkers in well-separated lanes: lane k
        // holds trajectories 2k and 2k+1.
        let ts: Vec<Trajectory> = (0..3)
            .flat_map(|lane| {
                let y = 15.0 + 30.0 * lane as f64;
                let speed = rng.random_range(1.5..2.5);
                [0.0, 4.0].map(|phase| {
                    let pts: Vec<(f64, f64, f64)> = (0..8)
                        .map(|i| {
                            let t = phase + 10.0 * i as f64;
                            ((speed * t).clamp(0.5, 99.5), y, t)
                        })
                        .collect();
                    Trajectory::from_xyt(&pts).unwrap()
                })
            })
            .collect();
        let off = sts_with(grid(), StpCacheMode::Off);
        let lat = sts_with(grid(), StpCacheMode::Lattice { dt: 10.0 });
        let m_off = off.similarity_matrix(&ts, &ts).unwrap();
        let m_lat = lat.similarity_matrix(&ts, &ts).unwrap();
        for (i, (row_off, row_lat)) in m_off.iter().zip(&m_lat).enumerate() {
            let best = |row: &[f64]| -> usize {
                row.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0
            };
            assert_eq!(
                best(row_off),
                best(row_lat),
                "seed={seed} query={i}: lattice best match diverges from oracle \
                 (off={row_off:?} lat={row_lat:?})"
            );
            for (j, s) in row_lat.iter().enumerate() {
                assert!(
                    (0.0..=1.0 + 1e-12).contains(s),
                    "seed={seed} ({i},{j}): lattice score {s} out of [0,1]"
                );
            }
        }
    }
}

/// Exact cached scoring through a checkpoint crash→resume is
/// bit-identical to an *uncached, uninterrupted* run — the cache never
/// leaks into what gets persisted or restored.
#[test]
fn crash_resume_with_cached_scoring_matches_uncached_uninterrupted_run() {
    for seed in 0..4u64 {
        let ts = corpus(0xEC40 + seed, 10); // 100 pairs
        let oracle = sts_with(grid(), StpCacheMode::Off)
            .similarity_matrix_supervised(&ts, &ts, &JobConfig::default())
            .unwrap()
            .0;

        let exact = sts_with(grid(), StpCacheMode::Exact);
        let ckpt = TempCkpt::new(&format!("cache-resume-{seed}"));
        let crash_cfg = JobConfig {
            cancel: CancelToken::new(),
            budget: Budget::with_max_pairs(48),
            chunk_pairs: 8,
            checkpoint: Some(CheckpointConfig {
                path: ckpt.0.clone(),
                flush_every_chunks: 1,
            }),
            ..JobConfig::default()
        };
        let (_partial, crash_report) = exact
            .similarity_matrix_supervised(&ts, &ts, &crash_cfg)
            .unwrap();
        assert!(
            !crash_report.is_complete(),
            "seed={seed}: the crashed run must not finish ({crash_report})"
        );
        assert!(ckpt.0.exists(), "seed={seed}: no checkpoint written");

        let resume_cfg = JobConfig {
            checkpoint: Some(CheckpointConfig::new(ckpt.0.clone())),
            chunk_pairs: 8,
            ..JobConfig::default()
        };
        let (resumed, resume_report) = exact
            .similarity_matrix_supervised(&ts, &ts, &resume_cfg)
            .unwrap();
        assert_eq!(
            resume_report.state(),
            JobState::Complete,
            "seed={seed}: {resume_report}"
        );
        assert!(
            resume_report.stats.pairs_resumed > 0,
            "seed={seed}: nothing restored from the checkpoint"
        );
        assert_eq!(
            score_bits(&resumed),
            score_bits(&oracle),
            "seed={seed}: resumed cached matrix differs from uncached oracle"
        );
    }
}

/// `ExecMode::Subprocess` with cached scoring: the worker rebuilds the
/// measure (cache mode included) from the preamble and must agree bit
/// for bit with the in-process oracle. Skipped when the worker binary
/// has not been built yet.
#[test]
fn subprocess_cached_scoring_matches_in_process_oracle() {
    let worker = default_worker_path();
    if !worker.is_file() {
        eprintln!(
            "skipping subprocess differential: worker binary not built at {}",
            worker.display()
        );
        return;
    }
    for seed in 0..2u64 {
        let ts = corpus(0x5B0C + seed, 6);
        let sub_cfg = JobConfig {
            exec: ExecMode::Subprocess(IsolateOptions {
                worker: Some(worker.clone()),
                ..IsolateOptions::default()
            }),
            chunk_pairs: 8,
            ..JobConfig::default()
        };
        // Exact over the wire vs the in-process uncached oracle.
        let oracle = sts_with(grid(), StpCacheMode::Off)
            .similarity_matrix_supervised(&ts, &ts, &JobConfig::default())
            .unwrap()
            .0;
        let (m_sub, report) = sts_with(grid(), StpCacheMode::Exact)
            .similarity_matrix_supervised(&ts, &ts, &sub_cfg)
            .unwrap();
        assert_eq!(report.state(), JobState::Complete, "seed={seed}: {report}");
        assert_eq!(
            score_bits(&m_sub),
            score_bits(&oracle),
            "seed={seed}: subprocess exact run differs from in-process oracle"
        );

        // Lattice over the wire vs lattice in-process: pins the
        // preamble's `lattice:<dt>` round-trip bit-exactly.
        let lat = sts_with(grid(), StpCacheMode::Lattice { dt: 7.5 });
        let in_proc = lat
            .similarity_matrix_supervised(&ts, &ts, &JobConfig::default())
            .unwrap()
            .0;
        let (m_lat_sub, _) = lat
            .similarity_matrix_supervised(&ts, &ts, &sub_cfg)
            .unwrap();
        assert_eq!(
            score_bits(&m_lat_sub),
            score_bits(&in_proc),
            "seed={seed}: subprocess lattice run differs from in-process lattice"
        );
    }
}

// ---------------------------------------------------------------------
// Property tests (sts_rng::check): distribution-level invariants of the
// cache, driven by random trajectories and query times.
// ---------------------------------------------------------------------

/// Builds a random-walk trajectory from a seed (the shrinkable source
/// is the seed + point count, so failures replay from the message).
fn traj_from(seed: u64, n_points: usize) -> Trajectory {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut x = rng.random_range(20.0..80.0);
    let mut y = rng.random_range(20.0..80.0);
    let mut t = rng.random_range(0.0..5.0);
    let pts: Vec<(f64, f64, f64)> = (0..n_points.max(2))
        .map(|_| {
            x = (x + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
            y = (y + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
            t += rng.random_range(2.0..8.0);
            (x, y, t)
        })
        .collect();
    Trajectory::from_xyt(&pts).unwrap()
}

/// After an exact cached scoring pass, every cached distribution sums
/// to ≤ 1 (+ float slack) and reproduces the legacy per-timestamp
/// co-location values bit for bit.
#[test]
fn prop_cached_distributions_are_normalized_and_reproduce_cp() {
    Checker::new().cases(24).seed(0xCAC4E).run(
        (0u64..1 << 48, 3usize..9, 3usize..9),
        |(seed, na, nb)| {
            let sts = sts_with(grid(), StpCacheMode::Exact);
            let a = sts.prepare(&traj_from(seed, na)).unwrap();
            let b = sts.prepare(&traj_from(seed ^ 0xB, nb)).unwrap();
            let s_cached = sts.similarity_prepared(&a, &b);
            let profile = sts.colocation_profile(&a, &b); // legacy estimator path
            let lo = a.trajectory().start_time().max(b.trajectory().start_time());
            let hi = a.trajectory().end_time().min(b.trajectory().end_time());
            for &(t, cp_legacy) in &profile {
                if !(lo..=hi).contains(&t) {
                    continue;
                }
                let da = a.cached_stp(t);
                let db = b.cached_stp(t);
                prop_assert!(
                    da.is_some() && db.is_some(),
                    "in-window t={t} not cached after scoring (seed={seed})"
                );
                let (da, db) = (da.unwrap(), db.unwrap());
                for d in [&da, &db] {
                    let total: f64 = d.entries().iter().map(|&(_, w)| w).sum();
                    prop_assert!(
                        total <= 1.0 + 1e-9,
                        "cached mass {total} > 1 at t={t} (seed={seed})"
                    );
                }
                prop_assert!(
                    da.dot(&db).to_bits() == cp_legacy.to_bits(),
                    "cached CP {} != legacy CP {cp_legacy} at t={t} (seed={seed})",
                    da.dot(&db)
                );
            }
            // And the score itself equals the uncached oracle's bits.
            let s_oracle = sts_with(grid(), StpCacheMode::Off).similarity_prepared(
                &sts.prepare(a.trajectory()).unwrap(),
                &sts.prepare(b.trajectory()).unwrap(),
            );
            prop_assert!(
                s_cached.to_bits() == s_oracle.to_bits(),
                "cached {s_cached} != oracle {s_oracle} (seed={seed})"
            );
            Ok(())
        },
    );
}

/// The truncated sparse evaluation and the dense `O(|R|²)` evaluation
/// agree on random query times: bit-for-bit when truncation is off
/// (identical candidate sets), within total-variation 1e-5 under the
/// default truncation.
#[test]
fn prop_sparse_stp_matches_dense_on_random_times() {
    use sts_core::transition::SpeedKdeTransition;
    use sts_core::{GaussianNoise, StpEstimator};
    let small_grid = Grid::new(
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(50.0, 20.0)),
        5.0,
    )
    .unwrap();
    Checker::new()
        .cases(24)
        .seed(0xD15E)
        .run((0u64..1 << 48, -10.0f64..80.0), |(seed, t)| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut x = rng.random_range(5.0..45.0);
            let y = rng.random_range(2.0..18.0);
            let pts: Vec<(f64, f64, f64)> = (0..6)
                .map(|i| {
                    x = (x + rng.random_range(-3.0..3.0)).clamp(0.5, 49.5);
                    (x, y, 10.0 * i as f64)
                })
                .collect();
            let traj = Trajectory::from_xyt(&pts).unwrap();
            let kde = SpeedKdeTransition::from_trajectory(&traj, sts_stats::Kernel::Gaussian)
                .unwrap()
                .with_position_uncertainty(small_grid.cell_size() / 2.0);

            // Untruncated: sparse candidate machinery must degenerate
            // to the dense computation exactly.
            let noise_full = GaussianNoise::with_truncation(3.0, None);
            let est = StpEstimator::new(&small_grid, &noise_full, &kde, &traj);
            let (sparse, dense) = (est.stp(t), est.stp_dense(t));
            prop_assert!(
                sparse.entries().len() == dense.entries().len()
                    && sparse
                        .entries()
                        .iter()
                        .zip(dense.entries())
                        .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()),
                "untruncated sparse != dense at t={t} (seed={seed})"
            );

            // Default truncation: small total-variation distance.
            let noise_trunc = GaussianNoise::new(3.0);
            let est = StpEstimator::new(&small_grid, &noise_trunc, &kde, &traj);
            let (sparse, dense) = (est.stp(t), est.stp_dense(t));
            let mut tv = 0.0f64;
            for &(c, w) in dense.entries() {
                let ws = sparse
                    .entries()
                    .iter()
                    .find(|&&(cs, _)| cs == c)
                    .map_or(0.0, |&(_, w)| w);
                tv += (w - ws).abs();
            }
            for &(c, w) in sparse.entries() {
                if !dense.entries().iter().any(|&(cd, _)| cd == c) {
                    tv += w;
                }
            }
            prop_assert!(
                tv / 2.0 < 1e-5,
                "TV(sparse, dense) = {} at t={t} (seed={seed})",
                tv / 2.0
            );
            Ok(())
        });
}

/// Cache warm-up order never changes a score: scoring a pair on fresh
/// caches and scoring it after the caches were warmed by every other
/// pair (in a shuffled order) produce identical bits.
#[test]
fn prop_scores_are_insensitive_to_pair_visitation_order() {
    Checker::new()
        .cases(16)
        .seed(0x08DE8)
        .run(0u64..1 << 48, |seed| {
            let ts = corpus(seed, 5);
            let sts = sts_with(grid(), StpCacheMode::Exact);

            // Fresh: each pair scored on its own just-prepared set.
            let mut fresh = vec![vec![0u64; ts.len()]; ts.len()];
            for i in 0..ts.len() {
                for j in 0..ts.len() {
                    let a = sts.prepare(&ts[i]).unwrap();
                    let b = sts.prepare(&ts[j]).unwrap();
                    fresh[i][j] = sts.similarity_prepared(&a, &b).to_bits();
                }
            }

            // Warmed: one prepared set, pairs visited in a seeded
            // shuffle, every cache warmed by earlier pairs.
            let prepared: Vec<_> = ts.iter().map(|t| sts.prepare(t).unwrap()).collect();
            let mut order: Vec<(usize, usize)> = (0..ts.len())
                .flat_map(|i| (0..ts.len()).map(move |j| (i, j)))
                .collect();
            let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5482);
            rng.shuffle(&mut order);
            for &(i, j) in &order {
                let s = sts
                    .similarity_prepared(&prepared[i], &prepared[j])
                    .to_bits();
                prop_assert!(
                    s == fresh[i][j],
                    "({i},{j}) warmed {s:#x} != fresh {:#x} (seed={seed})",
                    fresh[i][j]
                );
            }
            Ok(())
        });
}
