//! Lifecycle tests for supervised similarity jobs: budget/deadline
//! semantics and checkpoint → crash → resume round-trips.
//!
//! Seeded tests embed the seed in every assertion message so a CI
//! failure is replayable (`scripts/ci.sh` runtime step).

use std::path::PathBuf;
use std::time::Duration;
use sts_core::{CheckpointConfig, JobConfig, JobError, PairOutcome, Sts, StsConfig};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::{Budget, CancelToken, JobState};
use sts_traj::{TrajPoint, Trajectory};

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        6.0,
    )
    .unwrap()
}

/// A seeded corpus of straight walkers with varied lanes and phases.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..5)
                    .map(|i| {
                        let t = phase + 10.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// A unique temp path that is cleaned up on drop.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-job-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempCkpt(dir.join(format!("{tag}.ckpt")))
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

fn score_bits(matrix: &[Vec<PairOutcome>]) -> Vec<Vec<Option<u64>>> {
    matrix
        .iter()
        .map(|row| row.iter().map(|c| c.score().map(f64::to_bits)).collect())
        .collect()
}

#[test]
fn zero_pair_budget_returns_immediately_with_empty_valid_report() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(1, 6);
    let cfg = JobConfig {
        budget: Budget::with_max_pairs(0),
        ..JobConfig::default()
    };
    let (matrix, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    assert_eq!(report.state(), JobState::BudgetExhausted);
    assert_eq!(report.stats.pairs_total, 36);
    assert_eq!(report.stats.pairs_completed, 0);
    assert_eq!(report.stats.pairs_skipped, 36);
    assert_eq!(report.percent_complete(), 0.0);
    assert!(report.batch.is_clean(), "{report}");
    assert!(matrix.iter().flatten().all(|c| *c == PairOutcome::Skipped));
    // The report formats without panicking and names the state.
    assert!(report.to_string().contains("budget-exhausted"), "{report}");
}

#[test]
fn already_cancelled_token_skips_everything() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(2, 4);
    let cancel = CancelToken::new();
    cancel.cancel();
    let cfg = JobConfig {
        cancel,
        ..JobConfig::default()
    };
    let (matrix, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    assert_eq!(report.state(), JobState::Cancelled);
    assert!(matrix.iter().flatten().all(|c| *c == PairOutcome::Skipped));
}

/// Mid-job pair budget: exactly the completed cells are scored, the
/// rest are Skipped, and nothing is Panicked or Failed.
#[test]
fn mid_job_pair_budget_yields_exactly_the_completed_cells() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(3, 10); // 100 pairs
    let full = sts
        .similarity_matrix_supervised(&qs, &qs, &JobConfig::default())
        .unwrap()
        .0;
    let cfg = JobConfig {
        budget: Budget::with_max_pairs(40),
        chunk_pairs: 16,
        threads: 2,
        ..JobConfig::default()
    };
    let (matrix, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    assert_eq!(report.state(), JobState::BudgetExhausted);
    assert!(!report.is_complete());
    assert!(report.stats.pairs_completed > 0, "{report}");
    assert!(report.stats.pairs_skipped > 0, "{report}");
    assert_eq!(
        report.stats.pairs_completed + report.stats.pairs_skipped,
        100
    );
    assert_eq!(report.batch.panic_count(), 0);
    assert_eq!(report.batch.failed_count(), 0);
    // Every completed cell is bit-identical to the uninterrupted run.
    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            match cell {
                PairOutcome::Score(s) => {
                    let f = full[i][j].score().unwrap();
                    assert_eq!(s.to_bits(), f.to_bits(), "({i},{j})");
                }
                PairOutcome::Skipped => {}
                other => panic!("({i},{j}): unexpected {other:?}"),
            }
        }
    }
}

/// Mid-job wall-clock deadline: when the clock stops the job partway,
/// the result holds exactly the completed cells (bit-identical to an
/// uninterrupted run) and no Panicked/Failed entries. The *where* it
/// stops is timing-dependent; the invariants are not.
#[test]
fn mid_job_deadline_yields_completed_cells_and_no_panics() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(4, 16); // 256 pairs: enough work to outlive 1ms
    let full = sts
        .similarity_matrix_supervised(&qs, &qs, &JobConfig::default())
        .unwrap()
        .0;
    let cfg = JobConfig {
        budget: Budget::with_deadline(Duration::from_millis(1)),
        chunk_pairs: 8,
        ..JobConfig::default()
    };
    let (matrix, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    assert_eq!(report.state(), JobState::DeadlineExceeded, "{report}");
    assert_eq!(report.batch.panic_count(), 0);
    assert_eq!(report.batch.failed_count(), 0);
    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            match cell {
                PairOutcome::Score(s) => {
                    assert_eq!(
                        s.to_bits(),
                        full[i][j].score().unwrap().to_bits(),
                        "({i},{j})"
                    );
                }
                PairOutcome::Skipped => {}
                other => panic!("({i},{j}): unexpected {other:?}"),
            }
        }
    }
}

/// Checkpoint round-trip across 8 seeds: write → "crash" mid-job
/// (CancelToken mid-run) → resume → the final matrix is byte-identical
/// to an uninterrupted run's.
#[test]
fn checkpoint_crash_resume_is_byte_identical_across_seeds() {
    for seed in 0..8u64 {
        let sts = Sts::new(StsConfig::default(), grid());
        let qs = corpus(0xC0DE + seed, 12); // 144 pairs
        let ckpt = TempCkpt::new(&format!("resume-{seed}"));

        let uninterrupted = sts
            .similarity_matrix_supervised(&qs, &qs, &JobConfig::default())
            .unwrap()
            .0;

        // "Crash": cancel from a chunk boundary onwards. The token
        // trips after ~half the pairs have been dealt; a flush every
        // chunk makes the checkpoint as fresh as possible (the
        // contract is "lose at most one flush interval").
        let cancel = CancelToken::new();
        let crash_cfg = JobConfig {
            cancel: cancel.clone(),
            budget: Budget::with_max_pairs(70),
            chunk_pairs: 8,
            checkpoint: Some(CheckpointConfig {
                path: ckpt.0.clone(),
                flush_every_chunks: 1,
            }),
            ..JobConfig::default()
        };
        let (_partial, crash_report) = sts
            .similarity_matrix_supervised(&qs, &qs, &crash_cfg)
            .unwrap();
        assert!(
            !crash_report.is_complete(),
            "seed={seed}: the crashed run must not finish ({crash_report})"
        );
        assert!(
            crash_report.stats.checkpoint_flushes > 0,
            "seed={seed}: no checkpoint was written"
        );
        assert!(ckpt.0.exists(), "seed={seed}");

        // Resume from the checkpoint with no budget: must complete and
        // match the uninterrupted run bit for bit.
        let resume_cfg = JobConfig {
            checkpoint: Some(CheckpointConfig::new(ckpt.0.clone())),
            chunk_pairs: 8,
            ..JobConfig::default()
        };
        let (resumed, resume_report) = sts
            .similarity_matrix_supervised(&qs, &qs, &resume_cfg)
            .unwrap();
        assert_eq!(
            resume_report.state(),
            JobState::Complete,
            "seed={seed}: {resume_report}"
        );
        assert!(
            resume_report.stats.pairs_resumed > 0,
            "seed={seed}: nothing was restored from the checkpoint"
        );
        assert!(
            resume_report.stats.pairs_resumed < 144,
            "seed={seed}: everything was restored — the crash run completed?"
        );
        assert_eq!(
            score_bits(&resumed),
            score_bits(&uninterrupted),
            "seed={seed}: resumed matrix differs from uninterrupted run"
        );
    }
}

/// Resuming a checkpoint against different inputs is refused, not
/// silently blended.
#[test]
fn resume_with_changed_inputs_is_a_fingerprint_error() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(50, 6);
    let ckpt = TempCkpt::new("fingerprint");
    let cfg = JobConfig {
        checkpoint: Some(CheckpointConfig::new(ckpt.0.clone())),
        ..JobConfig::default()
    };
    sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();

    let other = corpus(51, 6);
    let err = sts
        .similarity_matrix_supervised(&other, &other, &cfg)
        .unwrap_err();
    assert!(
        matches!(err, JobError::FingerprintMismatch { .. }),
        "{err:?}"
    );
    assert!(err.to_string().contains("fingerprint"), "{err}");
}

/// A completed job's checkpoint makes a re-run a pure restore: zero
/// recomputation, same matrix.
#[test]
fn rerun_after_complete_checkpoint_restores_everything() {
    let sts = Sts::new(StsConfig::default(), grid());
    let qs = corpus(60, 6);
    let ckpt = TempCkpt::new("rerun");
    let cfg = JobConfig {
        checkpoint: Some(CheckpointConfig::new(ckpt.0.clone())),
        ..JobConfig::default()
    };
    let (first, _) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    let (second, report) = sts.similarity_matrix_supervised(&qs, &qs, &cfg).unwrap();
    assert_eq!(report.stats.pairs_resumed, 36, "{report}");
    assert_eq!(report.stats.chunks_total, 0, "no chunk was queued");
    assert_eq!(score_bits(&first), score_bits(&second));
}

#[test]
fn top_k_supervised_matches_strict_top_k_and_respects_budget() {
    let sts = Sts::new(StsConfig::default(), grid());
    let q = corpus(70, 1).pop().unwrap();
    let candidates = corpus(71, 8);
    let strict = sts.top_k(&q, &candidates, 3).unwrap();
    let (supervised, report) = sts
        .top_k_supervised(&q, &candidates, 3, &JobConfig::default())
        .unwrap();
    assert_eq!(report.state(), JobState::Complete);
    assert_eq!(strict.len(), supervised.len());
    for ((si, ss), (ui, us)) in strict.iter().zip(&supervised) {
        assert_eq!(si, ui);
        assert_eq!(ss.to_bits(), us.to_bits());
    }
    // A zero budget yields an empty ranking, not an error.
    let cfg = JobConfig {
        budget: Budget::with_max_pairs(0),
        ..JobConfig::default()
    };
    let (empty, report) = sts.top_k_supervised(&q, &candidates, 3, &cfg).unwrap();
    assert!(empty.is_empty());
    assert_eq!(report.state(), JobState::BudgetExhausted);
}

/// Quarantined trajectories flow through the supervised path exactly
/// as in the degraded path.
#[test]
fn supervised_quarantines_like_degraded() {
    let sts = Sts::new(StsConfig::default(), grid());
    let mut qs = corpus(80, 4);
    qs.push(Trajectory::from_xyt(&[(1.0, 1.0, 0.0)]).unwrap()); // 1 point
    let (matrix, report) = sts
        .similarity_matrix_supervised(&qs, &qs, &JobConfig::default())
        .unwrap();
    assert_eq!(report.batch.quarantined_queries.len(), 1);
    assert_eq!(report.batch.quarantined_queries[0].0, 4);
    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if i == 4 || j == 4 {
                assert_eq!(*cell, PairOutcome::Quarantined, "({i},{j})");
            } else {
                assert!(cell.score().is_some(), "({i},{j})");
            }
        }
    }
    // Quarantined cells count as completed (terminal), not skipped.
    assert_eq!(report.stats.pairs_completed, 25);
    assert_eq!(report.state(), JobState::Complete);
}
