//! Sparse probability distributions over grid cells.
//!
//! The spatial-temporal probability `STP(r, t, Tra)` of the paper is a
//! distribution over all grid cells `R`, but outside a neighborhood of
//! the observations virtually all mass is zero. We therefore represent
//! cell distributions sparsely as sorted `(cell, probability)` pairs,
//! which makes the co-location inner product (Eq. 9) a linear merge.

use sts_geo::CellId;

/// A sparse non-negative measure over grid cells, sorted by cell id.
/// After [`SparseDistribution::normalize`] it is a probability
/// distribution (sums to 1), matching the normalization step of
/// Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseDistribution {
    entries: Vec<(CellId, f64)>,
}

impl SparseDistribution {
    /// The empty (all-zero) measure — the `STP = 0` case of Eq. 5 when
    /// `t` is outside the trajectory's time span.
    pub fn empty() -> Self {
        SparseDistribution::default()
    }

    /// Builds from unsorted weights; duplicate cells are summed, NaN and
    /// non-positive weights dropped. `+∞` is kept — it encodes a Dirac
    /// mass (e.g. a pinned Brownian-bridge endpoint) that
    /// [`SparseDistribution::normalize`] resolves.
    pub fn from_weights(mut weights: Vec<(CellId, f64)>) -> Self {
        weights.retain(|(_, w)| !w.is_nan() && *w > 0.0);
        weights.sort_by_key(|(c, _)| *c);
        let mut entries: Vec<(CellId, f64)> = Vec::with_capacity(weights.len());
        for (c, w) in weights {
            match entries.last_mut() {
                Some((last, acc)) if *last == c => *acc += w,
                _ => entries.push((c, w)),
            }
        }
        SparseDistribution { entries }
    }

    /// The entries, sorted by cell id.
    #[inline]
    pub fn entries(&self) -> &[(CellId, f64)] {
        &self.entries
    }

    /// Number of cells with nonzero mass.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the measure is identically zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Mass at a specific cell (zero when absent).
    pub fn get(&self, cell: CellId) -> f64 {
        self.entries
            .binary_search_by_key(&cell, |(c, _)| *c)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Normalizes the measure to sum to 1 (Algorithm 1's normalization).
    /// A zero measure stays zero.
    pub fn normalize(mut self) -> Self {
        self.normalize_in_place();
        self
    }

    /// In-place variant of [`SparseDistribution::normalize`] for callers
    /// that reuse a scratch distribution instead of reallocating. Same
    /// arithmetic, same entry order — results are bit-identical.
    pub fn normalize_in_place(&mut self) {
        let total = self.total();
        if total > 0.0 && total.is_finite() {
            for (_, w) in &mut self.entries {
                *w /= total;
            }
        } else if !total.is_finite() {
            // Infinite mass concentrates on the infinite entries (a Dirac
            // delta from e.g. a pinned Brownian bridge end).
            let n_inf = self.entries.iter().filter(|(_, w)| w.is_infinite()).count();
            for (_, w) in &mut self.entries {
                *w = if w.is_infinite() {
                    1.0 / n_inf as f64
                } else {
                    0.0
                };
            }
            self.entries.retain(|(_, w)| *w > 0.0);
        }
    }

    /// Empties the measure, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Replaces this measure's entries with a copy of `other`'s,
    /// reusing the existing allocation.
    pub fn clone_from_dist(&mut self, other: &SparseDistribution) {
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Mutable access to the raw entry vector for the scratch-based STP
    /// evaluation path. Callers must keep entries sorted by cell id with
    /// strictly positive, non-NaN weights (the `from_weights`
    /// invariant).
    #[inline]
    pub(crate) fn entries_mut(&mut self) -> &mut Vec<(CellId, f64)> {
        &mut self.entries
    }

    /// Inner product `Σ_r p(r)·q(r)` — the co-location probability of
    /// Eq. 9 once both sides are normalized. Linear merge over the two
    /// sorted entry lists.
    pub fn dot(&self, other: &SparseDistribution) -> f64 {
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ca, wa) = self.entries[i];
            let (cb, wb) = other.entries[j];
            match ca.cmp(&cb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u32, f64)]) -> SparseDistribution {
        SparseDistribution::from_weights(pairs.iter().map(|&(c, w)| (CellId(c), w)).collect())
    }

    #[test]
    fn from_weights_sorts_dedups_and_filters() {
        let d = dist(&[
            (3, 1.0),
            (1, 2.0),
            (3, 0.5),
            (2, 0.0),
            (4, -1.0),
            (5, f64::NAN),
        ]);
        assert_eq!(d.entries(), &[(CellId(1), 2.0), (CellId(3), 1.5)]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_behaviour() {
        let e = SparseDistribution::empty();
        assert!(e.is_empty());
        assert_eq!(e.total(), 0.0);
        assert_eq!(e.normalize().total(), 0.0);
        let d = dist(&[(0, 1.0)]);
        assert_eq!(d.dot(&SparseDistribution::empty()), 0.0);
    }

    #[test]
    fn get_present_and_absent() {
        let d = dist(&[(2, 0.5), (7, 1.5)]);
        assert_eq!(d.get(CellId(2)), 0.5);
        assert_eq!(d.get(CellId(7)), 1.5);
        assert_eq!(d.get(CellId(3)), 0.0);
    }

    #[test]
    fn normalize_sums_to_one() {
        let d = dist(&[(0, 1.0), (1, 3.0)]).normalize();
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!((d.get(CellId(0)) - 0.25).abs() < 1e-12);
        assert!((d.get(CellId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_infinite_mass() {
        let d = dist(&[(0, f64::INFINITY), (1, 3.0)]).normalize();
        assert_eq!(d.get(CellId(0)), 1.0);
        assert_eq!(d.get(CellId(1)), 0.0);
        assert!((d.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_matches_manual_sum() {
        let a = dist(&[(0, 0.5), (1, 0.25), (3, 0.25)]);
        let b = dist(&[(1, 0.4), (2, 0.3), (3, 0.3)]);
        let expected = 0.25 * 0.4 + 0.25 * 0.3;
        assert!((a.dot(&b) - expected).abs() < 1e-12);
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-12);
    }

    #[test]
    fn dot_of_identical_point_masses_is_one() {
        let a = dist(&[(5, 2.0)]).normalize();
        assert!((a.dot(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_disjoint_is_zero() {
        let a = dist(&[(0, 1.0), (1, 1.0)]).normalize();
        let b = dist(&[(2, 1.0), (3, 1.0)]).normalize();
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn dot_bounded_by_one_for_distributions() {
        let a = dist(&[(0, 0.2), (1, 0.8)]).normalize();
        let b = dist(&[(0, 0.5), (1, 0.5)]).normalize();
        assert!(a.dot(&b) <= 1.0 + 1e-12);
    }
}
