//! Co-location probability (paper §V-A, Eqs. 8–9, Algorithm 1).
//!
//! The co-location probability of two trajectories at a timestamp `t` is
//! the probability that both objects occupy the same grid cell at `t`:
//!
//! ```text
//! CP(t | Tra1, Tra2) = Σ_{r ∈ R} STP(r, t, Tra1) · STP(r, t, Tra2)
//! ```
//!
//! Algorithm 1's three cases (both observed at `t`, one observed, none
//! observed — the last cannot arise when `t` comes from the merged
//! timestamp list, but `STP` handles it anyway) are all subsumed by
//! `STP`: each side is the normalized noise distribution when observed
//! and the normalized Markov bridge otherwise. The per-case
//! normalization of Algorithm 1 is exactly [`SparseDistribution::normalize`],
//! applied inside [`StpEstimator::stp`].

use crate::dist::SparseDistribution;
use crate::stprob::StpEstimator;

/// `CP(t | Tra1, Tra2)`: the inner product of the two objects' cell
/// distributions at `t`. Zero when `t` is outside either trajectory's
/// time span (Eq. 5's zero case).
pub fn colocation_probability(a: &StpEstimator<'_>, b: &StpEstimator<'_>, t: f64) -> f64 {
    a.stp(t).dot(&b.stp(t))
}

/// Convenience for callers that already have the two distributions.
pub fn colocation_of(d1: &SparseDistribution, d2: &SparseDistribution) -> f64 {
    d1.dot(d2)
}

/// `CP` over two cached SoA distributions (parallel `cell_ids`/`probs`
/// slices, sorted by cell id) — the cached hot path's inner loop. Same
/// sorted linear merge, same accumulation order as
/// [`SparseDistribution::dot`], so the result is bit-identical to
/// [`colocation_of`] on the equivalent distributions.
pub(crate) fn colocation_sparse(
    ids_a: &[u32],
    probs_a: &[f64],
    ids_b: &[u32],
    probs_b: &[f64],
) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut acc = 0.0;
    while i < ids_a.len() && j < ids_b.len() {
        match ids_a[i].cmp(&ids_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += probs_a[i] * probs_b[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianNoise;
    use crate::transition::SpeedKdeTransition;
    use sts_geo::{BoundingBox, Grid, Point};
    use sts_stats::Kernel;
    use sts_traj::Trajectory;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(100.0, 20.0)),
            2.0,
        )
        .unwrap()
    }

    fn walker(y: f64, t_offset: f64) -> Trajectory {
        Trajectory::from_xyt(&[
            (5.0, y, t_offset),
            (15.0, y, t_offset + 10.0),
            (25.0, y, t_offset + 20.0),
            (35.0, y, t_offset + 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn co_moving_beats_distant() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let a = walker(10.0, 0.0);
        let b = walker(10.0, 5.0); // same route, asynchronous sampling
        let c = walker(2.0, 5.0); // parallel route 8 m away
        let ta = SpeedKdeTransition::from_trajectory(&a, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let tb = SpeedKdeTransition::from_trajectory(&b, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let tc = SpeedKdeTransition::from_trajectory(&c, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let ea = StpEstimator::new(&g, &noise, &ta, &a);
        let eb = StpEstimator::new(&g, &noise, &tb, &b);
        let ec = StpEstimator::new(&g, &noise, &tc, &c);
        // At t = 15 s, a is between fixes, b is between fixes; both near
        // x ≈ 20 / 15 respectively.
        let cp_ab = colocation_probability(&ea, &eb, 15.0);
        let cp_ac = colocation_probability(&ea, &ec, 15.0);
        assert!(cp_ab > cp_ac, "co-moving {cp_ab} <= distant {cp_ac}");
        assert!(cp_ab > 0.0);
    }

    #[test]
    fn outside_either_span_is_zero() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let a = walker(10.0, 0.0);
        let b = walker(10.0, 100.0); // disjoint time span
        let ta = SpeedKdeTransition::from_trajectory(&a, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let tb = SpeedKdeTransition::from_trajectory(&b, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let ea = StpEstimator::new(&g, &noise, &ta, &a);
        let eb = StpEstimator::new(&g, &noise, &tb, &b);
        assert_eq!(colocation_probability(&ea, &eb, 15.0), 0.0);
        assert_eq!(colocation_probability(&ea, &eb, 115.0), 0.0);
    }

    #[test]
    fn cp_is_symmetric() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let a = walker(10.0, 0.0);
        let b = walker(12.0, 3.0);
        let ta = SpeedKdeTransition::from_trajectory(&a, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let tb = SpeedKdeTransition::from_trajectory(&b, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let ea = StpEstimator::new(&g, &noise, &ta, &a);
        let eb = StpEstimator::new(&g, &noise, &tb, &b);
        for t in [0.0, 7.0, 15.0, 30.0] {
            let ab = colocation_probability(&ea, &eb, t);
            let ba = colocation_probability(&eb, &ea, t);
            assert!((ab - ba).abs() < 1e-12);
        }
    }

    #[test]
    fn cp_bounded_by_one() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let a = walker(10.0, 0.0);
        let ta = SpeedKdeTransition::from_trajectory(&a, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(1.0);
        let ea = StpEstimator::new(&g, &noise, &ta, &a);
        for t in [0.0, 5.0, 10.0, 25.0] {
            let cp = colocation_probability(&ea, &ea, t);
            assert!((0.0..=1.0 + 1e-12).contains(&cp), "CP {cp} at {t}");
        }
    }
}
