//! Transition-probability models (paper §IV-B, Eq. 7).
//!
//! The transition probability `P(ℓ', t' | ℓ, t)` is the probability that
//! an object moves from `ℓ` to `ℓ'` within `|t − t'|` seconds. The
//! paper's estimator is *personalized*: it evaluates the object's own
//! speed distribution (a KDE over the trajectory's consecutive-point
//! speeds) at `v = dis(ℓ, ℓ') / |t − t'|`:
//!
//! ```text
//! P(ℓ', t' | ℓ, t) = h · Q̂(v) = (1/|S|) Σ_{v'∈S} K((v − v')/h)
//! ```
//!
//! This module also provides the alternatives the paper compares against:
//! a *global* pooled-speed model (`STS-G`), the *frequency-based* grid
//! Markov model of prior work (`STS-F`, [24] [25] [34]), and the
//! Brownian-motion transition that §II identifies as the Gaussian-speed
//! special case of the paper's approach.

use crate::StsError;
use sts_geo::{Grid, Point};
use sts_stats::{Kde, Kernel, TransitionCounts};
use sts_traj::Trajectory;

/// A transition-probability model between two locations over a time
/// interval.
pub trait TransitionModel: Send + Sync {
    /// Probability weight of moving from `from` to `to` in `dt >= 0`
    /// seconds. For `dt == 0` the model degenerates to an indicator of
    /// staying put.
    fn probability(&self, from: Point, to: Point, dt: f64) -> f64;

    /// Displacement beyond which `probability` is negligible for the
    /// given interval — the truncation bound used by the S-T probability
    /// estimator. `f64::INFINITY` disables truncation.
    fn max_displacement(&self, _dt: f64) -> f64 {
        f64::INFINITY
    }

    /// `true` when the model depends only on the distance between the
    /// two locations (and on `dt`). Isotropic models let the S-T
    /// probability estimator evaluate transitions through a precomputed
    /// distance table instead of per-pair, which is the difference
    /// between `O(KDE samples)` and `O(1)` in the innermost loop.
    fn is_isotropic(&self) -> bool {
        false
    }

    /// For isotropic models: the probability as a function of distance.
    /// Must agree with [`TransitionModel::probability`] for any pair of
    /// points `d` apart. The default routes through `probability`.
    fn probability_by_distance(&self, d: f64, dt: f64) -> f64 {
        self.probability(Point::new(0.0, 0.0), Point::new(d, 0.0), dt)
    }
}

/// Shared "am I staying put" handling for the degenerate `dt == 0` case.
#[inline]
fn zero_interval_indicator(from: Point, to: Point) -> f64 {
    if from.distance_sq(&to) < 1e-12 {
        1.0
    } else {
        0.0
    }
}

/// The paper's personalized (or pooled) speed-KDE transition model.
///
/// # Grid-quantization smoothing
///
/// Eq. 4 evaluates transitions between grid-cell *centers*, which
/// quantizes displacements to the lattice of center distances. When the
/// speed distribution is very tight (σ̂ → 0 and thus `h` at its floor)
/// and the interval `Δt` is short, the continuous speed support can fall
/// entirely between lattice speeds — every transition evaluates to zero
/// and the bridge of Eq. 4 vanishes. The paper does not address this
/// (its datasets have diverse speed samples); we fold the positional
/// quantization `u` (half a cell per endpoint) into the evaluation
/// bandwidth: `h_eff(Δt) = √(h² + 2(u/Δt)²)`. With `u = 0` this is
/// exactly Eq. 7; as `Δt` grows the correction disappears.
#[derive(Debug, Clone)]
pub struct SpeedKdeTransition {
    kde: Kde,
    /// Largest speed sample, precomputed for the truncation bound.
    max_sample: f64,
    /// Positional quantization of transition endpoints (meters); see the
    /// type-level docs.
    position_uncertainty: f64,
}

impl SpeedKdeTransition {
    /// Builds the *personalized* model from a single trajectory's own
    /// speed samples (no data from other objects — §IV-B). Requires at
    /// least two points.
    pub fn from_trajectory(traj: &Trajectory, kernel: Kernel) -> Result<Self, StsError> {
        if traj.len() < 2 {
            return Err(StsError::TrajectoryTooShort { len: traj.len() });
        }
        Self::from_speed_samples(traj.speed_samples(), kernel)
    }

    /// Builds the model from explicit speed samples — used for the
    /// `STS-G` global variant (pool the samples of every trajectory) and
    /// for testing.
    pub fn from_speed_samples(samples: Vec<f64>, kernel: Kernel) -> Result<Self, StsError> {
        sts_obs::static_counter!("core.speed_models.built").incr();
        let kde = Kde::new(samples, kernel).map_err(StsError::Kde)?;
        let max_sample = kde
            .samples()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(SpeedKdeTransition {
            kde,
            max_sample,
            position_uncertainty: 0.0,
        })
    }

    /// Sets the positional quantization of transition endpoints (half a
    /// grid-cell side when evaluating between cell centers). See the
    /// type-level docs for why this matters.
    pub fn with_position_uncertainty(mut self, uncertainty: f64) -> Self {
        assert!(
            uncertainty >= 0.0 && uncertainty.is_finite(),
            "position uncertainty must be >= 0"
        );
        self.position_uncertainty = uncertainty;
        self
    }

    /// Effective evaluation bandwidth at interval `dt`.
    fn effective_bandwidth(&self, dt: f64) -> f64 {
        let h = self.kde.bandwidth();
        if self.position_uncertainty == 0.0 {
            return h;
        }
        let extra = self.position_uncertainty * std::f64::consts::SQRT_2 / dt;
        (h * h + extra * extra).sqrt()
    }

    /// Pools the speed samples of a whole dataset into one global model
    /// (the `STS-G` ablation: "a constant global speed distribution for
    /// all objects").
    pub fn global_from_trajectories<'a, I>(
        trajectories: I,
        kernel: Kernel,
    ) -> Result<Self, StsError>
    where
        I: IntoIterator<Item = &'a Trajectory>,
    {
        let samples: Vec<f64> = trajectories
            .into_iter()
            .flat_map(|t| t.speed_samples())
            .collect();
        Self::from_speed_samples(samples, kernel)
    }

    /// The underlying speed-density estimator.
    #[inline]
    pub fn kde(&self) -> &Kde {
        &self.kde
    }
}

impl TransitionModel for SpeedKdeTransition {
    fn probability(&self, from: Point, to: Point, dt: f64) -> f64 {
        debug_assert!(dt >= 0.0, "negative interval");
        if dt <= 0.0 {
            return zero_interval_indicator(from, to);
        }
        let v = from.distance(&to) / dt;
        // Eq. 7: h·Q̂(v), with the quantization-smoothed bandwidth.
        self.kde
            .scaled_density_with_bandwidth(v, self.effective_bandwidth(dt))
    }

    fn max_displacement(&self, dt: f64) -> f64 {
        let support = self.kde.kernel().support_radius();
        (self.max_sample + support * self.effective_bandwidth(dt)) * dt
    }

    fn is_isotropic(&self) -> bool {
        true
    }

    fn probability_by_distance(&self, d: f64, dt: f64) -> f64 {
        if dt <= 0.0 {
            return if d < 1e-6 { 1.0 } else { 0.0 };
        }
        self.kde
            .scaled_density_with_bandwidth(d / dt, self.effective_bandwidth(dt))
    }
}

/// Frequency-based grid Markov transition (prior work / `STS-F`):
/// `P(r' | r)` is the Laplace-smoothed frequency of `r → r'` steps among
/// consecutive observations across the *whole* dataset — universal for
/// all objects and independent of the interval length, which is exactly
/// the weakness the ablation exposes.
#[derive(Debug, Clone)]
pub struct FrequencyTransition {
    grid: Grid,
    counts: TransitionCounts,
}

impl FrequencyTransition {
    /// Learns the counts from every consecutive observation pair of every
    /// trajectory in the dataset.
    pub fn from_trajectories<'a, I>(grid: Grid, trajectories: I, laplace_alpha: f64) -> Self
    where
        I: IntoIterator<Item = &'a Trajectory>,
    {
        let mut counts = TransitionCounts::new(grid.len(), laplace_alpha);
        for t in trajectories {
            let cells: Vec<usize> = t
                .locations()
                .map(|p| grid.cell_at_clamped(p).index())
                .collect();
            counts.record_sequence(&cells);
        }
        FrequencyTransition { grid, counts }
    }

    /// The learned counts (for inspection/testing).
    #[inline]
    pub fn counts(&self) -> &TransitionCounts {
        &self.counts
    }
}

impl TransitionModel for FrequencyTransition {
    fn probability(&self, from: Point, to: Point, dt: f64) -> f64 {
        if dt <= 0.0 {
            return zero_interval_indicator(from, to);
        }
        let a = self.grid.cell_at_clamped(from).index();
        let b = self.grid.cell_at_clamped(to).index();
        self.counts.probability(a, b)
    }
}

/// Brownian-motion transition: a Gaussian random walk with diffusion
/// coefficient `q` (m²/s), `P(ℓ'|ℓ, Δt) ∝ exp(−d²/(2qΔt))`. The paper
/// (§II) observes the Brownian bridge is the special case of its
/// estimator under a Gaussian speed distribution; this model makes the
/// comparison executable (see the `brownian_special_case` test in
/// `sts.rs`).
#[derive(Debug, Clone, Copy)]
pub struct BrownianTransition {
    diffusion: f64,
}

impl BrownianTransition {
    /// Creates the model; `diffusion > 0` in m²/s.
    pub fn new(diffusion: f64) -> Self {
        assert!(
            diffusion > 0.0 && diffusion.is_finite(),
            "diffusion must be positive"
        );
        BrownianTransition { diffusion }
    }
}

impl TransitionModel for BrownianTransition {
    fn probability(&self, from: Point, to: Point, dt: f64) -> f64 {
        if dt <= 0.0 {
            return zero_interval_indicator(from, to);
        }
        let var = self.diffusion * dt;
        // Normalization constant is shared by all targets at a fixed dt
        // and cancels under Algorithm 1's normalization; keep the bare
        // exponential for numerical headroom.
        (-from.distance_sq(&to) / (2.0 * var)).exp()
    }

    fn max_displacement(&self, dt: f64) -> f64 {
        6.0 * (self.diffusion * dt).sqrt()
    }

    fn is_isotropic(&self) -> bool {
        true
    }

    fn probability_by_distance(&self, d: f64, dt: f64) -> f64 {
        if dt <= 0.0 {
            return if d < 1e-6 { 1.0 } else { 0.0 };
        }
        (-(d * d) / (2.0 * self.diffusion * dt)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk_trajectory() -> Trajectory {
        // Constant 1 m/s in x with slight variation.
        Trajectory::from_xyt(&[
            (0.0, 0.0, 0.0),
            (1.0, 0.0, 1.0),
            (2.2, 0.0, 2.0),
            (3.1, 0.0, 3.0),
            (4.1, 0.0, 4.0),
            (5.0, 0.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn personalized_model_requires_two_points() {
        let single = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        assert!(matches!(
            SpeedKdeTransition::from_trajectory(&single, Kernel::Gaussian),
            Err(StsError::TrajectoryTooShort { len: 1 })
        ));
    }

    #[test]
    fn likely_speed_scores_higher_than_unlikely() {
        let model =
            SpeedKdeTransition::from_trajectory(&walk_trajectory(), Kernel::Gaussian).unwrap();
        let from = Point::new(0.0, 0.0);
        // Walker does ~1 m/s; moving 10 m in 10 s is likely, 100 m is not.
        let likely = model.probability(from, Point::new(10.0, 0.0), 10.0);
        let unlikely = model.probability(from, Point::new(100.0, 0.0), 10.0);
        assert!(likely > unlikely);
        assert!(likely > 0.0);
    }

    #[test]
    fn transition_depends_only_on_speed() {
        let model =
            SpeedKdeTransition::from_trajectory(&walk_trajectory(), Kernel::Gaussian).unwrap();
        let a = model.probability(Point::new(0.0, 0.0), Point::new(5.0, 0.0), 5.0);
        let b = model.probability(Point::new(100.0, 50.0), Point::new(100.0, 55.0), 5.0);
        assert!((a - b).abs() < 1e-12, "same speed must score the same");
        // Doubling distance and time keeps the speed and the score.
        let c = model.probability(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 10.0);
        assert!((a - c).abs() < 1e-12);
    }

    #[test]
    fn zero_interval_is_stay_put_indicator() {
        let model =
            SpeedKdeTransition::from_trajectory(&walk_trajectory(), Kernel::Gaussian).unwrap();
        let p = Point::new(3.0, 3.0);
        assert_eq!(model.probability(p, p, 0.0), 1.0);
        assert_eq!(model.probability(p, Point::new(4.0, 3.0), 0.0), 0.0);
    }

    #[test]
    fn max_displacement_bounds_support() {
        let model =
            SpeedKdeTransition::from_trajectory(&walk_trajectory(), Kernel::Gaussian).unwrap();
        let dt = 7.0;
        let bound = model.max_displacement(dt);
        let from = Point::ORIGIN;
        let beyond = Point::new(bound * 1.01, 0.0);
        assert!(model.probability(from, beyond, dt) < 1e-12);
        // Displacement at the typical speed is well inside the bound.
        assert!(bound > 1.0 * dt);
    }

    #[test]
    fn global_model_pools_samples() {
        let slow = walk_trajectory();
        let fast =
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (10.0, 0.0, 1.0), (20.0, 0.0, 2.0)]).unwrap();
        let global =
            SpeedKdeTransition::global_from_trajectories([&slow, &fast], Kernel::Gaussian).unwrap();
        assert_eq!(
            global.kde().samples().len(),
            slow.speed_samples().len() + fast.speed_samples().len()
        );
        // The pooled model assigns non-negligible mass at both speeds.
        let from = Point::ORIGIN;
        assert!(global.probability(from, Point::new(1.0, 0.0), 1.0) > 1e-6);
        assert!(global.probability(from, Point::new(10.0, 0.0), 1.0) > 1e-6);
    }

    #[test]
    fn frequency_model_reflects_history() {
        use sts_geo::BoundingBox;
        let grid = Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(100.0, 10.0)),
            10.0,
        )
        .unwrap();
        // Everyone moves one cell to the right per step.
        let t1 =
            Trajectory::from_xyt(&[(5.0, 5.0, 0.0), (15.0, 5.0, 1.0), (25.0, 5.0, 2.0)]).unwrap();
        let t2 = Trajectory::from_xyt(&[(15.0, 5.0, 0.0), (25.0, 5.0, 1.0)]).unwrap();
        let model = FrequencyTransition::from_trajectories(grid.clone(), [&t1, &t2], 0.0);
        let right = model.probability(Point::new(15.0, 5.0), Point::new(25.0, 5.0), 1.0);
        let left = model.probability(Point::new(15.0, 5.0), Point::new(5.0, 5.0), 1.0);
        assert!(right > left);
        assert_eq!(left, 0.0); // never observed, no smoothing
                               // Frequency models ignore the interval length entirely.
        let long = model.probability(Point::new(15.0, 5.0), Point::new(25.0, 5.0), 100.0);
        assert_eq!(right, long);
    }

    #[test]
    fn frequency_model_smoothing_keeps_unseen_positive() {
        use sts_geo::BoundingBox;
        let grid = Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(30.0, 10.0)),
            10.0,
        )
        .unwrap();
        let t = Trajectory::from_xyt(&[(5.0, 5.0, 0.0), (15.0, 5.0, 1.0)]).unwrap();
        let model = FrequencyTransition::from_trajectories(grid, [&t], 1.0);
        assert!(model.probability(Point::new(5.0, 5.0), Point::new(25.0, 5.0), 1.0) > 0.0);
    }

    #[test]
    fn brownian_decays_with_distance_and_spreads_with_time() {
        let model = BrownianTransition::new(2.0);
        let from = Point::ORIGIN;
        let near = model.probability(from, Point::new(1.0, 0.0), 1.0);
        let far = model.probability(from, Point::new(5.0, 0.0), 1.0);
        assert!(near > far);
        // More time makes the same displacement more probable (unnormalized).
        let later = model.probability(from, Point::new(5.0, 0.0), 25.0);
        assert!(later > far);
        // Truncation bound is conservative.
        let dt = 4.0;
        let bound = model.max_displacement(dt);
        assert!(model.probability(from, Point::new(bound * 1.01, 0.0), dt) < 1e-7);
    }

    #[test]
    #[should_panic]
    fn brownian_rejects_bad_diffusion() {
        let _ = BrownianTransition::new(-1.0);
    }
}
