//! The sharded tile coordinator: lease-based distribution of matrix
//! tiles to a fleet of socket workers, with failover and byte-identical
//! recovery.
//!
//! [`ExecMode::Sharded`](crate::job::ExecMode) turns the tiled engine's
//! phase A into a distributed system: the coordinator deals each
//! pending tile to one of `workers` tile workers over loopback TCP
//! (framed by [`sts_isolate::protocol`], moved by
//! [`sts_isolate::FrameConn`]), and the worker scores the whole tile as
//! a single wire chunk. The pieces that make this safe under real
//! network failure:
//!
//! * **Leases, not assignments.** Every deal carries a fresh epoch from
//!   a [`LeaseTable`] (the wire request id). A worker that dies, wedges
//!   or goes silent past [`ShardOptions::lease_timeout`] forfeits its
//!   lease; the tile returns to the queue and is re-dealt. Heartbeats
//!   (`hb` frames every [`ShardOptions::hb_every`] scored pairs) let an
//!   honest-but-slow worker keep its lease alive indefinitely.
//! * **At-most-once commit.** A result only commits when it carries the
//!   *live* epoch of its tile. Duplicated frames and zombie results
//!   from superseded leases are refused — refusal is sound because
//!   scoring is deterministic, so the committed bytes equal whatever
//!   the zombie computed. Exactly one spill per tile ever happens.
//! * **Typed handshake rejection.** Workers verify the `hello` frame's
//!   protocol version and job fingerprint before `ready`
//!   ([`crate::worker`]); a rejection marks the *pairing of binaries*
//!   broken, stops all further spawning, and falls through to local
//!   compute rather than burning the restart budget on a permanent
//!   condition.
//! * **Bounded failover.** Worker respawns share one restart budget
//!   with decorrelated-jitter backoff. A slot whose respawn budget is
//!   exhausted retires; when the whole fleet is gone, the leftover
//!   tiles are returned to the caller, which computes them in-process
//!   ([`ShardStats::tiles_local_fallback`]) — graceful degradation,
//!   never a lost job.
//!
//! The transport seam ([`ShardOptions::injector`]) is where the
//! network-chaos suite in `sts-robust` injects seeded drops, delays,
//! corruption, duplicates, disconnects and wedges, then reconciles
//! every injection against this coordinator's [`ShardStats`] and
//! asserts the final matrix is byte-identical to an in-process run.

use crate::batch::PairOutcome;
use crate::worker;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use sts_isolate::protocol::ProtocolError;
use sts_isolate::{FrameConn, NetDirection, NetFault, NetInjector};
use sts_obs::trace;
use sts_runtime::{
    Budget, CancelToken, CommitOutcome, DecorrelatedJitter, LeaseTable, PairChunk, ShardStats,
    StopReason,
};

/// Tuning for [`ExecMode::Sharded`](crate::job::ExecMode). `Default`
/// is production-shaped; tests shrink the timeouts and inject their
/// own launcher and fault plan.
#[derive(Clone)]
pub struct ShardOptions {
    /// Worker executable; `None` resolves `sts-worker` next to the
    /// current executable ([`worker::default_worker_path`]). Ignored
    /// when [`launcher`](Self::launcher) is set.
    pub worker: Option<PathBuf>,
    /// Fleet size (0 → [`sts_runtime::worker_count`], which honors the
    /// `STS_WORKERS` environment override). Clamped to the tile count.
    pub workers: usize,
    /// How long a dealt tile may go without any frame (heartbeat or
    /// result) before its lease expires and the worker is presumed
    /// lost. Must comfortably exceed `hb_every` pairs of honest
    /// scoring.
    pub lease_timeout: Duration,
    /// How long a fresh worker may take to connect, rebuild the
    /// measure, prepare the corpus and answer `ready`.
    pub ready_timeout: Duration,
    /// Heartbeat stride in scored pairs, forwarded in the `hello`
    /// frame. 0 disables heartbeats (then a tile must finish within
    /// one lease timeout).
    pub hb_every: u64,
    /// Worker respawns allowed across the whole fleet (the initial
    /// fleet is free). Exhaustion retires slots; leftover tiles fall
    /// back to local compute.
    pub restart_budget: usize,
    /// Respawn backoff (decorrelated jitter between these bounds).
    pub backoff_base: Duration,
    /// See [`backoff_base`](Self::backoff_base).
    pub backoff_cap: Duration,
    /// How workers are launched. `None` spawns
    /// `sts-worker serve-tcp <addr>` subprocesses
    /// ([`ProcessLauncher`]); tests inject in-thread workers.
    pub launcher: Option<Arc<dyn WorkerLauncher>>,
    /// Fault injector applied to every coordinator-side connection
    /// (both directions). `None` is the clean transport.
    pub injector: Option<Arc<dyn NetInjector>>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            worker: None,
            workers: 0,
            lease_timeout: Duration::from_secs(30),
            ready_timeout: Duration::from_secs(10),
            hb_every: 64,
            restart_budget: 64,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            launcher: None,
            injector: None,
        }
    }
}

impl fmt::Debug for ShardOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardOptions")
            .field("worker", &self.worker)
            .field("workers", &self.workers)
            .field("lease_timeout", &self.lease_timeout)
            .field("ready_timeout", &self.ready_timeout)
            .field("hb_every", &self.hb_every)
            .field("restart_budget", &self.restart_budget)
            .finish_non_exhaustive()
    }
}

/// Launches one worker that must connect to `addr` and speak the
/// worker protocol over that socket. The default is
/// [`ProcessLauncher`]; tests launch in-thread workers for speed and
/// determinism.
pub trait WorkerLauncher: Send + Sync {
    /// Launch a worker that will connect to `addr`.
    fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>>;
}

/// A launched worker, killable by the coordinator. Implementations
/// must make `kill` idempotent and must reap any OS resources (a
/// killed child is waited on, not left a zombie).
pub trait WorkerHandle: Send {
    /// Terminate the worker. Idempotent; called on every teardown
    /// path, including drop-equivalent cleanup at coordinator exit.
    fn kill(&mut self);
}

/// Spawns `<program> serve-tcp <addr>` subprocesses with null stdio —
/// the production launcher.
#[derive(Debug, Clone)]
pub struct ProcessLauncher {
    /// The worker executable.
    pub program: PathBuf,
}

impl WorkerLauncher for ProcessLauncher {
    fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
        let child = Command::new(&self.program)
            .arg("serve-tcp")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        Ok(Box::new(ProcessHandle { child }))
    }
}

struct ProcessHandle {
    child: Child,
}

impl WorkerHandle for ProcessHandle {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Decorrelates per-connection fault schedules: each worker connection
/// gets a disjoint frame-index window into the shared injector, so a
/// respawned worker does not replay its predecessor's exact faults
/// (which would turn one seeded disconnect into an unconditional
/// restart loop).
struct OffsetInjector {
    inner: Arc<dyn NetInjector>,
    base: u64,
}

impl NetInjector for OffsetInjector {
    fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
        self.inner.fault_for(self.base + index, dir)
    }
}

/// Index-window stride per connection — far beyond any real frame
/// count, so windows never overlap.
const CONN_INDEX_STRIDE: u64 = 1 << 20;

/// What [`run_sharded`] concluded.
pub(crate) struct ShardRun {
    /// Coordinator accounting ([`ShardStats::tiles_local_fallback`] is
    /// left 0 — the caller owns the fallback).
    pub stats: ShardStats,
    /// Tile indices (into the caller's tile list) not committed by the
    /// fleet: the run stopped, or the fleet was exhausted/rejected.
    /// Ascending order.
    pub leftover: Vec<usize>,
    /// Why the run stopped early, if it did.
    pub stop: Option<StopReason>,
}

/// One slot's claim-serve-commit state machine outcome for a single
/// wait on the wire.
enum Verdict {
    /// The live epoch's result committed; here are its dense outcomes.
    Committed(Vec<PairOutcome>),
    /// The frame was destroyed in transit (typed garbage): the worker
    /// is alive, re-lease and resend to it.
    RetrySameWorker,
    /// Timeout, EOF, I/O error or protocol violation: kill the worker,
    /// expire the lease, respawn under budget.
    WorkerLost,
    /// The commit gate refused our own epoch (defensive: should be
    /// unreachable since a tile is held by exactly one slot).
    AlreadyDone,
}

enum SpawnError {
    /// Launch, connect, preamble or ready failed — transient, costs a
    /// restart from the shared budget.
    Failed,
    /// The worker answered `reject ...`: version or fingerprint skew.
    /// Permanent for this pairing of binaries.
    Rejected,
}

/// Coordinator state shared by all slot threads.
struct Shared<'a> {
    tiles: &'a [PairChunk],
    todo: &'a [usize],
    preamble: &'a [String],
    opts: &'a ShardOptions,
    launcher: Arc<dyn WorkerLauncher>,
    /// Pending positions into `todo`.
    queue: Mutex<VecDeque<usize>>,
    queue_cv: Condvar,
    /// Lease arbiter over `todo` positions.
    lt: Mutex<LeaseTable>,
    /// Committed flags per position (leftover = the unset ones).
    done: Vec<AtomicBool>,
    done_count: AtomicUsize,
    stopped: AtomicBool,
    rejected: AtomicBool,
    restarts_left: AtomicUsize,
    conn_seq: AtomicU64,
    workers_spawned: AtomicUsize,
    worker_restarts: AtomicUsize,
    workers_rejected: AtomicUsize,
    frames_corrupt: AtomicUsize,
    /// Results refused without going through the lease table (stale
    /// epochs we cannot map to a tile).
    stale_results: AtomicUsize,
}

impl Shared<'_> {
    /// Claims the next pending position, waiting out windows where
    /// every remaining tile is in flight on some other slot. `None`
    /// once everything is committed or the run stopped.
    fn claim(&self) -> Option<usize> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if self.stopped.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(pos) = q.pop_front() {
                return Some(pos);
            }
            if self.done_count.load(Ordering::SeqCst) >= self.todo.len() {
                return None;
            }
            // An in-flight tile may yet be requeued by a failing slot;
            // the timeout is only a safety net against lost wakeups.
            q = self
                .queue_cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap()
                .0;
        }
    }

    fn requeue(&self, pos: usize) {
        self.queue.lock().unwrap().push_back(pos);
        self.queue_cv.notify_all();
    }

    fn mark_done(&self, pos: usize) {
        self.done[pos].store(true, Ordering::SeqCst);
        self.done_count.fetch_add(1, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Takes one respawn from the shared budget. `false` = exhausted.
    fn charge_restart(&self) -> bool {
        self.restarts_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    fn expire(&self, pos: usize) {
        self.lt.lock().unwrap().expire(pos);
    }
}

/// Deals the `todo` tiles to a worker fleet and calls `on_commit` (on
/// this thread) exactly once per committed tile, in commit order, with
/// the tile's dense outcomes. See the [module docs](self) for the
/// protocol; see [`ShardRun`] for what comes back.
pub(crate) fn run_sharded(
    tiles: &[PairChunk],
    todo: &[usize],
    preamble: &[String],
    opts: &ShardOptions,
    cancel: &CancelToken,
    budget: Budget,
    on_commit: &mut dyn FnMut(usize, Vec<PairOutcome>),
) -> ShardRun {
    let _span = trace::span("job.shard");
    if todo.is_empty() {
        return ShardRun {
            stats: ShardStats::default(),
            leftover: Vec::new(),
            stop: None,
        };
    }
    let launcher: Arc<dyn WorkerLauncher> = match &opts.launcher {
        Some(l) => Arc::clone(l),
        None => Arc::new(ProcessLauncher {
            program: opts
                .worker
                .clone()
                .unwrap_or_else(worker::default_worker_path),
        }),
    };
    let slots = if opts.workers == 0 {
        sts_runtime::worker_count(todo.len())
    } else {
        opts.workers.min(todo.len()).max(1)
    };
    let shared = Shared {
        tiles,
        todo,
        preamble,
        opts,
        launcher,
        queue: Mutex::new((0..todo.len()).collect()),
        queue_cv: Condvar::new(),
        lt: Mutex::new(LeaseTable::new(todo.len())),
        done: (0..todo.len()).map(|_| AtomicBool::new(false)).collect(),
        done_count: AtomicUsize::new(0),
        stopped: AtomicBool::new(false),
        rejected: AtomicBool::new(false),
        restarts_left: AtomicUsize::new(opts.restart_budget),
        conn_seq: AtomicU64::new(0),
        workers_spawned: AtomicUsize::new(0),
        worker_restarts: AtomicUsize::new(0),
        workers_rejected: AtomicUsize::new(0),
        frames_corrupt: AtomicUsize::new(0),
        stale_results: AtomicUsize::new(0),
    };

    let (tx, rx) = mpsc::channel::<(usize, Vec<PairOutcome>)>();
    let mut stop_reason: Option<StopReason> = None;
    let mut committed_pairs = 0usize;
    std::thread::scope(|s| {
        for slot in 0..slots {
            let tx = tx.clone();
            let shared = &shared;
            s.spawn(move || slot_loop(shared, slot, &tx));
        }
        drop(tx);
        // This thread owns the commit sink: spills happen here, in
        // commit order, so the caller's closure needs no Send bound.
        loop {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok((tile_idx, outs)) => {
                    committed_pairs += outs.len();
                    on_commit(tile_idx, outs);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            if stop_reason.is_none() {
                stop_reason = if cancel.is_cancelled() {
                    Some(StopReason::Cancelled)
                } else {
                    budget.check(committed_pairs)
                };
                if stop_reason.is_some() {
                    shared.stop();
                }
            }
        }
        // Commits that raced the shutdown are still commits: the lease
        // table accepted them and the spill must happen.
        while let Ok((tile_idx, outs)) = rx.try_recv() {
            committed_pairs += outs.len();
            on_commit(tile_idx, outs);
        }
    });

    let lt = shared.lt.lock().unwrap();
    let stats = ShardStats {
        workers_spawned: shared.workers_spawned.load(Ordering::SeqCst),
        worker_restarts: shared.worker_restarts.load(Ordering::SeqCst),
        workers_rejected: shared.workers_rejected.load(Ordering::SeqCst),
        tiles_leased: lt.leases_granted(),
        leases_expired: lt.leases_expired(),
        commits_refused: lt.commits_refused() + shared.stale_results.load(Ordering::SeqCst),
        frames_corrupt: shared.frames_corrupt.load(Ordering::SeqCst),
        tiles_local_fallback: 0,
    };
    drop(lt);
    let leftover = (0..todo.len())
        .filter(|&pos| !shared.done[pos].load(Ordering::SeqCst))
        .map(|pos| todo[pos])
        .collect();
    ShardRun {
        stats,
        leftover,
        stop: stop_reason,
    }
}

/// One slot: claim a tile, keep a worker alive, deal and commit, until
/// the queue drains, the run stops, the handshake is rejected, or the
/// restart budget retires this slot.
fn slot_loop(shared: &Shared<'_>, slot: usize, tx: &mpsc::Sender<(usize, Vec<PairOutcome>)>) {
    let mut live: Option<(FrameConn, Box<dyn WorkerHandle>)> = None;
    let mut jitter = DecorrelatedJitter::new(
        shared.opts.backoff_base,
        shared.opts.backoff_cap,
        0x5AAD_0000 ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut spawned_once = false;
    'slot: while let Some(pos) = shared.claim() {
        loop {
            if shared.stopped.load(Ordering::SeqCst) {
                shared.requeue(pos);
                break 'slot;
            }
            if live.is_none() {
                if shared.rejected.load(Ordering::SeqCst) {
                    // The binaries cannot agree; spawning more copies
                    // of the same worker cannot fix it.
                    shared.requeue(pos);
                    break 'slot;
                }
                if spawned_once {
                    if !shared.charge_restart() {
                        shared.requeue(pos);
                        break 'slot; // slot retires; fleet shrinks
                    }
                    shared.worker_restarts.fetch_add(1, Ordering::SeqCst);
                    sts_obs::static_counter!("shard.workers.restarted").incr();
                    std::thread::sleep(jitter.next_delay());
                }
                spawned_once = true;
                match spawn_ready_worker(shared) {
                    Ok(w) => live = Some(w),
                    Err(SpawnError::Failed) => continue,
                    Err(SpawnError::Rejected) => {
                        shared.workers_rejected.fetch_add(1, Ordering::SeqCst);
                        sts_obs::static_counter!("shard.workers.rejected").incr();
                        shared.rejected.store(true, Ordering::SeqCst);
                        shared.requeue(pos);
                        break 'slot;
                    }
                }
            }
            let tile = &shared.tiles[shared.todo[pos]];
            let Some(epoch) = shared.lt.lock().unwrap().lease(pos) else {
                // Defensive: positions are claimed exclusively, so a
                // committed tile cannot be re-claimed.
                break;
            };
            let (conn, _) = live.as_mut().expect("worker ensured above");
            if conn
                .send(&format!("chunk {epoch} {} {}", tile.start, tile.len))
                .is_err()
            {
                teardown(&mut live);
                shared.expire(pos);
                continue;
            }
            let _ = conn.set_read_deadline(Some(shared.opts.lease_timeout));
            match wait_result(shared, conn, pos, tile, epoch) {
                Verdict::Committed(outs) => {
                    shared.mark_done(pos);
                    let _ = tx.send((shared.todo[pos], outs));
                    break;
                }
                Verdict::AlreadyDone => break,
                Verdict::RetrySameWorker => {
                    shared.expire(pos);
                    continue;
                }
                Verdict::WorkerLost => {
                    teardown(&mut live);
                    shared.expire(pos);
                    continue;
                }
            }
        }
    }
    if let Some((mut conn, mut handle)) = live.take() {
        let _ = conn.send("shutdown");
        handle.kill();
    }
}

fn teardown(live: &mut Option<(FrameConn, Box<dyn WorkerHandle>)>) {
    if let Some((_, mut handle)) = live.take() {
        handle.kill();
    }
}

/// Reads frames until the live epoch's result arrives (commit), the
/// deadline passes, or the connection proves unusable. Heartbeats for
/// any epoch reset the deadline simply by being frames; results for
/// superseded epochs are refused and skipped.
fn wait_result(
    shared: &Shared<'_>,
    conn: &mut FrameConn,
    pos: usize,
    tile: &PairChunk,
    epoch: u64,
) -> Verdict {
    loop {
        match conn.recv() {
            Ok(frame) => {
                let mut fields = frame.split_whitespace();
                match fields.next() {
                    Some("hb") => continue,
                    Some("result") => {
                        let Some(id) = fields.next().and_then(|s| s.parse::<u64>().ok()) else {
                            return Verdict::WorkerLost;
                        };
                        if id != epoch {
                            // A duplicated frame or a superseded
                            // chunk's late result: refuse, keep
                            // listening for ours.
                            shared.stale_results.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        let payload = frame
                            .strip_prefix(&format!("result {id} "))
                            .unwrap_or_default();
                        let Some(outs) = decode_tile(payload, tile) else {
                            return Verdict::WorkerLost;
                        };
                        return match shared.lt.lock().unwrap().commit(pos, epoch) {
                            CommitOutcome::Committed => Verdict::Committed(outs),
                            CommitOutcome::Duplicate | CommitOutcome::Stale => Verdict::AlreadyDone,
                        };
                    }
                    _ => return Verdict::WorkerLost,
                }
            }
            Err(ProtocolError::Garbage { .. }) => {
                // Line noise on the wire. The destroyed frame may have
                // been our result — re-lease and resend to the same
                // (healthy) worker; the commit gate absorbs any
                // original that later limps in.
                shared.frames_corrupt.fetch_add(1, Ordering::SeqCst);
                sts_obs::static_counter!("shard.frames.corrupt").incr();
                return Verdict::RetrySameWorker;
            }
            Err(_) => return Verdict::WorkerLost,
        }
    }
}

/// Decodes one result payload into the tile's dense outcome slab.
/// `None` on any malformed, out-of-range, duplicated or missing record
/// — the chunk was for this exact tile, so anything but a perfect
/// cover is a protocol violation.
fn decode_tile(payload: &str, tile: &PairChunk) -> Option<Vec<PairOutcome>> {
    let cells = worker::decode_result_payload(payload)?;
    if cells.len() != tile.len {
        return None;
    }
    let mut dense = vec![PairOutcome::Skipped; tile.len];
    for (lin, outcome) in cells {
        if lin < tile.start || lin >= tile.start + tile.len {
            return None;
        }
        let slot = &mut dense[lin - tile.start];
        // The wire never carries `Skipped`, so it doubles as the
        // unfilled marker.
        if !matches!(slot, PairOutcome::Skipped) {
            return None;
        }
        *slot = outcome;
    }
    dense
        .iter()
        .all(|o| !matches!(o, PairOutcome::Skipped))
        .then_some(dense)
}

/// Launches one worker and walks it to `ready`: bind an ephemeral
/// loopback listener, launch, accept within the ready deadline, send
/// the preamble, and interpret the worker's answer.
fn spawn_ready_worker(
    shared: &Shared<'_>,
) -> Result<(FrameConn, Box<dyn WorkerHandle>), SpawnError> {
    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|_| SpawnError::Failed)?;
    let addr = listener.local_addr().map_err(|_| SpawnError::Failed)?;
    listener
        .set_nonblocking(true)
        .map_err(|_| SpawnError::Failed)?;
    let mut handle = shared
        .launcher
        .launch(addr)
        .map_err(|_| SpawnError::Failed)?;
    shared.workers_spawned.fetch_add(1, Ordering::SeqCst);
    sts_obs::static_counter!("shard.workers.spawned").incr();
    let deadline = Instant::now() + shared.opts.ready_timeout;
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    handle.kill();
                    return Err(SpawnError::Failed);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                handle.kill();
                return Err(SpawnError::Failed);
            }
        }
    };
    let _ = stream.set_nodelay(true);
    let injector = shared.opts.injector.as_ref().map(|inner| {
        let base = shared.conn_seq.fetch_add(1, Ordering::SeqCst) * CONN_INDEX_STRIDE;
        Arc::new(OffsetInjector {
            inner: Arc::clone(inner),
            base,
        }) as Arc<dyn NetInjector>
    });
    let Ok(mut conn) = FrameConn::with_injector(stream, injector) else {
        handle.kill();
        return Err(SpawnError::Failed);
    };
    let _ = conn.set_read_deadline(Some(shared.opts.ready_timeout));
    for frame in shared.preamble {
        if conn.send(frame).is_err() {
            handle.kill();
            return Err(SpawnError::Failed);
        }
    }
    if conn.send("begin").is_err() {
        handle.kill();
        return Err(SpawnError::Failed);
    }
    loop {
        match conn.recv() {
            Ok(f) if f == "ready" => return Ok((conn, handle)),
            Ok(f) if f.starts_with("reject ") => {
                handle.kill();
                return Err(SpawnError::Rejected);
            }
            Ok(_) => {
                handle.kill();
                return Err(SpawnError::Failed);
            }
            Err(ProtocolError::Garbage { .. }) => {
                shared.frames_corrupt.fetch_add(1, Ordering::SeqCst);
                sts_obs::static_counter!("shard.frames.corrupt").incr();
                continue;
            }
            Err(_) => {
                handle.kill();
                return Err(SpawnError::Failed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sts::MeasureSpec;
    use crate::{Sts, StsConfig};
    use std::net::{Shutdown, TcpStream};
    use sts_geo::{BoundingBox, Grid, Point};
    use sts_runtime::PairSpace;
    use sts_traj::Trajectory;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(200.0, 50.0)),
            5.0,
        )
        .unwrap()
    }

    fn walker(y: f64, phase: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = phase + 10.0 * i as f64;
                    sts_traj::TrajPoint::from_xy(2.0 * t, y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    fn corpus() -> (Vec<Trajectory>, Vec<Trajectory>) {
        let queries: Vec<_> = (0..4)
            .map(|i| walker(5.0 + 10.0 * i as f64, 0.0, 6))
            .collect();
        let candidates: Vec<_> = (0..4)
            .map(|i| walker(8.0 + 9.0 * i as f64, 5.0, 6))
            .collect();
        (queries, candidates)
    }

    /// Runs `crate::worker::serve` on an in-process thread over the
    /// connecting socket — the test fleet.
    struct ThreadLauncher;

    struct ThreadHandle {
        stream: TcpStream,
    }

    impl WorkerHandle for ThreadHandle {
        fn kill(&mut self) {
            let _ = self.stream.shutdown(Shutdown::Both);
        }
    }

    impl WorkerLauncher for ThreadLauncher {
        fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
            let stream = TcpStream::connect(addr)?;
            let reader = stream.try_clone()?;
            let writer = stream.try_clone()?;
            std::thread::spawn(move || {
                let mut r = std::io::BufReader::new(reader);
                let mut w = writer;
                let _ = crate::worker::serve(&mut r, &mut w);
            });
            Ok(Box::new(ThreadHandle { stream }))
        }
    }

    /// A launcher that never produces a worker: exercises budget
    /// exhaustion and the leftover path.
    struct BrokenLauncher;

    impl WorkerLauncher for BrokenLauncher {
        fn launch(&self, _addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
            Err(io::Error::other("no workers here"))
        }
    }

    fn shard_opts(launcher: Arc<dyn WorkerLauncher>) -> ShardOptions {
        ShardOptions {
            workers: 2,
            lease_timeout: Duration::from_secs(5),
            ready_timeout: Duration::from_secs(5),
            hb_every: 2,
            restart_budget: 4,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(500),
            launcher: Some(launcher),
            ..ShardOptions::default()
        }
    }

    fn run(
        opts: &ShardOptions,
        preamble_tamper: impl FnOnce(&mut Vec<String>),
    ) -> (
        Vec<Option<Vec<PairOutcome>>>,
        ShardRun,
        Vec<Trajectory>,
        Vec<Trajectory>,
    ) {
        let (queries, candidates) = corpus();
        let sts = Sts::new(StsConfig::default(), grid());
        let space = PairSpace::new(queries.len(), candidates.len());
        let cfg = crate::job::JobConfig::default();
        let mut preamble = crate::worker::encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            sts.grid(),
            &cfg,
            &space,
            &queries,
            &candidates,
            opts.hb_every,
        );
        preamble_tamper(&mut preamble);
        let tiles: Vec<PairChunk> = space.chunks(4).collect();
        let todo: Vec<usize> = (0..tiles.len()).collect();
        let mut committed: Vec<Option<Vec<PairOutcome>>> = vec![None; tiles.len()];
        let run = run_sharded(
            &tiles,
            &todo,
            &preamble,
            opts,
            &sts_runtime::CancelToken::new(),
            Budget::default(),
            &mut |idx, outs| {
                assert!(committed[idx].is_none(), "tile {idx} committed twice");
                committed[idx] = Some(outs);
            },
        );
        (committed, run, queries, candidates)
    }

    #[test]
    fn clean_fleet_commits_every_tile_bit_exactly_once() {
        let opts = shard_opts(Arc::new(ThreadLauncher));
        let (committed, run, queries, candidates) = run(&opts, |_| {});
        let sts = Sts::new(StsConfig::default(), grid());
        let strict = sts.similarity_matrix(&queries, &candidates).unwrap();
        let cols = candidates.len();
        for (idx, outs) in committed.iter().enumerate() {
            let outs = outs.as_ref().expect("every tile commits");
            for (off, outcome) in outs.iter().enumerate() {
                let lin = idx * 4 + off;
                match outcome {
                    PairOutcome::Score(s) => {
                        assert_eq!(
                            s.to_bits(),
                            strict[lin / cols][lin % cols].to_bits(),
                            "cell {lin}"
                        );
                    }
                    other => panic!("cell {lin}: {other:?}"),
                }
            }
        }
        assert!(run.leftover.is_empty());
        assert!(run.stop.is_none());
        assert_eq!(run.stats.tiles_leased, 4);
        assert_eq!(run.stats.leases_expired, 0);
        assert_eq!(run.stats.workers_rejected, 0);
        assert!(run.stats.workers_spawned >= 1 && run.stats.workers_spawned <= 2);
        assert_eq!(run.stats.worker_restarts, 0);
    }

    #[test]
    fn exhausted_fleet_returns_every_tile_as_leftover() {
        let opts = shard_opts(Arc::new(BrokenLauncher));
        let (committed, run, _, _) = run(&opts, |_| {});
        assert!(committed.iter().all(Option::is_none));
        assert_eq!(run.leftover, vec![0, 1, 2, 3]);
        assert!(
            run.stop.is_none(),
            "exhaustion is not a stop: {:?}",
            run.stop
        );
        // Initial fleet spawns are free; every further attempt drew
        // from the shared budget of 4.
        assert_eq!(run.stats.worker_restarts, 4);
        assert_eq!(run.stats.workers_spawned, 0, "launch never succeeded");
    }

    #[test]
    fn version_skew_rejects_typed_without_burning_restarts() {
        let opts = shard_opts(Arc::new(ThreadLauncher));
        let (committed, run, _, _) = run(&opts, |preamble| {
            preamble[0] = preamble[0].replacen(
                &format!("hello {} ", crate::worker::PROTOCOL_VERSION),
                "hello 99 ",
                1,
            );
        });
        assert!(committed.iter().all(Option::is_none));
        assert_eq!(run.leftover, vec![0, 1, 2, 3]);
        assert!(run.stats.workers_rejected >= 1);
        assert_eq!(
            run.stats.worker_restarts, 0,
            "a permanent rejection must not burn the restart budget"
        );
    }

    #[test]
    fn zero_pair_result_payloads_are_protocol_violations() {
        let tile = PairChunk {
            id: 0,
            start: 4,
            len: 3,
        };
        // Perfect cover commits.
        assert!(decode_tile("3 4 s 0.5 5 q 6 s 0.25", &tile).is_some());
        for bad in [
            "2 4 s 0.5 5 q",          // short
            "3 4 s 0.5 5 q 9 s 0.25", // out of range
            "3 4 s 0.5 4 s 0.5 6 q",  // duplicate lin
            "3 4 s 0.5 5 zz 6 q",     // malformed record
        ] {
            assert!(decode_tile(bad, &tile).is_none(), "{bad:?}");
        }
    }
}
