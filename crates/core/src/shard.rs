//! The sharded tile coordinator: lease-based distribution of matrix
//! tiles to a fleet of socket workers, with failover and byte-identical
//! recovery.
//!
//! [`ExecMode::Sharded`](crate::job::ExecMode) turns the tiled engine's
//! phase A into a distributed system: the coordinator deals each
//! pending tile to one of `workers` tile workers over loopback TCP
//! (framed by [`sts_isolate::protocol`], moved by
//! [`sts_isolate::FrameConn`]), and the worker scores the whole tile as
//! a single wire chunk. The pieces that make this safe under real
//! network failure:
//!
//! * **Leases, not assignments.** Every deal carries a fresh epoch from
//!   a [`LeaseTable`] (the wire request id). A worker that dies, wedges
//!   or goes silent past [`ShardOptions::lease_timeout`] forfeits its
//!   lease; the tile returns to the queue and is re-dealt. Heartbeats
//!   (`hb` frames every [`ShardOptions::hb_every`] scored pairs) let an
//!   honest-but-slow worker keep its lease alive indefinitely.
//! * **At-most-once commit.** A result only commits when it carries the
//!   *live* epoch of its tile. Duplicated frames and zombie results
//!   from superseded leases are refused — refusal is sound because
//!   scoring is deterministic, so the committed bytes equal whatever
//!   the zombie computed. Exactly one spill per tile ever happens.
//! * **Typed handshake rejection.** Workers verify the `hello` frame's
//!   protocol version and job fingerprint before `ready`
//!   ([`crate::worker`]); a rejection marks the *pairing of binaries*
//!   broken, stops all further spawning, and falls through to local
//!   compute rather than burning the restart budget on a permanent
//!   condition.
//! * **Bounded failover.** Worker respawns share one restart budget
//!   with decorrelated-jitter backoff. A slot whose respawn budget is
//!   exhausted retires; when the whole fleet is gone, the leftover
//!   tiles are returned to the caller, which computes them in-process
//!   ([`ShardStats::tiles_local_fallback`]) — graceful degradation,
//!   never a lost job.
//!
//! The transport seam ([`ShardOptions::injector`]) is where the
//! network-chaos suite in `sts-robust` injects seeded drops, delays,
//! corruption, duplicates, disconnects and wedges, then reconciles
//! every injection against this coordinator's [`ShardStats`] and
//! asserts the final matrix is byte-identical to an in-process run.

use crate::batch::PairOutcome;
use crate::worker;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use sts_isolate::protocol::ProtocolError;
use sts_isolate::{FrameConn, NetDirection, NetFault, NetInjector};
use sts_obs::trace::{self, ClockMap};
use sts_obs::{Snapshot, SpanRecord};
use sts_runtime::{
    Budget, CancelToken, CommitOutcome, DecorrelatedJitter, LeaseTable, PairChunk, ShardStats,
    StopReason,
};

/// Tuning for [`ExecMode::Sharded`](crate::job::ExecMode). `Default`
/// is production-shaped; tests shrink the timeouts and inject their
/// own launcher and fault plan.
#[derive(Clone)]
pub struct ShardOptions {
    /// Worker executable; `None` resolves `sts-worker` next to the
    /// current executable ([`worker::default_worker_path`]). Ignored
    /// when [`launcher`](Self::launcher) is set.
    pub worker: Option<PathBuf>,
    /// Fleet size (0 → [`sts_runtime::worker_count`], which honors the
    /// `STS_WORKERS` environment override). Clamped to the tile count.
    pub workers: usize,
    /// How long a dealt tile may go without any frame (heartbeat or
    /// result) before its lease expires and the worker is presumed
    /// lost. Must comfortably exceed `hb_every` pairs of honest
    /// scoring.
    pub lease_timeout: Duration,
    /// How long a fresh worker may take to connect, rebuild the
    /// measure, prepare the corpus and answer `ready`.
    pub ready_timeout: Duration,
    /// Heartbeat stride in scored pairs, forwarded in the `hello`
    /// frame. 0 disables heartbeats (then a tile must finish within
    /// one lease timeout).
    pub hb_every: u64,
    /// Worker respawns allowed across the whole fleet (the initial
    /// fleet is free). Exhaustion retires slots; leftover tiles fall
    /// back to local compute.
    pub restart_budget: usize,
    /// Respawn backoff (decorrelated jitter between these bounds).
    pub backoff_base: Duration,
    /// See [`backoff_base`](Self::backoff_base).
    pub backoff_cap: Duration,
    /// How workers are launched. `None` spawns
    /// `sts-worker serve-tcp <addr>` subprocesses
    /// ([`ProcessLauncher`]); tests inject in-thread workers.
    pub launcher: Option<Arc<dyn WorkerLauncher>>,
    /// Fault injector applied to every coordinator-side connection
    /// (both directions). `None` is the clean transport.
    pub injector: Option<Arc<dyn NetInjector>>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            worker: None,
            workers: 0,
            lease_timeout: Duration::from_secs(30),
            ready_timeout: Duration::from_secs(10),
            hb_every: 64,
            restart_budget: 64,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            launcher: None,
            injector: None,
        }
    }
}

impl fmt::Debug for ShardOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardOptions")
            .field("worker", &self.worker)
            .field("workers", &self.workers)
            .field("lease_timeout", &self.lease_timeout)
            .field("ready_timeout", &self.ready_timeout)
            .field("hb_every", &self.hb_every)
            .field("restart_budget", &self.restart_budget)
            .finish_non_exhaustive()
    }
}

/// Launches one worker that must connect to `addr` and speak the
/// worker protocol over that socket. The default is
/// [`ProcessLauncher`]; tests launch in-thread workers for speed and
/// determinism.
pub trait WorkerLauncher: Send + Sync {
    /// Launch a worker that will connect to `addr`.
    fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>>;
}

/// A launched worker, killable by the coordinator. Implementations
/// must make `kill` idempotent and must reap any OS resources (a
/// killed child is waited on, not left a zombie).
pub trait WorkerHandle: Send {
    /// Terminate the worker. Idempotent; called on every teardown
    /// path, including drop-equivalent cleanup at coordinator exit.
    fn kill(&mut self);
}

/// Spawns `<program> serve-tcp <addr>` subprocesses with null stdio —
/// the production launcher.
#[derive(Debug, Clone)]
pub struct ProcessLauncher {
    /// The worker executable.
    pub program: PathBuf,
}

impl WorkerLauncher for ProcessLauncher {
    fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
        let child = Command::new(&self.program)
            .arg("serve-tcp")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        Ok(Box::new(ProcessHandle { child }))
    }
}

struct ProcessHandle {
    child: Child,
}

impl WorkerHandle for ProcessHandle {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Decorrelates per-connection fault schedules: each worker connection
/// gets a disjoint frame-index window into the shared injector, so a
/// respawned worker does not replay its predecessor's exact faults
/// (which would turn one seeded disconnect into an unconditional
/// restart loop).
struct OffsetInjector {
    inner: Arc<dyn NetInjector>,
    base: u64,
}

impl NetInjector for OffsetInjector {
    fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
        self.inner.fault_for(self.base + index, dir)
    }
}

/// Index-window stride per connection — far beyond any real frame
/// count, so windows never overlap.
const CONN_INDEX_STRIDE: u64 = 1 << 20;

/// What [`run_sharded`] concluded.
pub(crate) struct ShardRun {
    /// Coordinator accounting ([`ShardStats::tiles_local_fallback`] is
    /// left 0 — the caller owns the fallback).
    pub stats: ShardStats,
    /// Tile indices (into the caller's tile list) not committed by the
    /// fleet: the run stopped, or the fleet was exhausted/rejected.
    /// Ascending order.
    pub leftover: Vec<usize>,
    /// Why the run stopped early, if it did.
    pub stop: Option<StopReason>,
    /// The fleet's shipped telemetry, merged coordinator-side.
    pub telemetry: FleetTelemetry,
}

/// The fleet-wide view of worker-shipped telemetry: every connection's
/// cumulative job-delta snapshot (latest sequence wins, so chaos drops
/// and duplicate frames self-heal), merged unlabeled for fleet totals
/// and per-worker-labeled for attribution. The coordinator's own
/// `shard.pairs.committed{worker="cN"}` tally rides along, which is
/// what lets a consumer reconcile worker-*performed* work (a worker
/// that lost its lease still scored the pairs) against
/// coordinator-*committed* work exactly.
#[derive(Debug, Default, Clone)]
pub struct FleetTelemetry {
    /// All workers' snapshots merged (counters/histograms summed).
    pub merged: Snapshot,
    /// Per-worker labeled copies, merged: `name{worker="c<conn>"}`.
    pub labeled: Snapshot,
    /// Connections that shipped at least one snapshot.
    pub workers: usize,
    /// Clean final flushes observed (`bye` frames after `shutdown`).
    pub flushes: usize,
}

/// Per-connection telemetry accumulation (keyed by connection id).
#[derive(Default)]
struct ConnTelemetry {
    /// Highest `tstat` sequence absorbed; 0 = none yet.
    stat_seq: u64,
    /// That sequence's cumulative snapshot.
    snapshot: Snapshot,
    /// Highest `tspan` sequence absorbed (spans ship drained, so the
    /// gate only rejects duplicated frames, never reorders).
    span_seq: u64,
    /// Pairs the coordinator committed from this connection.
    committed_pairs: u64,
}

/// One slot's claim-serve-commit state machine outcome for a single
/// wait on the wire.
enum Verdict {
    /// The live epoch's result committed; here are its dense outcomes.
    Committed(Vec<PairOutcome>),
    /// The frame was destroyed in transit (typed garbage): the worker
    /// is alive, re-lease and resend to it.
    RetrySameWorker,
    /// Timeout, EOF, I/O error or protocol violation: kill the worker,
    /// expire the lease, respawn under budget.
    WorkerLost,
    /// The commit gate refused our own epoch (defensive: should be
    /// unreachable since a tile is held by exactly one slot).
    AlreadyDone,
}

enum SpawnError {
    /// Launch, connect, preamble or ready failed — transient, costs a
    /// restart from the shared budget.
    Failed,
    /// The worker answered `reject ...`: version or fingerprint skew.
    /// Permanent for this pairing of binaries.
    Rejected,
}

/// Coordinator state shared by all slot threads.
struct Shared<'a> {
    tiles: &'a [PairChunk],
    todo: &'a [usize],
    preamble: &'a [String],
    opts: &'a ShardOptions,
    launcher: Arc<dyn WorkerLauncher>,
    /// Pending positions into `todo`.
    queue: Mutex<VecDeque<usize>>,
    queue_cv: Condvar,
    /// Lease arbiter over `todo` positions.
    lt: Mutex<LeaseTable>,
    /// Committed flags per position (leftover = the unset ones).
    done: Vec<AtomicBool>,
    done_count: AtomicUsize,
    stopped: AtomicBool,
    rejected: AtomicBool,
    restarts_left: AtomicUsize,
    conn_seq: AtomicU64,
    workers_spawned: AtomicUsize,
    worker_restarts: AtomicUsize,
    workers_rejected: AtomicUsize,
    frames_corrupt: AtomicUsize,
    /// Results refused without going through the lease table (stale
    /// epochs we cannot map to a tile).
    stale_results: AtomicUsize,
    /// Job-wide trace id forwarded in every connection's `trace` frame.
    trace_id: u64,
    /// The `job.shard` span id worker root spans re-parent under (0
    /// when tracing is off — harmless, shipped roots stay roots).
    trace_parent: u64,
    /// Shipped telemetry per connection id.
    telemetry: Mutex<BTreeMap<u64, ConnTelemetry>>,
    /// Clean `bye` flushes observed.
    flushes: AtomicUsize,
}

impl Shared<'_> {
    /// Claims the next pending position, waiting out windows where
    /// every remaining tile is in flight on some other slot. `None`
    /// once everything is committed or the run stopped.
    fn claim(&self) -> Option<usize> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if self.stopped.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(pos) = q.pop_front() {
                return Some(pos);
            }
            if self.done_count.load(Ordering::SeqCst) >= self.todo.len() {
                return None;
            }
            // An in-flight tile may yet be requeued by a failing slot;
            // the timeout is only a safety net against lost wakeups.
            q = self
                .queue_cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap()
                .0;
        }
    }

    fn requeue(&self, pos: usize) {
        self.queue.lock().unwrap().push_back(pos);
        self.queue_cv.notify_all();
    }

    fn mark_done(&self, pos: usize) {
        self.done[pos].store(true, Ordering::SeqCst);
        self.done_count.fetch_add(1, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Takes one respawn from the shared budget. `false` = exhausted.
    fn charge_restart(&self) -> bool {
        self.restarts_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    fn expire(&self, pos: usize) {
        self.lt.lock().unwrap().expire(pos);
        trace::event("shard.tile.expire", self.tile_id(pos));
    }

    /// The caller-visible tile id at queue position `pos` — the value
    /// every `shard.tile.*` lifecycle event carries.
    fn tile_id(&self, pos: usize) -> f64 {
        self.tiles[self.todo[pos]].id as f64
    }

    /// Credits `pairs` committed pairs to connection `conn_id` (the
    /// coordinator-side half of the reconciliation ledger).
    fn credit_commit(&self, conn_id: u64, pairs: u64) {
        sts_obs::static_counter!("shard.pairs.committed").add(pairs);
        let mut t = self.telemetry.lock().unwrap();
        t.entry(conn_id).or_default().committed_pairs += pairs;
    }

    /// Absorbs a `tstat <seq> <wire snapshot>` frame. `false` means
    /// the frame is malformed (a protocol violation, not chaos — the
    /// framing layer already filtered corrupt frames into
    /// [`ProtocolError::Garbage`]).
    fn absorb_tstat(&self, conn_id: u64, frame: &str) -> bool {
        let Some(rest) = frame.strip_prefix("tstat ") else {
            return false;
        };
        let (seq, payload) = match rest.split_once(' ') {
            Some((s, p)) => (s, p),
            None => (rest, ""),
        };
        let Ok(seq) = seq.parse::<u64>() else {
            return false;
        };
        let Some(snapshot) = Snapshot::decode_wire(payload) else {
            return false;
        };
        let mut t = self.telemetry.lock().unwrap();
        let entry = t.entry(conn_id).or_default();
        // Cumulative snapshots: the latest sequence is the truth, and
        // anything older (a duplicated frame) is stale.
        if seq > entry.stat_seq {
            entry.stat_seq = seq;
            entry.snapshot = snapshot;
        }
        true
    }

    /// Absorbs a `tspan <seq> <n> (<id> <parent> <name> <thread>
    /// <start> <dur>)*` frame: sequence-gates against duplicates, maps
    /// worker clocks and thread ids into coordinator ranges, and
    /// re-emits each span through the coordinator's subscriber.
    fn absorb_tspan(&self, conn_id: u64, clock: ClockMap, frame: &str) -> bool {
        let mut fields = frame.split_whitespace();
        fields.next(); // "tspan"
        let Some(seq) = fields.next().and_then(|s| s.parse::<u64>().ok()) else {
            return false;
        };
        let Some(n) = fields.next().and_then(|s| s.parse::<usize>().ok()) else {
            return false;
        };
        {
            let mut t = self.telemetry.lock().unwrap();
            let entry = t.entry(conn_id).or_default();
            if seq <= entry.span_seq {
                return true; // duplicated frame; spans already emitted
            }
            entry.span_seq = seq;
        }
        for _ in 0..n {
            fn num<'a>(fields: &mut impl Iterator<Item = &'a str>) -> Option<u64> {
                fields.next().and_then(|s| s.parse::<u64>().ok())
            }
            let Some(id) = num(&mut fields) else {
                return false;
            };
            let Some(parent) = num(&mut fields) else {
                return false;
            };
            let Some(name) = fields.next() else {
                return false;
            };
            let name = trace::intern_name(name);
            let Some(thread) = num(&mut fields) else {
                return false;
            };
            let Some(start_ns) = num(&mut fields) else {
                return false;
            };
            let Some(dur_ns) = num(&mut fields) else {
                return false;
            };
            trace::emit_span(&SpanRecord {
                id,
                parent,
                name,
                // Worker thread ids are per-process; shift them into a
                // per-connection range so fleet threads stay distinct.
                thread: ((conn_id + 1) << 16) | (thread & 0xffff),
                start_ns: clock.to_local(start_ns),
                dur_ns,
            });
        }
        fields.next().is_none()
    }

    /// Folds every connection's accumulated telemetry into the fleet
    /// view handed back on [`ShardRun`].
    fn fleet_telemetry(&self) -> FleetTelemetry {
        let t = self.telemetry.lock().unwrap();
        let mut fleet = FleetTelemetry {
            flushes: self.flushes.load(Ordering::SeqCst),
            ..FleetTelemetry::default()
        };
        for (&conn_id, ct) in t.iter() {
            let mut contribution = ct.snapshot.clone();
            // In-process test workers share the coordinator's registry
            // and may echo coordinator-side counters back; this one is
            // authoritative coordinator-side, so theirs is dropped.
            contribution
                .counters
                .retain(|(n, _)| n != "shard.pairs.committed");
            contribution
                .counters
                .push(("shard.pairs.committed".to_string(), ct.committed_pairs));
            contribution.counters.sort_by(|a, b| a.0.cmp(&b.0));
            fleet.merged.merge(&contribution);
            fleet
                .labeled
                .merge(&contribution.with_label("worker", &format!("c{conn_id}")));
            if ct.stat_seq > 0 {
                fleet.workers += 1;
            }
        }
        fleet
    }
}

/// Deals the `todo` tiles to a worker fleet and calls `on_commit` (on
/// this thread) exactly once per committed tile, in commit order, with
/// the tile's dense outcomes. See the [module docs](self) for the
/// protocol; see [`ShardRun`] for what comes back.
pub(crate) fn run_sharded(
    tiles: &[PairChunk],
    todo: &[usize],
    preamble: &[String],
    opts: &ShardOptions,
    cancel: &CancelToken,
    budget: Budget,
    on_commit: &mut dyn FnMut(usize, Vec<PairOutcome>),
) -> ShardRun {
    let shard_span = trace::span("job.shard");
    if todo.is_empty() {
        return ShardRun {
            stats: ShardStats::default(),
            leftover: Vec::new(),
            stop: None,
            telemetry: FleetTelemetry::default(),
        };
    }
    let launcher: Arc<dyn WorkerLauncher> = match &opts.launcher {
        Some(l) => Arc::clone(l),
        None => Arc::new(ProcessLauncher {
            program: opts
                .worker
                .clone()
                .unwrap_or_else(worker::default_worker_path),
        }),
    };
    let slots = if opts.workers == 0 {
        sts_runtime::worker_count(todo.len())
    } else {
        opts.workers.min(todo.len()).max(1)
    };
    let shared = Shared {
        tiles,
        todo,
        preamble,
        opts,
        launcher,
        queue: Mutex::new((0..todo.len()).collect()),
        queue_cv: Condvar::new(),
        lt: Mutex::new(LeaseTable::new(todo.len())),
        done: (0..todo.len()).map(|_| AtomicBool::new(false)).collect(),
        done_count: AtomicUsize::new(0),
        stopped: AtomicBool::new(false),
        rejected: AtomicBool::new(false),
        restarts_left: AtomicUsize::new(opts.restart_budget),
        conn_seq: AtomicU64::new(0),
        workers_spawned: AtomicUsize::new(0),
        worker_restarts: AtomicUsize::new(0),
        workers_rejected: AtomicUsize::new(0),
        frames_corrupt: AtomicUsize::new(0),
        stale_results: AtomicUsize::new(0),
        // Process id ⊕ span id: unique across a fleet of coordinators
        // on one host and across reruns in one process.
        trace_id: (u64::from(std::process::id()) << 32) | (shard_span.id() & 0xffff_ffff),
        trace_parent: shard_span.id(),
        telemetry: Mutex::new(BTreeMap::new()),
        flushes: AtomicUsize::new(0),
    };

    let (tx, rx) = mpsc::channel::<(usize, Vec<PairOutcome>)>();
    let mut stop_reason: Option<StopReason> = None;
    let mut committed_pairs = 0usize;
    std::thread::scope(|s| {
        for slot in 0..slots {
            let tx = tx.clone();
            let shared = &shared;
            s.spawn(move || slot_loop(shared, slot, &tx));
        }
        drop(tx);
        // This thread owns the commit sink: spills happen here, in
        // commit order, so the caller's closure needs no Send bound.
        loop {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok((tile_idx, outs)) => {
                    committed_pairs += outs.len();
                    on_commit(tile_idx, outs);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            if stop_reason.is_none() {
                stop_reason = if cancel.is_cancelled() {
                    Some(StopReason::Cancelled)
                } else {
                    budget.check(committed_pairs)
                };
                if stop_reason.is_some() {
                    shared.stop();
                }
            }
        }
        // Commits that raced the shutdown are still commits: the lease
        // table accepted them and the spill must happen.
        while let Ok((tile_idx, outs)) = rx.try_recv() {
            committed_pairs += outs.len();
            on_commit(tile_idx, outs);
        }
    });

    let lt = shared.lt.lock().unwrap();
    let stats = ShardStats {
        workers_spawned: shared.workers_spawned.load(Ordering::SeqCst),
        worker_restarts: shared.worker_restarts.load(Ordering::SeqCst),
        workers_rejected: shared.workers_rejected.load(Ordering::SeqCst),
        tiles_leased: lt.leases_granted(),
        leases_expired: lt.leases_expired(),
        commits_refused: lt.commits_refused() + shared.stale_results.load(Ordering::SeqCst),
        frames_corrupt: shared.frames_corrupt.load(Ordering::SeqCst),
        tiles_local_fallback: 0,
        telemetry_flushes: shared.flushes.load(Ordering::SeqCst),
    };
    drop(lt);
    let leftover = (0..todo.len())
        .filter(|&pos| !shared.done[pos].load(Ordering::SeqCst))
        .map(|pos| todo[pos])
        .collect();
    let telemetry = shared.fleet_telemetry();
    ShardRun {
        stats,
        leftover,
        stop: stop_reason,
        telemetry,
    }
}

/// One live worker connection, as held by a slot: the framed socket,
/// the kill handle, the connection id (telemetry attribution key and
/// injector window), and the worker→coordinator clock mapping from the
/// ready exchange.
struct Worker {
    conn: FrameConn,
    handle: Box<dyn WorkerHandle>,
    id: u64,
    clock: ClockMap,
}

/// One slot: claim a tile, keep a worker alive, deal and commit, until
/// the queue drains, the run stops, the handshake is rejected, or the
/// restart budget retires this slot.
fn slot_loop(shared: &Shared<'_>, slot: usize, tx: &mpsc::Sender<(usize, Vec<PairOutcome>)>) {
    let mut live: Option<Worker> = None;
    let mut jitter = DecorrelatedJitter::new(
        shared.opts.backoff_base,
        shared.opts.backoff_cap,
        0x5AAD_0000 ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut spawned_once = false;
    'slot: while let Some(pos) = shared.claim() {
        loop {
            if shared.stopped.load(Ordering::SeqCst) {
                shared.requeue(pos);
                break 'slot;
            }
            if live.is_none() {
                if shared.rejected.load(Ordering::SeqCst) {
                    // The binaries cannot agree; spawning more copies
                    // of the same worker cannot fix it.
                    shared.requeue(pos);
                    break 'slot;
                }
                if spawned_once {
                    if !shared.charge_restart() {
                        shared.requeue(pos);
                        break 'slot; // slot retires; fleet shrinks
                    }
                    shared.worker_restarts.fetch_add(1, Ordering::SeqCst);
                    sts_obs::static_counter!("shard.workers.restarted").incr();
                    std::thread::sleep(jitter.next_delay());
                }
                spawned_once = true;
                match spawn_ready_worker(shared) {
                    Ok(w) => live = Some(w),
                    Err(SpawnError::Failed) => continue,
                    Err(SpawnError::Rejected) => {
                        shared.workers_rejected.fetch_add(1, Ordering::SeqCst);
                        sts_obs::static_counter!("shard.workers.rejected").incr();
                        shared.rejected.store(true, Ordering::SeqCst);
                        shared.requeue(pos);
                        break 'slot;
                    }
                }
            }
            let tile = &shared.tiles[shared.todo[pos]];
            let Some(epoch) = shared.lt.lock().unwrap().lease(pos) else {
                // Defensive: positions are claimed exclusively, so a
                // committed tile cannot be re-claimed.
                break;
            };
            trace::event("shard.tile.lease", shared.tile_id(pos));
            let w = live.as_mut().expect("worker ensured above");
            if w.conn
                .send(&format!("chunk {epoch} {} {}", tile.start, tile.len))
                .is_err()
            {
                teardown(&mut live);
                shared.expire(pos);
                continue;
            }
            trace::event("shard.tile.deal", shared.tile_id(pos));
            let _ = w.conn.set_read_deadline(Some(shared.opts.lease_timeout));
            match wait_result(shared, w, pos, tile, epoch) {
                Verdict::Committed(outs) => {
                    shared.credit_commit(w.id, outs.len() as u64);
                    trace::event("shard.tile.commit", shared.tile_id(pos));
                    shared.mark_done(pos);
                    let _ = tx.send((shared.todo[pos], outs));
                    break;
                }
                Verdict::AlreadyDone => break,
                Verdict::RetrySameWorker => {
                    shared.expire(pos);
                    continue;
                }
                Verdict::WorkerLost => {
                    teardown(&mut live);
                    shared.expire(pos);
                    continue;
                }
            }
        }
    }
    if let Some(mut w) = live.take() {
        // A graceful shutdown earns the worker one final telemetry
        // flush: absorb tstat/tspan frames (and drain any stale
        // leftovers) until `bye`, a bounded deadline, or a dead pipe.
        let _ = w.conn.send("shutdown");
        let _ = w
            .conn
            .set_read_deadline(Some(shared.opts.lease_timeout.min(Duration::from_secs(2))));
        loop {
            match w.conn.recv() {
                Ok(f) if f.starts_with("tstat ") => {
                    if !shared.absorb_tstat(w.id, &f) {
                        break;
                    }
                }
                Ok(f) if f.starts_with("tspan ") => {
                    if !shared.absorb_tspan(w.id, w.clock, &f) {
                        break;
                    }
                }
                Ok(f) if f.starts_with("bye") => {
                    shared.flushes.fetch_add(1, Ordering::SeqCst);
                    break;
                }
                Ok(_) => continue, // stale hb/result frames drain here
                Err(ProtocolError::Garbage { .. }) => {
                    // Corruption detected here still counts: the
                    // chaos suites reconcile garbage frames against
                    // the injection ledger exactly, shutdown included.
                    shared.frames_corrupt.fetch_add(1, Ordering::SeqCst);
                    sts_obs::static_counter!("shard.frames.corrupt").incr();
                    continue;
                }
                Err(_) => break,
            }
        }
        w.handle.kill();
    }
}

fn teardown(live: &mut Option<Worker>) {
    if let Some(mut w) = live.take() {
        w.handle.kill();
    }
}

/// Reads frames until the live epoch's result arrives (commit), the
/// deadline passes, or the connection proves unusable. Heartbeats for
/// any epoch reset the deadline simply by being frames; results for
/// superseded epochs are refused and skipped. Telemetry frames
/// (`tstat`/`tspan`) are absorbed in passing — malformed ones are
/// protocol violations, not chaos, and lose the worker.
fn wait_result(
    shared: &Shared<'_>,
    w: &mut Worker,
    pos: usize,
    tile: &PairChunk,
    epoch: u64,
) -> Verdict {
    loop {
        match w.conn.recv() {
            Ok(frame) => {
                let mut fields = frame.split_whitespace();
                match fields.next() {
                    Some("hb") => {
                        // `hb <epoch> <pairs_done>` — surface progress
                        // instead of treating the frame as opaque.
                        let mut num = || fields.next().and_then(|s| s.parse::<u64>().ok());
                        if let (Some(hb_epoch), Some(pairs_done)) = (num(), num()) {
                            if hb_epoch == epoch {
                                sts_obs::static_gauge!("shard.tile.progress")
                                    .set(pairs_done as i64);
                                trace::event("shard.tile.hb", shared.tile_id(pos));
                            }
                        }
                        continue;
                    }
                    Some("tstat") => {
                        if !shared.absorb_tstat(w.id, &frame) {
                            return Verdict::WorkerLost;
                        }
                        continue;
                    }
                    Some("tspan") => {
                        if !shared.absorb_tspan(w.id, w.clock, &frame) {
                            return Verdict::WorkerLost;
                        }
                        continue;
                    }
                    Some("result") => {
                        let Some(id) = fields.next().and_then(|s| s.parse::<u64>().ok()) else {
                            return Verdict::WorkerLost;
                        };
                        if id != epoch {
                            // A duplicated frame or a superseded
                            // chunk's late result: refuse, keep
                            // listening for ours.
                            shared.stale_results.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        let payload = frame
                            .strip_prefix(&format!("result {id} "))
                            .unwrap_or_default();
                        let Some(outs) = decode_tile(payload, tile) else {
                            return Verdict::WorkerLost;
                        };
                        return match shared.lt.lock().unwrap().commit(pos, epoch) {
                            CommitOutcome::Committed => Verdict::Committed(outs),
                            CommitOutcome::Duplicate | CommitOutcome::Stale => Verdict::AlreadyDone,
                        };
                    }
                    _ => return Verdict::WorkerLost,
                }
            }
            Err(ProtocolError::Garbage { .. }) => {
                // Line noise on the wire. The destroyed frame may have
                // been our result — re-lease and resend to the same
                // (healthy) worker; the commit gate absorbs any
                // original that later limps in.
                shared.frames_corrupt.fetch_add(1, Ordering::SeqCst);
                sts_obs::static_counter!("shard.frames.corrupt").incr();
                return Verdict::RetrySameWorker;
            }
            Err(_) => return Verdict::WorkerLost,
        }
    }
}

/// Decodes one result payload into the tile's dense outcome slab.
/// `None` on any malformed, out-of-range, duplicated or missing record
/// — the chunk was for this exact tile, so anything but a perfect
/// cover is a protocol violation.
fn decode_tile(payload: &str, tile: &PairChunk) -> Option<Vec<PairOutcome>> {
    let cells = worker::decode_result_payload(payload)?;
    if cells.len() != tile.len {
        return None;
    }
    let mut dense = vec![PairOutcome::Skipped; tile.len];
    for (lin, outcome) in cells {
        if lin < tile.start || lin >= tile.start + tile.len {
            return None;
        }
        let slot = &mut dense[lin - tile.start];
        // The wire never carries `Skipped`, so it doubles as the
        // unfilled marker.
        if !matches!(slot, PairOutcome::Skipped) {
            return None;
        }
        *slot = outcome;
    }
    dense
        .iter()
        .all(|o| !matches!(o, PairOutcome::Skipped))
        .then_some(dense)
}

/// Launches one worker and walks it to `ready`: bind an ephemeral
/// loopback listener, launch, accept within the ready deadline, send
/// the preamble plus the `trace` context frame, and interpret the
/// worker's answer. The worker's `ready <now_ns>` clock echo is paired
/// with the coordinator's own clock at receipt to build the
/// per-connection [`ClockMap`].
fn spawn_ready_worker(shared: &Shared<'_>) -> Result<Worker, SpawnError> {
    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|_| SpawnError::Failed)?;
    let addr = listener.local_addr().map_err(|_| SpawnError::Failed)?;
    listener
        .set_nonblocking(true)
        .map_err(|_| SpawnError::Failed)?;
    let mut handle = shared
        .launcher
        .launch(addr)
        .map_err(|_| SpawnError::Failed)?;
    shared.workers_spawned.fetch_add(1, Ordering::SeqCst);
    sts_obs::static_counter!("shard.workers.spawned").incr();
    let deadline = Instant::now() + shared.opts.ready_timeout;
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    handle.kill();
                    return Err(SpawnError::Failed);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                handle.kill();
                return Err(SpawnError::Failed);
            }
        }
    };
    let _ = stream.set_nodelay(true);
    // Connection ids are allocated unconditionally: they key telemetry
    // attribution and span-id/thread-id remapping even when no fault
    // injector is installed.
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    let injector = shared.opts.injector.as_ref().map(|inner| {
        Arc::new(OffsetInjector {
            inner: Arc::clone(inner),
            base: conn_id * CONN_INDEX_STRIDE,
        }) as Arc<dyn NetInjector>
    });
    let Ok(mut conn) = FrameConn::with_injector(stream, injector) else {
        handle.kill();
        return Err(SpawnError::Failed);
    };
    let _ = conn.set_read_deadline(Some(shared.opts.ready_timeout));
    for frame in shared.preamble {
        if conn.send(frame).is_err() {
            handle.kill();
            return Err(SpawnError::Failed);
        }
    }
    // Trace context: job-wide trace id, the span the worker's root
    // should parent under, a disjoint id window per connection, and
    // whether spans are worth shipping at all (the coordinator is the
    // only consumer, so its tracing switch decides).
    let span_base = (conn_id + 1) << 32;
    let ship_spans = u64::from(trace::tracing_enabled());
    if conn
        .send(&format!(
            "trace {:016x} {} {span_base} {ship_spans}",
            shared.trace_id, shared.trace_parent
        ))
        .is_err()
    {
        handle.kill();
        return Err(SpawnError::Failed);
    }
    if conn.send("begin").is_err() {
        handle.kill();
        return Err(SpawnError::Failed);
    }
    loop {
        match conn.recv() {
            Ok(f) if f == "ready" || f.starts_with("ready ") => {
                // `ready <worker_now_ns>` — the clock-origin exchange.
                // A bare `ready` (older worker) degrades to identity
                // mapping: spans keep their worker-relative times.
                let clock = f
                    .strip_prefix("ready ")
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .map(|remote| ClockMap::from_exchange(remote, trace::now_ns()))
                    .unwrap_or_default();
                return Ok(Worker {
                    conn,
                    handle,
                    id: conn_id,
                    clock,
                });
            }
            Ok(f) if f.starts_with("reject ") => {
                handle.kill();
                return Err(SpawnError::Rejected);
            }
            Ok(_) => {
                handle.kill();
                return Err(SpawnError::Failed);
            }
            Err(ProtocolError::Garbage { .. }) => {
                shared.frames_corrupt.fetch_add(1, Ordering::SeqCst);
                sts_obs::static_counter!("shard.frames.corrupt").incr();
                continue;
            }
            Err(_) => {
                handle.kill();
                return Err(SpawnError::Failed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sts::MeasureSpec;
    use crate::{Sts, StsConfig};
    use std::net::{Shutdown, TcpStream};
    use sts_geo::{BoundingBox, Grid, Point};
    use sts_runtime::PairSpace;
    use sts_traj::Trajectory;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(200.0, 50.0)),
            5.0,
        )
        .unwrap()
    }

    fn walker(y: f64, phase: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = phase + 10.0 * i as f64;
                    sts_traj::TrajPoint::from_xy(2.0 * t, y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    fn corpus() -> (Vec<Trajectory>, Vec<Trajectory>) {
        let queries: Vec<_> = (0..4)
            .map(|i| walker(5.0 + 10.0 * i as f64, 0.0, 6))
            .collect();
        let candidates: Vec<_> = (0..4)
            .map(|i| walker(8.0 + 9.0 * i as f64, 5.0, 6))
            .collect();
        (queries, candidates)
    }

    /// Runs `crate::worker::serve` on an in-process thread over the
    /// connecting socket — the test fleet.
    struct ThreadLauncher;

    struct ThreadHandle {
        stream: TcpStream,
    }

    impl WorkerHandle for ThreadHandle {
        fn kill(&mut self) {
            let _ = self.stream.shutdown(Shutdown::Both);
        }
    }

    impl WorkerLauncher for ThreadLauncher {
        fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
            let stream = TcpStream::connect(addr)?;
            let reader = stream.try_clone()?;
            let writer = stream.try_clone()?;
            std::thread::spawn(move || {
                let mut r = std::io::BufReader::new(reader);
                let mut w = writer;
                let _ = crate::worker::serve(&mut r, &mut w);
            });
            Ok(Box::new(ThreadHandle { stream }))
        }
    }

    /// A launcher that never produces a worker: exercises budget
    /// exhaustion and the leftover path.
    struct BrokenLauncher;

    impl WorkerLauncher for BrokenLauncher {
        fn launch(&self, _addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
            Err(io::Error::other("no workers here"))
        }
    }

    fn shard_opts(launcher: Arc<dyn WorkerLauncher>) -> ShardOptions {
        ShardOptions {
            workers: 2,
            lease_timeout: Duration::from_secs(5),
            ready_timeout: Duration::from_secs(5),
            hb_every: 2,
            restart_budget: 4,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(500),
            launcher: Some(launcher),
            ..ShardOptions::default()
        }
    }

    fn run(
        opts: &ShardOptions,
        preamble_tamper: impl FnOnce(&mut Vec<String>),
    ) -> (
        Vec<Option<Vec<PairOutcome>>>,
        ShardRun,
        Vec<Trajectory>,
        Vec<Trajectory>,
    ) {
        let (queries, candidates) = corpus();
        let sts = Sts::new(StsConfig::default(), grid());
        let space = PairSpace::new(queries.len(), candidates.len());
        let cfg = crate::job::JobConfig::default();
        let mut preamble = crate::worker::encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            sts.grid(),
            &cfg,
            &space,
            &queries,
            &candidates,
            opts.hb_every,
        );
        preamble_tamper(&mut preamble);
        let tiles: Vec<PairChunk> = space.chunks(4).collect();
        let todo: Vec<usize> = (0..tiles.len()).collect();
        let mut committed: Vec<Option<Vec<PairOutcome>>> = vec![None; tiles.len()];
        let run = run_sharded(
            &tiles,
            &todo,
            &preamble,
            opts,
            &sts_runtime::CancelToken::new(),
            Budget::default(),
            &mut |idx, outs| {
                assert!(committed[idx].is_none(), "tile {idx} committed twice");
                committed[idx] = Some(outs);
            },
        );
        (committed, run, queries, candidates)
    }

    #[test]
    fn clean_fleet_commits_every_tile_bit_exactly_once() {
        let opts = shard_opts(Arc::new(ThreadLauncher));
        let (committed, run, queries, candidates) = run(&opts, |_| {});
        let sts = Sts::new(StsConfig::default(), grid());
        let strict = sts.similarity_matrix(&queries, &candidates).unwrap();
        let cols = candidates.len();
        for (idx, outs) in committed.iter().enumerate() {
            let outs = outs.as_ref().expect("every tile commits");
            for (off, outcome) in outs.iter().enumerate() {
                let lin = idx * 4 + off;
                match outcome {
                    PairOutcome::Score(s) => {
                        assert_eq!(
                            s.to_bits(),
                            strict[lin / cols][lin % cols].to_bits(),
                            "cell {lin}"
                        );
                    }
                    other => panic!("cell {lin}: {other:?}"),
                }
            }
        }
        assert!(run.leftover.is_empty());
        assert!(run.stop.is_none());
        assert_eq!(run.stats.tiles_leased, 4);
        assert_eq!(run.stats.leases_expired, 0);
        assert_eq!(run.stats.workers_rejected, 0);
        assert!(run.stats.workers_spawned >= 1 && run.stats.workers_spawned <= 2);
        assert_eq!(run.stats.worker_restarts, 0);
        // Fleet telemetry: every spawned worker survives a clean run
        // and flushes on shutdown; the coordinator-authoritative commit
        // tally covers the whole 4×4 matrix exactly.
        assert_eq!(run.stats.telemetry_flushes, run.stats.workers_spawned);
        assert_eq!(run.telemetry.flushes, run.stats.telemetry_flushes);
        assert!(run.telemetry.workers >= 1);
        assert_eq!(
            run.telemetry.merged.counter("shard.pairs.committed"),
            Some(16)
        );
        // The in-process test fleet shares this process's registry, so
        // worker-shipped counters are a superset of the fleet's own
        // work — exact equality needs subprocess workers (integration
        // tests); here `>=` proves the shipping path moved real deltas.
        assert!(
            run.telemetry
                .merged
                .counter("core.pairs.scored")
                .unwrap_or(0)
                >= 16
        );
        let labeled_commits: u64 = run
            .telemetry
            .labeled
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("shard.pairs.committed{worker="))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(
            labeled_commits, 16,
            "per-worker attribution sums to the matrix"
        );
    }

    #[test]
    fn exhausted_fleet_returns_every_tile_as_leftover() {
        let opts = shard_opts(Arc::new(BrokenLauncher));
        let (committed, run, _, _) = run(&opts, |_| {});
        assert!(committed.iter().all(Option::is_none));
        assert_eq!(run.leftover, vec![0, 1, 2, 3]);
        assert!(
            run.stop.is_none(),
            "exhaustion is not a stop: {:?}",
            run.stop
        );
        // Initial fleet spawns are free; every further attempt drew
        // from the shared budget of 4.
        assert_eq!(run.stats.worker_restarts, 4);
        assert_eq!(run.stats.workers_spawned, 0, "launch never succeeded");
    }

    #[test]
    fn version_skew_rejects_typed_without_burning_restarts() {
        let opts = shard_opts(Arc::new(ThreadLauncher));
        let (committed, run, _, _) = run(&opts, |preamble| {
            preamble[0] = preamble[0].replacen(
                &format!("hello {} ", crate::worker::PROTOCOL_VERSION),
                "hello 99 ",
                1,
            );
        });
        assert!(committed.iter().all(Option::is_none));
        assert_eq!(run.leftover, vec![0, 1, 2, 3]);
        assert!(run.stats.workers_rejected >= 1);
        assert_eq!(
            run.stats.worker_restarts, 0,
            "a permanent rejection must not burn the restart budget"
        );
    }

    #[test]
    fn zero_pair_result_payloads_are_protocol_violations() {
        let tile = PairChunk {
            id: 0,
            start: 4,
            len: 3,
        };
        // Perfect cover commits.
        assert!(decode_tile("3 4 s 0.5 5 q 6 s 0.25", &tile).is_some());
        for bad in [
            "2 4 s 0.5 5 q",          // short
            "3 4 s 0.5 5 q 9 s 0.25", // out of range
            "3 4 s 0.5 4 s 0.5 6 q",  // duplicate lin
            "3 4 s 0.5 5 zz 6 q",     // malformed record
        ] {
            assert!(decode_tile(bad, &tile).is_none(), "{bad:?}");
        }
    }
}
