//! Out-of-core tiled similarity matrices: crash-safe spill/merge on
//! top of the supervised job engine.
//!
//! [`Sts::similarity_matrix_supervised`] holds the whole `N × M` cell
//! vector in memory for the life of the job. At production corpus
//! sizes that is the binding constraint long before wall-clock is: a
//! 200k × 200k matrix of outcomes does not fit, and an OOM kill at 90%
//! loses everything the checkpoint interval did not cover. This module
//! removes the constraint without weakening a single supervised
//! guarantee:
//!
//! * the pair space is dealt into **tiles** ([`TileConfig::tile_pairs`]
//!   pairs each, derivable from a byte budget via
//!   [`TileConfig::with_memory_budget`]);
//! * each tile is computed on the existing engine — the in-process
//!   pool or the `sts-worker` subprocess fleet, per
//!   [`JobConfig::exec`](crate::job::JobConfig::exec) — then
//!   **spilled** to its own file through the
//!   [`Storage`](sts_runtime::Storage) trait with the checkpoint
//!   layer's full durability discipline (tmp write → fsync → rename →
//!   dir fsync) and **read-back verified** before the in-memory copy
//!   is dropped;
//! * tile files are bound to the job fingerprint and digest-protected
//!   ([`sts_runtime::tile`]): a torn write, flipped byte or stale file
//!   is *detected*, quarantined aside as `.corrupt` evidence and
//!   recomputed — never silently read back;
//! * completed tiles **are** the checkpoint: a killed job resumes by
//!   reloading verified tiles and recomputing only the rest, so the
//!   resumed result is byte-identical to an uninterrupted run (the
//!   default [`StpCacheMode::Exact`](crate::StpCacheMode) scoring path
//!   is deterministic and visitation-order independent);
//! * the final matrix is **stream-merged** tile by tile into the
//!   caller's sink, so the engine itself holds at most one tile plus
//!   any spill-failed fallbacks — the honest bound is reported as
//!   [`TileStats::max_resident_cells`] and the measured one as
//!   [`TileStats::peak_rss_bytes`].
//!
//! A spill failure (ENOSPC, verification failure on read-back) costs
//! durability for that tile, not correctness: the tile is served from
//! memory and counted in [`TileStats::spill_errors`]. The disk-chaos
//! suite in `sts-robust` drives torn writes, bit flips, ENOSPC and
//! stale-tmp crashes through this engine via an injected `Storage`
//! implementation and asserts bit-identical results with every
//! corruption detected.

use crate::batch::{prepare_all, BatchReport, PairOutcome};
use crate::job::{
    check_start, from_record, is_terminal, job_fingerprint, job_telemetry, reshape, to_record,
    ExecMode, IsolateOptions, JobConfig, JobError, JobReport,
};
use crate::sts::{sort_scores_descending, PreparedTrajectory, Sts};
use crate::worker;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sts_isolate::{IsolateConfig, WorkerSpec};
use sts_obs::trace;
use sts_runtime::pool::{run_supervised_with, ChunkStatus, PoolConfig};
use sts_runtime::{
    Budget, FsStorage, IsolateStats, JobState, JobStats, PairChunk, PairSpace, StopReason, Storage,
    TileData, TileError, TileStats, TileStore,
};
use sts_traj::Trajectory;

/// Rough in-memory footprint of one resident cell record (outcome enum
/// plus `Vec` slack), used by [`TileConfig::with_memory_budget`] to
/// turn a byte budget into a tile size. Deliberately conservative.
pub const TILE_CELL_BYTES: usize = 64;

/// How a tiled job spills and resumes: the tile directory, the tile
/// granularity and the storage implementation all tile I/O goes
/// through (the chaos suite injects a fault-raising one).
#[derive(Clone)]
pub struct TileConfig {
    /// Directory holding the per-tile spill files (created if absent).
    /// A directory left by a killed run of the *same* job is resumed
    /// from; tiles from a different job are detected by fingerprint
    /// and recomputed.
    pub dir: PathBuf,
    /// Pairs per tile — the spill granularity and the engine's
    /// resident-memory unit. Must be ≥ 1
    /// ([`JobError::InvalidTiling`] otherwise: a zero tile would
    /// schedule forever without progressing).
    pub tile_pairs: usize,
    /// Keep tile files after a run that resolved every pair (default:
    /// they are removed — quarantined `.corrupt` evidence is always
    /// kept). Interrupted runs always keep them; they are the resume
    /// state.
    pub keep_tiles: bool,
    /// The storage implementation behind every tile read and write.
    pub storage: Arc<dyn Storage>,
}

impl fmt::Debug for TileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TileConfig")
            .field("dir", &self.dir)
            .field("tile_pairs", &self.tile_pairs)
            .field("keep_tiles", &self.keep_tiles)
            .finish_non_exhaustive()
    }
}

impl TileConfig {
    /// Spill to `dir` with the default tile size (4096 pairs) on the
    /// real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TileConfig {
            dir: dir.into(),
            tile_pairs: 4096,
            keep_tiles: false,
            storage: Arc::new(FsStorage),
        }
    }

    /// Derive the tile size from a resident-memory budget in bytes
    /// (at least one pair per tile, [`TILE_CELL_BYTES`] per cell).
    pub fn with_memory_budget(dir: impl Into<PathBuf>, budget_bytes: usize) -> Self {
        TileConfig {
            tile_pairs: (budget_bytes / TILE_CELL_BYTES).max(1),
            ..TileConfig::new(dir)
        }
    }
}

/// Where a tile's cells live between phase A (compute/spill) and
/// phase B (merge).
enum TileSource {
    /// Durably on disk, verified; reloaded one at a time at merge.
    Disk,
    /// Held in memory: the spill failed, or the run stopped mid-tile
    /// (partial tiles are never spilled). Dense, tile-length.
    Memory(Vec<PairOutcome>),
    /// Never attempted — the run stopped before this tile.
    Skipped,
}

/// One tile's compute outcome.
struct TileRun {
    /// Dense outcomes for the tile's slab (`Skipped` where the run
    /// stopped first).
    outs: Vec<PairOutcome>,
    /// Why the engine under this tile stopped early, if it did.
    stop: Option<StopReason>,
    /// Pool-level chunk retries (in-process only).
    pool_retries: u64,
    /// Scheduling/run time accounting (in-process only).
    wait: Duration,
    run: Duration,
}

/// Resolved subprocess execution context, prepared once per job.
struct SubExec<'a> {
    opts: &'a IsolateOptions,
    program: PathBuf,
    preamble: Vec<String>,
}

impl Sts {
    /// The supervised similarity matrix computed **out of core**: same
    /// contract as
    /// [`similarity_matrix_supervised`](Sts::similarity_matrix_supervised)
    /// — budget, cancellation, retries, fault injection, in-process or
    /// subprocess execution — but progress is spilled per tile and the
    /// engine never holds more than one tile of cells (see the
    /// [module docs](crate::tiled)). The returned full matrix is the
    /// *caller's* memory; use
    /// [`top_k_matrix_tiled`](Sts::top_k_matrix_tiled) when the output
    /// itself must stay bounded.
    ///
    /// A run interrupted at any point — including SIGKILL mid-spill —
    /// resumes from `tiling.dir` with byte-identical results.
    pub fn similarity_matrix_tiled(
        &self,
        queries: &[Trajectory],
        candidates: &[Trajectory],
        cfg: &JobConfig,
        tiling: &TileConfig,
    ) -> Result<(Vec<Vec<PairOutcome>>, JobReport), JobError> {
        let space = PairSpace::new(queries.len(), candidates.len());
        let mut cells = vec![PairOutcome::Skipped; space.len()];
        let report = self.tiled_engine(queries, candidates, cfg, tiling, &mut |lin, outcome| {
            cells[lin] = outcome;
        })?;
        Ok((reshape(cells, &space), report))
    }

    /// Top-k nearest candidates for **every** query row, out of core:
    /// the full `N × M` matrix is never materialized — each row keeps
    /// a bounded accumulator (at most `max(2k, 16)` entries) that is
    /// pruned as tiles stream through the merge. Ranking semantics
    /// match [`top_k_supervised`](Sts::top_k_supervised): only scored
    /// cells rank; skipped, quarantined and failed pairs are excluded
    /// (the report says which and why).
    pub fn top_k_matrix_tiled(
        &self,
        queries: &[Trajectory],
        candidates: &[Trajectory],
        k: usize,
        cfg: &JobConfig,
        tiling: &TileConfig,
    ) -> Result<(Vec<Vec<(usize, f64)>>, JobReport), JobError> {
        let cols = candidates.len();
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); queries.len()];
        let prune_at = k.saturating_mul(2).max(16);
        let report = self.tiled_engine(queries, candidates, cfg, tiling, &mut |lin, outcome| {
            if let Some(s) = outcome.score() {
                let row = &mut rows[lin / cols];
                row.push((lin % cols, s));
                if row.len() >= prune_at {
                    sort_scores_descending(row);
                    row.truncate(k);
                }
            }
        })?;
        for row in &mut rows {
            sort_scores_descending(row);
            row.truncate(k);
        }
        Ok((rows, report))
    }

    /// Single-query top-k, out of core: row 0 of a `1 × candidates`
    /// [`top_k_matrix_tiled`](Sts::top_k_matrix_tiled) job.
    pub fn top_k_tiled(
        &self,
        query: &Trajectory,
        candidates: &[Trajectory],
        k: usize,
        cfg: &JobConfig,
        tiling: &TileConfig,
    ) -> Result<(Vec<(usize, f64)>, JobReport), JobError> {
        let (mut rows, report) =
            self.top_k_matrix_tiled(std::slice::from_ref(query), candidates, k, cfg, tiling)?;
        Ok((rows.pop().unwrap_or_default(), report))
    }

    /// The engine both public entry points share. `sink` receives
    /// every non-skipped cell exactly once, in ascending linear-index
    /// order; cells the run never reached are simply not emitted (the
    /// matrix sink pre-fills `Skipped`).
    fn tiled_engine(
        &self,
        queries: &[Trajectory],
        candidates: &[Trajectory],
        cfg: &JobConfig,
        tiling: &TileConfig,
        sink: &mut dyn FnMut(usize, PairOutcome),
    ) -> Result<JobReport, JobError> {
        let started = Instant::now();
        let _job_span = trace::span("job.tiled");
        let metrics_base = cfg.telemetry.then(|| sts_obs::metrics::global().snapshot());

        if tiling.tile_pairs == 0 {
            return Err(JobError::InvalidTiling(
                "tile_pairs must be ≥ 1 (a zero-pair tile would never progress)".into(),
            ));
        }
        if cfg.checkpoint.is_some() {
            return Err(JobError::InvalidTiling(
                "JobConfig::checkpoint cannot be combined with tiling — completed tiles are \
                 the checkpoint"
                    .into(),
            ));
        }

        let space = PairSpace::new(queries.len(), candidates.len());
        let mut batch = BatchReport::default();

        // A job with no budget returns before preparing anything, like
        // the supervised engine: "0-pair budget" means *immediately*.
        if let Some(reason) = check_start(cfg) {
            let mut stats = zeroed_stats(JobState::from_run(Some(reason), false), space.len());
            stats.elapsed = started.elapsed();
            stats.pairs_skipped = space.len();
            stats.tiles = Some(TileStats::default());
            return Ok(JobReport {
                batch,
                stats,
                telemetry: job_telemetry(metrics_base.as_ref()),
            });
        }

        let (prepared_q, prepared_c) = {
            let _span = trace::span("job.prepare");
            (
                prepare_all(self, queries, &mut batch.quarantined_queries),
                prepare_all(self, candidates, &mut batch.quarantined_candidates),
            )
        };

        // Resolve subprocess execution up front so a missing worker
        // fails fast, before any tile I/O.
        let sub: Option<SubExec<'_>> = match &cfg.exec {
            ExecMode::InProcess => None,
            ExecMode::Sharded(sopts) => {
                // Fail fast like Subprocess: the measure must be
                // wire-describable, and the process launcher needs an
                // actual worker binary. (Custom launchers bring their
                // own workers.)
                self.measure_spec().ok_or(JobError::SubprocessUnsupported)?;
                if sopts.launcher.is_none() {
                    let program = sopts
                        .worker
                        .clone()
                        .unwrap_or_else(worker::default_worker_path);
                    if !program.is_file() {
                        return Err(JobError::WorkerMissing { path: program });
                    }
                }
                None
            }
            ExecMode::Subprocess(opts) => {
                let spec = self.measure_spec().ok_or(JobError::SubprocessUnsupported)?;
                let program = opts
                    .worker
                    .clone()
                    .unwrap_or_else(worker::default_worker_path);
                if !program.is_file() {
                    return Err(JobError::WorkerMissing { path: program });
                }
                Some(SubExec {
                    opts,
                    program,
                    preamble: worker::encode_preamble(
                        spec,
                        self.grid(),
                        cfg,
                        &space,
                        queries,
                        candidates,
                        0,
                    ),
                })
            }
        };

        let fingerprint = job_fingerprint(self.grid(), queries, candidates);
        let (store, swept) = TileStore::open(tiling.storage.as_ref(), &tiling.dir, fingerprint)
            .map_err(JobError::TileDir)?;

        let tiles: Vec<PairChunk> = space.chunks(tiling.tile_pairs).collect();
        let mut tstats = TileStats {
            tiles_total: tiles.len(),
            stale_tmp_swept: swept.stale_tmp,
            corrupt_swept: swept.corrupt,
            ..TileStats::default()
        };

        // ---- Phase A: per tile, resume-or-compute, then spill. -----
        let cell_retries = AtomicU64::new(0);
        let mut sources: Vec<TileSource> = Vec::with_capacity(tiles.len());
        let mut stop_reason: Option<StopReason> = None;
        let mut new_pairs = 0usize; // computed this run (budget unit)
        let mut pairs_resumed = 0usize;
        let mut pool_retries = 0u64;
        let mut wait_total = Duration::ZERO;
        let mut run_total = Duration::ZERO;
        let mut resident_fallback = 0usize; // cells pinned by Memory sources
        let mut agg_iso: Option<IsolateStats> = None;
        let mut shard_stats = None;
        let mut fleet_telemetry = None;

        if let ExecMode::Sharded(sopts) = &cfg.exec {
            // ---- Phase A, sharded: resume what's on disk, deal the
            // rest to the worker fleet under leases, spill each commit
            // as it lands, and compute any leftovers locally. ----
            sources = (0..tiles.len()).map(|_| TileSource::Skipped).collect();
            let mut todo: Vec<usize> = Vec::new();
            for (idx, tile) in tiles.iter().enumerate() {
                match load_verified(&store, tile, &space, &prepared_q, &prepared_c) {
                    Loaded::Verified => {
                        tstats.max_resident_cells =
                            tstats.max_resident_cells.max(resident_fallback + tile.len);
                        tstats.tiles_resumed += 1;
                        pairs_resumed += tile.len;
                        sources[idx] = TileSource::Disk;
                    }
                    Loaded::Corrupt => {
                        store.quarantine(tile.id);
                        tstats.tiles_corrupt += 1;
                        todo.push(idx);
                    }
                    Loaded::Absent => todo.push(idx),
                }
            }
            let spec = self.measure_spec().ok_or(JobError::SubprocessUnsupported)?;
            let preamble = worker::encode_preamble(
                spec,
                self.grid(),
                cfg,
                &space,
                queries,
                candidates,
                sopts.hb_every,
            );
            let run = crate::shard::run_sharded(
                &tiles,
                &todo,
                &preamble,
                sopts,
                &cfg.cancel,
                cfg.budget,
                &mut |idx, outs| {
                    let tile = &tiles[idx];
                    tstats.max_resident_cells =
                        tstats.max_resident_cells.max(resident_fallback + tile.len);
                    tstats.tiles_computed += 1;
                    new_pairs += outs.iter().filter(|o| is_terminal(o)).count();
                    sources[idx] =
                        spill_tile(&store, tile, outs, &mut tstats, &mut resident_fallback);
                },
            );
            let mut sstats = run.stats;
            stop_reason = run.stop;
            fleet_telemetry = Some(run.telemetry);
            // Whatever the fleet could not finish — it was exhausted,
            // rejected the handshake, or the run stopped — degrades to
            // the in-process engine. A dead fleet never loses a job.
            for idx in run.leftover {
                let tile = &tiles[idx];
                if stop_reason.is_none() {
                    stop_reason = stop_check(cfg, new_pairs);
                }
                if stop_reason.is_some() {
                    continue; // stays Skipped
                }
                tstats.max_resident_cells =
                    tstats.max_resident_cells.max(resident_fallback + tile.len);
                let remaining = Budget {
                    deadline: cfg.budget.deadline,
                    max_pairs: cfg.budget.max_pairs.map(|m| m.saturating_sub(new_pairs)),
                };
                let tr = self.compute_tile(
                    tile,
                    &space,
                    &prepared_q,
                    &prepared_c,
                    cfg,
                    None,
                    remaining,
                    &cell_retries,
                    &mut agg_iso,
                );
                tstats.tiles_computed += 1;
                sstats.tiles_local_fallback += 1;
                sts_obs::static_counter!("shard.tiles.local_fallback").incr();
                trace::event("shard.tile.fallback", tile.id as f64);
                new_pairs += tr.outs.iter().filter(|o| is_terminal(o)).count();
                pool_retries += tr.pool_retries;
                wait_total += tr.wait;
                run_total += tr.run;
                if tr.stop.is_some() {
                    stop_reason = tr.stop;
                    resident_fallback += tile.len;
                    sources[idx] = TileSource::Memory(tr.outs);
                    continue;
                }
                sources[idx] =
                    spill_tile(&store, tile, tr.outs, &mut tstats, &mut resident_fallback);
            }
            shard_stats = Some(sstats);
        } else {
            for tile in &tiles {
                let _span = trace::span("job.tiled.tile");
                // Resume first, stopped or not: a verified tile on disk is
                // free progress, exactly like checkpointed cells in the
                // supervised engine.
                match load_verified(&store, tile, &space, &prepared_q, &prepared_c) {
                    Loaded::Verified => {
                        tstats.max_resident_cells =
                            tstats.max_resident_cells.max(resident_fallback + tile.len);
                        tstats.tiles_resumed += 1;
                        pairs_resumed += tile.len;
                        sources.push(TileSource::Disk);
                        continue;
                    }
                    Loaded::Corrupt => {
                        store.quarantine(tile.id);
                        tstats.tiles_corrupt += 1;
                    }
                    Loaded::Absent => {}
                }

                if stop_reason.is_none() {
                    stop_reason = stop_check(cfg, new_pairs);
                }
                if stop_reason.is_some() {
                    sources.push(TileSource::Skipped);
                    continue;
                }

                // Compute the tile on the configured engine with whatever
                // budget is left globally (the deadline is absolute, so it
                // carries over unchanged).
                tstats.max_resident_cells =
                    tstats.max_resident_cells.max(resident_fallback + tile.len);
                let remaining = Budget {
                    deadline: cfg.budget.deadline,
                    max_pairs: cfg.budget.max_pairs.map(|m| m.saturating_sub(new_pairs)),
                };
                let tr = self.compute_tile(
                    tile,
                    &space,
                    &prepared_q,
                    &prepared_c,
                    cfg,
                    sub.as_ref(),
                    remaining,
                    &cell_retries,
                    &mut agg_iso,
                );
                tstats.tiles_computed += 1;
                new_pairs += tr.outs.iter().filter(|o| is_terminal(o)).count();
                pool_retries += tr.pool_retries;
                wait_total += tr.wait;
                run_total += tr.run;

                if tr.stop.is_some() {
                    // Partial tiles are never spilled: a tile file always
                    // represents a *complete* slab.
                    stop_reason = tr.stop;
                    resident_fallback += tile.len;
                    sources.push(TileSource::Memory(tr.outs));
                    continue;
                }

                sources.push(spill_tile(
                    &store,
                    tile,
                    tr.outs,
                    &mut tstats,
                    &mut resident_fallback,
                ));
            }
        } // end in-process / subprocess phase A

        // ---- Phase B: stream-merge tiles into the sink. ------------
        let merge_span = trace::span("job.tiled.merge");
        let mut pairs_skipped = 0usize;
        let mut pairs_failed = 0usize;
        let mut emit = |lin: usize, outcome: PairOutcome, batch: &mut BatchReport| {
            match &outcome {
                PairOutcome::Skipped => pairs_skipped += 1,
                PairOutcome::Panicked => {
                    pairs_failed += 1;
                    batch.panicked_pairs.push(space.pair(lin));
                }
                PairOutcome::Failed { .. } => {
                    pairs_failed += 1;
                    batch.failed_pairs.push(space.pair(lin));
                }
                PairOutcome::Poisoned { exit } => {
                    pairs_failed += 1;
                    let (i, j) = space.pair(lin);
                    batch.poisoned_pairs.push((i, j, *exit));
                }
                PairOutcome::Score(_) | PairOutcome::Quarantined => {}
            }
            if !matches!(outcome, PairOutcome::Skipped) {
                sink(lin, outcome);
            }
        };

        let mut chunks_completed = 0usize;
        for (tile, source) in tiles.iter().zip(sources) {
            match source {
                TileSource::Skipped => {
                    for lin in tile.range() {
                        emit(lin, PairOutcome::Skipped, &mut batch);
                    }
                }
                TileSource::Memory(outs) => {
                    if outs.iter().all(is_terminal) {
                        chunks_completed += 1;
                    }
                    for (off, outcome) in outs.into_iter().enumerate() {
                        emit(tile.start + off, outcome, &mut batch);
                    }
                    resident_fallback = resident_fallback.saturating_sub(tile.len);
                }
                TileSource::Disk => {
                    tstats.max_resident_cells =
                        tstats.max_resident_cells.max(resident_fallback + tile.len);
                    match store.load(tile.id, tile.start, tile.len) {
                        Ok(Some(mut data)) => {
                            chunks_completed += 1;
                            data.cells.sort_unstable_by_key(|(lin, _)| *lin);
                            let mut recs = data.cells.into_iter().peekable();
                            for lin in tile.range() {
                                let outcome = match recs.peek() {
                                    Some((l, _)) if *l == lin => {
                                        from_record(recs.next().expect("peeked").1)
                                    }
                                    _ => PairOutcome::Quarantined,
                                };
                                emit(lin, outcome, &mut batch);
                            }
                        }
                        // Verified minutes ago and unreadable now —
                        // disk decay mid-job. Detect, quarantine,
                        // recompute inline: a corrupt tile is never
                        // read back and never fabricated.
                        Ok(None) | Err(_) => {
                            store.quarantine(tile.id);
                            tstats.tiles_corrupt += 1;
                            if stop_reason.is_none() {
                                stop_reason = stop_check(cfg, new_pairs);
                            }
                            if stop_reason.is_some() {
                                for lin in tile.range() {
                                    emit(lin, PairOutcome::Skipped, &mut batch);
                                }
                                continue;
                            }
                            let remaining = Budget {
                                deadline: cfg.budget.deadline,
                                max_pairs: cfg
                                    .budget
                                    .max_pairs
                                    .map(|m| m.saturating_sub(new_pairs)),
                            };
                            let tr = self.compute_tile(
                                tile,
                                &space,
                                &prepared_q,
                                &prepared_c,
                                cfg,
                                sub.as_ref(),
                                remaining,
                                &cell_retries,
                                &mut agg_iso,
                            );
                            tstats.tiles_computed += 1;
                            new_pairs += tr.outs.iter().filter(|o| is_terminal(o)).count();
                            pool_retries += tr.pool_retries;
                            stop_reason = tr.stop;
                            if tr.outs.iter().all(is_terminal) {
                                chunks_completed += 1;
                            }
                            for (off, outcome) in tr.outs.into_iter().enumerate() {
                                emit(tile.start + off, outcome, &mut batch);
                            }
                        }
                    }
                }
            }
        }
        drop(merge_span);

        // Tiles are resume state: only a run that resolved every pair
        // may clean up (quarantined `.corrupt` files are kept either
        // way — they are the post-mortem evidence).
        if stop_reason.is_none() && !tiling.keep_tiles {
            let _ = store.remove_all_tiles();
        }

        tstats.peak_rss_bytes = sts_obs::record_peak_rss();

        let any_failed = pairs_failed > 0;
        let mut stats = zeroed_stats(JobState::from_run(stop_reason, any_failed), space.len());
        stats.elapsed = started.elapsed();
        stats.pairs_completed = space.len() - pairs_skipped;
        stats.pairs_failed = pairs_failed;
        stats.pairs_skipped = pairs_skipped;
        stats.pairs_resumed = pairs_resumed;
        stats.chunks_total = tiles.len();
        stats.chunks_completed = chunks_completed;
        stats.chunks_skipped = tiles.len() - chunks_completed;
        stats.chunk_wait_total = wait_total;
        stats.chunk_run_total = run_total;
        stats.retries = pool_retries + cell_retries.into_inner();
        stats.isolate = agg_iso;
        stats.tiles = Some(tstats);
        stats.shard = shard_stats;

        let mut telemetry = job_telemetry(metrics_base.as_ref());
        if let (Some(t), Some(fleet)) = (telemetry.as_mut(), fleet_telemetry.as_ref()) {
            // Fold the workers' shipped deltas into the coordinator's
            // own registry delta: unlabeled fleet sums (so
            // `core.pairs.scored` counts work performed anywhere in the
            // fleet) plus per-worker labeled attribution. The
            // coordinator's own `shard.pairs.committed` counter already
            // covers every commit, so the fleet copy is dropped rather
            // than double-counted.
            let mut merged = fleet.merged.clone();
            merged
                .counters
                .retain(|(n, _)| n != "shard.pairs.committed");
            t.metrics.merge(&merged.without_zeros());
            t.metrics.merge(&fleet.labeled.clone().without_zeros());
        }

        Ok(JobReport {
            batch,
            stats,
            telemetry,
        })
    }

    /// Computes one tile's slab on the configured engine. Returns
    /// dense outcomes (`Skipped` where the engine stopped first).
    #[allow(clippy::too_many_arguments)]
    fn compute_tile(
        &self,
        tile: &PairChunk,
        space: &PairSpace,
        prepared_q: &[Option<PreparedTrajectory>],
        prepared_c: &[Option<PreparedTrajectory>],
        cfg: &JobConfig,
        sub: Option<&SubExec<'_>>,
        remaining: Budget,
        cell_retries: &AtomicU64,
        agg_iso: &mut Option<IsolateStats>,
    ) -> TileRun {
        let sub_chunks = chunk_tile(tile, cfg.chunk_pairs);
        let mut outs = vec![PairOutcome::Skipped; tile.len];

        if let Some(sub) = sub {
            let iso = IsolateConfig {
                worker: WorkerSpec {
                    program: sub.program.clone(),
                    args: vec!["serve".to_string()],
                    envs: Vec::new(),
                },
                workers: cfg.threads,
                hard_timeout: sub.opts.hard_timeout,
                ready_timeout: sub.opts.ready_timeout,
                restart_budget: sub.opts.restart_budget,
                poison_attempts: sub.opts.poison_attempts,
                budget: remaining,
                cancel: cfg.cancel.clone(),
                ..IsolateConfig::default()
            };
            let run =
                sts_isolate::supervise(&sub_chunks, &iso, &sub.preamble, |_chunk, payload| {
                    let Some(parsed) = worker::decode_result_payload(payload) else {
                        return;
                    };
                    for (lin, outcome) in parsed {
                        if lin >= tile.start && lin < tile.start + tile.len {
                            outs[lin - tile.start] = outcome;
                        }
                    }
                });
            for p in &run.poisoned {
                if p.lin >= tile.start && p.lin < tile.start + tile.len {
                    outs[p.lin - tile.start] = PairOutcome::Poisoned { exit: p.exit };
                }
            }
            let iso_stats = agg_iso.get_or_insert_with(IsolateStats::default);
            iso_stats.workers_spawned += run.workers_spawned;
            iso_stats.worker_restarts += run.worker_restarts;
            iso_stats.worker_kills += run.worker_kills;
            iso_stats.protocol_errors += run.protocol_errors;
            iso_stats.pairs_poisoned += run.poisoned.len();
            iso_stats.max_bisect_depth = iso_stats.max_bisect_depth.max(run.max_bisect_depth);
            return TileRun {
                outs,
                stop: run.stop,
                pool_retries: 0,
                wait: Duration::ZERO,
                run: run.elapsed,
            };
        }

        let work =
            |scratch: &mut crate::StpScratch, chunk: &PairChunk| -> Vec<(usize, PairOutcome)> {
                let mut v = Vec::with_capacity(chunk.len);
                for lin in chunk.range() {
                    let (i, j) = space.pair(lin);
                    v.push((
                        lin,
                        self.score_cell_retrying(
                            prepared_q[i].as_ref(),
                            prepared_c[j].as_ref(),
                            cfg,
                            lin,
                            cell_retries,
                            scratch,
                        ),
                    ));
                }
                v
            };
        let pool_cfg = PoolConfig {
            threads: cfg.threads,
            retry: cfg.retry,
            soft_timeout: cfg.soft_timeout,
            budget: remaining,
            cancel: cfg.cancel.clone(),
        };
        let run = run_supervised_with(
            &sub_chunks,
            &pool_cfg,
            |_slot| crate::StpScratch::new(),
            work,
            |_chunk, computed| {
                for (lin, outcome) in computed {
                    outs[lin - tile.start] = outcome;
                }
            },
        );
        // Pool-level backstop, identical to the supervised engine:
        // cells of a terminally failed chunk become Failed (or
        // Panicked under the legacy no-retry contract).
        for (idx, status) in run.statuses.iter().enumerate() {
            if let ChunkStatus::Failed { attempts } = status {
                for lin in sub_chunks[idx].range() {
                    if !is_terminal(&outs[lin - tile.start]) {
                        outs[lin - tile.start] = if cfg.retry.max_retries == 0 {
                            PairOutcome::Panicked
                        } else {
                            PairOutcome::Failed {
                                attempts: *attempts,
                            }
                        };
                    }
                }
            }
        }
        TileRun {
            outs,
            stop: run.stop,
            pool_retries: run.retries,
            wait: run.chunk_wait,
            run: run.chunk_run,
        }
    }
}

/// What probing the store for an existing tile concluded.
enum Loaded {
    /// Present, verified, and consistent with this job's preparation.
    Verified,
    /// Present but failed verification (or inconsistent coverage) —
    /// the caller must quarantine and recompute.
    Corrupt,
    /// Not spilled yet (or unreadable: treated as absent and
    /// recomputed).
    Absent,
}

/// Probes the store for tile `tile.id` and cross-checks its record
/// coverage against preparation: every pair in the slab must have a
/// record XOR be quarantined (fingerprint-matched inputs prepare
/// deterministically, so any disagreement means the file does not
/// describe this job and is treated as corrupt).
fn load_verified(
    store: &TileStore<'_>,
    tile: &PairChunk,
    space: &PairSpace,
    prepared_q: &[Option<PreparedTrajectory>],
    prepared_c: &[Option<PreparedTrajectory>],
) -> Loaded {
    let mut data = match store.load(tile.id, tile.start, tile.len) {
        Ok(Some(data)) => data,
        Ok(None) | Err(TileError::Io(_)) => return Loaded::Absent,
        Err(TileError::Corrupt { .. }) => return Loaded::Corrupt,
    };
    data.cells.sort_unstable_by_key(|(lin, _)| *lin);
    let mut recs = data.cells.iter().peekable();
    for lin in tile.range() {
        let has_record = matches!(recs.peek(), Some((l, _)) if *l == lin);
        if has_record {
            recs.next();
        }
        let (i, j) = space.pair(lin);
        let quarantined = prepared_q[i].is_none() || prepared_c[j].is_none();
        if has_record == quarantined {
            return Loaded::Corrupt;
        }
    }
    Loaded::Verified
}

/// Spills a completed tile and read-back-verifies it before letting
/// go of the in-memory copy. Any failure — write error (ENOSPC, a
/// crash-shaped storage fault) or a read-back that does not verify
/// bit-for-bit — degrades to serving the tile from memory.
fn spill_tile(
    store: &TileStore<'_>,
    tile: &PairChunk,
    outs: Vec<PairOutcome>,
    tstats: &mut TileStats,
    resident_fallback: &mut usize,
) -> TileSource {
    let data = TileData {
        id: tile.id,
        start: tile.start,
        len: tile.len,
        cells: outs
            .iter()
            .enumerate()
            .filter_map(|(off, o)| to_record(o).map(|rec| (tile.start + off, rec)))
            .collect(),
    };
    let durable = match store.save(&data) {
        Err(_) => false,
        Ok(()) => match store.load(tile.id, tile.start, tile.len) {
            Ok(Some(back)) if back == data => true,
            Ok(_) | Err(TileError::Io(_)) => false,
            Err(TileError::Corrupt { .. }) => {
                store.quarantine(tile.id);
                tstats.tiles_corrupt += 1;
                false
            }
        },
    };
    if durable {
        tstats.tiles_spilled += 1;
        TileSource::Disk
    } else {
        tstats.spill_errors += 1;
        *resident_fallback += tile.len;
        TileSource::Memory(outs)
    }
}

/// Deals one tile's slab into scheduling chunks of `chunk_pairs`
/// (clamped to ≥ 1), with linear indices absolute in the full pair
/// space — a subprocess worker scores whatever slab it is sent, so
/// the chunks must speak the global coordinate system.
fn chunk_tile(tile: &PairChunk, chunk_pairs: usize) -> Vec<PairChunk> {
    let size = chunk_pairs.max(1);
    let n = tile.len.div_ceil(size);
    (0..n)
        .map(|k| PairChunk {
            id: k,
            start: tile.start + k * size,
            len: size.min(tile.len - k * size),
        })
        .collect()
}

/// Cancellation and global-budget check between tiles, mirroring the
/// supervised engine's per-chunk stop checks.
fn stop_check(cfg: &JobConfig, new_pairs: usize) -> Option<StopReason> {
    if cfg.cancel.is_cancelled() {
        return Some(StopReason::Cancelled);
    }
    cfg.budget.check(new_pairs)
}

/// A [`JobStats`] with every counter at zero — the tiled engine fills
/// in what it tracked (`JobStats` carries no `Default`: a job state
/// has no meaningful default).
fn zeroed_stats(state: JobState, pairs_total: usize) -> JobStats {
    JobStats {
        state,
        elapsed: Duration::ZERO,
        pairs_total,
        pairs_completed: 0,
        pairs_failed: 0,
        pairs_skipped: 0,
        pairs_resumed: 0,
        chunks_total: 0,
        chunks_completed: 0,
        chunks_failed: 0,
        chunks_skipped: 0,
        retries: 0,
        slow_chunks: Vec::new(),
        checkpoint_flushes: 0,
        checkpoint_write_errors: 0,
        chunk_wait_total: Duration::ZERO,
        chunk_run_total: Duration::ZERO,
        isolate: None,
        tiles: None,
        shard: None,
    }
}
