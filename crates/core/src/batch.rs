//! Degraded-mode batch similarity: per-cell outcomes instead of
//! whole-batch errors.
//!
//! [`Sts::similarity_matrix`] is all-or-nothing: one unpreparable
//! trajectory fails the entire batch, and a panic anywhere in the
//! pipeline kills a whole stripe of scoped worker threads. That is the
//! wrong failure mode for a service ingesting real-world feeds, where a
//! batch of thousands of trajectories routinely contains a few broken
//! ones. The degraded APIs here:
//!
//! * **quarantine** unpreparable trajectories up front — every pair
//!   touching one gets [`PairOutcome::Quarantined`], every other pair is
//!   still scored;
//! * **isolate panics** — each pair's similarity runs under
//!   [`std::panic::catch_unwind`], so one poisoned pair yields
//!   [`PairOutcome::Panicked`] for that cell only, never a dead thread
//!   or a propagated abort;
//! * **report** everything in a [`BatchReport`] naming each quarantined
//!   index (with its reason) and each panicked pair.
//!
//! The degraded guarantee: for any input accepted by the type system,
//! these APIs return — no panic, no `Err`, no partial loss of the good
//! pairs.
//!
//! Caching: every [`PreparedTrajectory`] produced by [`prepare_all`]
//! carries its own STP cache (see [`crate::StpCacheMode`]), so within
//! one batch call a trajectory's distributions are evaluated once and
//! shared by every pair — across the diagonal, across mirror cells,
//! and across worker threads. The cache lives exactly as long as the
//! prepared set: separate calls never share cached state. Worker
//! threads score through a per-worker [`crate::StpScratch`] arena
//! (threaded by the pool's `run_supervised_with`), so the hot path
//! allocates nothing per pair.

use crate::sts::{PreparedTrajectory, Sts};
use crate::StsError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use sts_runtime::WorkerExit;
use sts_traj::Trajectory;

/// The outcome of scoring one (query, candidate) cell.
#[derive(Debug, Clone, PartialEq)]
pub enum PairOutcome {
    /// The pair was scored. The value is passed through as computed;
    /// use [`PairOutcome::score_or`] to fold non-finite values away.
    Score(f64),
    /// The query or the candidate was quarantined during preparation;
    /// the pair was never attempted.
    Quarantined,
    /// Scoring this pair panicked; the panic was contained to the cell.
    /// Produced when retries are disabled (the legacy degraded-mode
    /// contract, [`sts_runtime::RetryPolicy::none`]).
    Panicked,
    /// Scoring this pair panicked on every attempt of a supervised
    /// job's retry loop (`attempts` made, with backoff between them).
    Failed {
        /// Total attempts consumed before giving up.
        attempts: u32,
    },
    /// The pair was never attempted: the supervised job stopped first
    /// (deadline, pair budget or cancellation). A resumed job will
    /// compute it.
    Skipped,
    /// Scoring this pair killed its worker subprocess (abort, OOM
    /// kill, hard-timeout kill, garbage output); crash attribution
    /// isolated the pair and quarantined it with the worker's exit.
    /// Only produced by [`crate::job::ExecMode::Subprocess`] jobs —
    /// in-process execution does not survive these faults at all.
    Poisoned {
        /// How the worker holding the isolated pair died.
        exit: WorkerExit,
    },
}

impl PairOutcome {
    /// The score, if the pair produced one.
    pub fn score(&self) -> Option<f64> {
        match self {
            PairOutcome::Score(s) => Some(*s),
            _ => None,
        }
    }

    /// The score, with quarantined/panicked/non-finite cells folded to
    /// `default` — the "an unmeasurable pair is maximally dissimilar"
    /// convention of the matching harness.
    pub fn score_or(&self, default: f64) -> f64 {
        match self {
            PairOutcome::Score(s) if s.is_finite() => *s,
            _ => default,
        }
    }
}

/// Why a trajectory was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineReason {
    /// Preparation returned a typed error.
    Unpreparable(StsError),
    /// Preparation itself panicked (contained).
    PreparePanicked,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::Unpreparable(e) => write!(f, "unpreparable: {e}"),
            QuarantineReason::PreparePanicked => write!(f, "preparation panicked"),
        }
    }
}

/// Everything a degraded batch call quarantined or contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Quarantined query indices with their reasons.
    pub quarantined_queries: Vec<(usize, QuarantineReason)>,
    /// Quarantined candidate indices with their reasons.
    pub quarantined_candidates: Vec<(usize, QuarantineReason)>,
    /// `(query index, candidate index)` pairs whose scoring panicked
    /// with retries disabled.
    pub panicked_pairs: Vec<(usize, usize)>,
    /// `(query index, candidate index)` pairs whose scoring panicked
    /// through every retry of a supervised job.
    pub failed_pairs: Vec<(usize, usize)>,
    /// `(query index, candidate index, worker exit)` pairs whose
    /// scoring killed a worker subprocess; crash attribution isolated
    /// and quarantined them (see [`crate::job::ExecMode::Subprocess`]).
    pub poisoned_pairs: Vec<(usize, usize, WorkerExit)>,
}

impl BatchReport {
    /// Total quarantined trajectories (queries + candidates).
    pub fn quarantine_count(&self) -> usize {
        self.quarantined_queries.len() + self.quarantined_candidates.len()
    }

    /// Number of pairs whose scoring panicked.
    pub fn panic_count(&self) -> usize {
        self.panicked_pairs.len()
    }

    /// Number of pairs that failed through every retry.
    pub fn failed_count(&self) -> usize {
        self.failed_pairs.len()
    }

    /// Number of pairs quarantined by crash attribution.
    pub fn poisoned_count(&self) -> usize {
        self.poisoned_pairs.len()
    }

    /// `true` when nothing was quarantined and nothing panicked,
    /// failed or poisoned — the batch degraded not at all. (Pairs
    /// *skipped* by a deadline or cancellation are a lifecycle
    /// property, reported in the job stats, not a data-quality defect.)
    pub fn is_clean(&self) -> bool {
        self.quarantine_count() == 0
            && self.panic_count() == 0
            && self.failed_count() == 0
            && self.poisoned_count() == 0
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} quarantined ({} queries, {} candidates), {} panicked pair(s), \
             {} failed pair(s), {} poisoned pair(s)",
            self.quarantine_count(),
            self.quarantined_queries.len(),
            self.quarantined_candidates.len(),
            self.panic_count(),
            self.failed_count(),
            self.poisoned_count(),
        )
    }
}

/// Prepares every trajectory, quarantining failures (typed errors and
/// contained panics alike) into `out`. Shared with the supervised job
/// path in [`crate::job`].
pub(crate) fn prepare_all(
    sts: &Sts,
    trajectories: &[Trajectory],
    out: &mut Vec<(usize, QuarantineReason)>,
) -> Vec<Option<PreparedTrajectory>> {
    trajectories
        .iter()
        .enumerate()
        .map(
            |(i, t)| match catch_unwind(AssertUnwindSafe(|| sts.prepare(t))) {
                Ok(Ok(p)) => Some(p),
                Ok(Err(e)) => {
                    sts_obs::static_counter!("core.trajectories.quarantined").incr();
                    out.push((i, QuarantineReason::Unpreparable(e)));
                    None
                }
                Err(_) => {
                    sts_obs::static_counter!("core.trajectories.quarantined").incr();
                    out.push((i, QuarantineReason::PreparePanicked));
                    None
                }
            },
        )
        .collect()
}

impl Sts {
    /// The degraded-mode `queries × candidates` similarity matrix.
    ///
    /// Unlike [`Sts::similarity_matrix`], this never fails: trajectories
    /// that cannot be prepared are quarantined (their rows/columns get
    /// [`PairOutcome::Quarantined`]) while every remaining pair is still
    /// scored, and a panic while scoring one pair is contained to that
    /// cell as [`PairOutcome::Panicked`]. The [`BatchReport`] names
    /// every quarantined index and panicked pair.
    pub fn similarity_matrix_degraded(
        &self,
        queries: &[Trajectory],
        candidates: &[Trajectory],
    ) -> (Vec<Vec<PairOutcome>>, BatchReport) {
        // The degraded API is the supervised job under the legacy
        // contract: unlimited budget, no retries (a panicked cell is
        // terminal and reported as `Panicked`), no checkpoint. With no
        // checkpoint configured the supervised path cannot fail.
        let (matrix, report) = self
            .similarity_matrix_supervised(
                queries,
                candidates,
                &crate::job::JobConfig::legacy_degraded(),
            )
            .expect("supervised job without checkpoint is infallible");
        (matrix, report.batch)
    }

    /// Degraded-mode top-k: ranks every scorable candidate, quarantining
    /// the rest. A quarantined *query* yields an empty ranking (the
    /// report says why). Quarantined and panicked candidates are
    /// excluded from the ranking rather than scored 0, so the caller can
    /// distinguish "dissimilar" from "unmeasurable".
    pub fn top_k_degraded(
        &self,
        query: &Trajectory,
        candidates: &[Trajectory],
        k: usize,
    ) -> (Vec<(usize, f64)>, BatchReport) {
        let (top, report) = self
            .top_k_supervised(
                query,
                candidates,
                k,
                &crate::job::JobConfig::legacy_degraded(),
            )
            .expect("supervised job without checkpoint is infallible");
        (top, report.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionModel;
    use crate::StsConfig;
    use sts_geo::{BoundingBox, Grid, Point};

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(200.0, 50.0)),
            5.0,
        )
        .unwrap()
    }

    fn walker(y: f64, phase: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = phase + 10.0 * i as f64;
                    sts_traj::TrajPoint::from_xy(2.0 * t, y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    fn single_point() -> Trajectory {
        Trajectory::from_xyt(&[(10.0, 25.0, 0.0)]).unwrap()
    }

    #[test]
    fn clean_batch_matches_strict_matrix() {
        let sts = Sts::new(StsConfig::default(), grid());
        let queries = vec![walker(25.0, 0.0, 6), walker(5.0, 0.0, 6)];
        let candidates = vec![walker(25.0, 5.0, 6), walker(5.0, 5.0, 6)];
        let strict = sts.similarity_matrix(&queries, &candidates).unwrap();
        let (degraded, report) = sts.similarity_matrix_degraded(&queries, &candidates);
        assert!(report.is_clean(), "{report}");
        for (i, row) in strict.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                assert_eq!(degraded[i][j], PairOutcome::Score(s), "({i},{j})");
            }
        }
    }

    #[test]
    fn bad_trajectories_are_quarantined_good_pairs_still_scored() {
        let sts = Sts::new(StsConfig::default(), grid());
        let queries = vec![walker(25.0, 0.0, 6), single_point(), walker(5.0, 0.0, 6)];
        let candidates = vec![single_point(), walker(25.0, 5.0, 6)];
        let (m, report) = sts.similarity_matrix_degraded(&queries, &candidates);

        // The report names exactly the bad indices.
        assert_eq!(report.quarantined_queries.len(), 1);
        assert_eq!(report.quarantined_queries[0].0, 1);
        assert!(matches!(
            report.quarantined_queries[0].1,
            QuarantineReason::Unpreparable(StsError::TrajectoryTooShort { len: 1 })
        ));
        assert_eq!(report.quarantined_candidates.len(), 1);
        assert_eq!(report.quarantined_candidates[0].0, 0);
        assert_eq!(report.panic_count(), 0);

        // Every good pair scored; every touched-by-bad cell quarantined.
        for (i, row) in m.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                if i == 1 || j == 0 {
                    assert_eq!(*cell, PairOutcome::Quarantined, "({i},{j})");
                } else {
                    assert!(cell.score().is_some(), "({i},{j}): {cell:?}");
                }
            }
        }
        // The matched pair outranks the mismatched one.
        assert!(m[0][1].score_or(0.0) > m[2][1].score_or(0.0));
    }

    /// A transition model that panics whenever it is actually evaluated
    /// — scoring any bridging pair through it dies mid-similarity.
    struct PoisonTransition;
    impl TransitionModel for PoisonTransition {
        fn probability(&self, _: Point, _: Point, _: f64) -> f64 {
            panic!("poisoned transition");
        }
        fn max_displacement(&self, _: f64) -> f64 {
            panic!("poisoned transition");
        }
    }

    /// Runs `f` with panic output silenced (the poison tests panic on
    /// purpose; their backtraces would drown the test output).
    fn quietly<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn scoring_panic_is_contained_to_the_cell() {
        let sts = Sts::with_shared_transition(
            StsConfig::default(),
            grid(),
            std::sync::Arc::new(PoisonTransition),
        );
        // Phase-shifted walkers force bridge evaluations → the poison
        // transition panics for every pair.
        let queries = vec![walker(25.0, 0.0, 4), walker(5.0, 0.0, 4)];
        let candidates = vec![walker(25.0, 5.0, 4)];
        let (m, report) = quietly(|| sts.similarity_matrix_degraded(&queries, &candidates));
        assert_eq!(report.panic_count(), 2, "{report}");
        assert_eq!(report.quarantine_count(), 0);
        assert_eq!(m[0][0], PairOutcome::Panicked);
        assert_eq!(m[1][0], PairOutcome::Panicked);
        assert_eq!(report.panicked_pairs, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn top_k_degraded_ranks_good_candidates_and_reports_bad() {
        let sts = Sts::new(StsConfig::default(), grid());
        let q = walker(25.0, 0.0, 6);
        let candidates = vec![
            walker(45.0, 5.0, 6),
            single_point(),
            walker(25.0, 5.0, 6),
            walker(5.0, 5.0, 6),
        ];
        let (top, report) = sts.top_k_degraded(&q, &candidates, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2, "co-located walker ranks first");
        assert!(top[0].1 >= top[1].1);
        assert!(!top.iter().any(|&(j, _)| j == 1), "bad candidate excluded");
        assert_eq!(report.quarantined_candidates.len(), 1);
        assert_eq!(report.quarantined_candidates[0].0, 1);
    }

    #[test]
    fn top_k_degraded_with_bad_query_is_empty_not_an_error() {
        let sts = Sts::new(StsConfig::default(), grid());
        let candidates = vec![walker(25.0, 5.0, 6)];
        let (top, report) = sts.top_k_degraded(&single_point(), &candidates, 3);
        assert!(top.is_empty());
        assert_eq!(report.quarantined_queries.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn batch_report_display_is_informative() {
        let sts = Sts::new(StsConfig::default(), grid());
        let (_, report) =
            sts.similarity_matrix_degraded(&[single_point()], &[walker(25.0, 0.0, 4)]);
        let text = report.to_string();
        assert!(text.contains("1 queries"), "{text}");
        assert!(text.contains("0 panicked"), "{text}");
    }
}
