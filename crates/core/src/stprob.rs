//! Spatial-temporal probability estimation (paper §IV-A, Eqs. 1–5).
//!
//! `STP(r, t, Tra)` is the probability that the object whose trajectory
//! is `Tra` occupies grid cell `r` at time `t`:
//!
//! * at an observed timestamp it is the (normalized) location-noise
//!   distribution of that observation (Eq. 3);
//! * strictly between two observations `(ℓᵢ, tᵢ)` and `(ℓᵢ₊₁, tᵢ₊₁)` it
//!   is the Markov bridge of Eq. 4 — the product of the probability of
//!   reaching `r` from the noisy previous observation and the probability
//!   of reaching the noisy next observation from `r`, summed over the
//!   noise distributions;
//! * outside `[t₁, tₙ]` it is zero.
//!
//! Following Algorithm 1, the denominator of Eq. 4 is never computed: it
//! is constant over `r` at a fixed `t` and drops out in the per-timestamp
//! normalization.
//!
//! The estimator truncates the candidate-cell set using the noise model's
//! truncation radius and the transition model's maximum plausible
//! displacement; `stp_dense` evaluates every cell for validation.

use crate::dist::SparseDistribution;
use crate::noise::NoiseModel;
use crate::transition::TransitionModel;
use std::borrow::Cow;
use sts_geo::{CellId, Grid, Point};
use sts_traj::Trajectory;

/// Per-trajectory S-T probability estimator. Borrowing is deliberate:
/// one trajectory's estimator is used against many timestamps while
/// computing a similarity matrix.
pub struct StpEstimator<'a> {
    grid: &'a Grid,
    noise: &'a dyn NoiseModel,
    transition: &'a dyn TransitionModel,
    traj: &'a Trajectory,
    /// Normalized location-noise distribution at each observation.
    obs_dists: Cow<'a, [SparseDistribution]>,
}

impl<'a> StpEstimator<'a> {
    /// Builds the estimator, precomputing the noise distribution of every
    /// observation (they are reused across all timestamps and pairs).
    pub fn new(
        grid: &'a Grid,
        noise: &'a dyn NoiseModel,
        transition: &'a dyn TransitionModel,
        traj: &'a Trajectory,
    ) -> Self {
        let obs_dists = Self::observation_distributions(grid, noise, traj);
        StpEstimator {
            grid,
            noise,
            transition,
            traj,
            obs_dists: Cow::Owned(obs_dists),
        }
    }

    /// Builds an estimator reusing observation distributions precomputed
    /// by [`StpEstimator::observation_distributions`] — the pattern used
    /// by `Sts` when one trajectory participates in many pairs.
    ///
    /// # Panics
    /// If `obs_dists.len() != traj.len()`.
    pub fn with_observation_distributions(
        grid: &'a Grid,
        noise: &'a dyn NoiseModel,
        transition: &'a dyn TransitionModel,
        traj: &'a Trajectory,
        obs_dists: &'a [SparseDistribution],
    ) -> Self {
        assert_eq!(
            obs_dists.len(),
            traj.len(),
            "one observation distribution per trajectory point"
        );
        StpEstimator {
            grid,
            noise,
            transition,
            traj,
            obs_dists: Cow::Borrowed(obs_dists),
        }
    }

    /// The normalized location-noise distribution of every observation of
    /// `traj` — the cacheable part of the estimator.
    pub fn observation_distributions(
        grid: &Grid,
        noise: &dyn NoiseModel,
        traj: &Trajectory,
    ) -> Vec<SparseDistribution> {
        traj.points()
            .iter()
            .map(|p| noise.weights(grid, p.loc).normalize())
            .collect()
    }

    /// The trajectory the estimator describes.
    #[inline]
    pub fn trajectory(&self) -> &Trajectory {
        self.traj
    }

    /// The precomputed, normalized observation distribution at index `i`.
    #[inline]
    pub fn observation_distribution(&self, i: usize) -> &SparseDistribution {
        &self.obs_dists[i]
    }

    /// `STP(·, t, Tra)` as a normalized sparse distribution over cells
    /// (Eq. 5). Returns the empty distribution when `t` lies outside the
    /// trajectory's time span or when no cell is reachable under the
    /// models (a measure-zero bridge).
    pub fn stp(&self, t: f64) -> SparseDistribution {
        let mut scratch = StpEvalScratch::default();
        self.stp_into_impl(t, false, &mut scratch);
        scratch.out
    }

    /// Like [`StpEstimator::stp`] but evaluating **every** grid cell as a
    /// bridge candidate — the faithful `O(|R|²)` computation of §V-C,
    /// kept for validation and the dense-vs-sparse ablation.
    pub fn stp_dense(&self, t: f64) -> SparseDistribution {
        let mut scratch = StpEvalScratch::default();
        self.stp_into_impl(t, true, &mut scratch);
        scratch.out
    }

    /// Allocation-free variant of [`StpEstimator::stp`]: evaluates the
    /// distribution into `scratch`'s reusable buffers and returns a
    /// borrow of the result. Bit-identical to `stp()` — the allocating
    /// path is a thin wrapper around this one (guarded by
    /// `stp_into_matches_stp_bitwise`).
    pub fn stp_into<'s>(&self, t: f64, scratch: &'s mut StpEvalScratch) -> &'s SparseDistribution {
        self.stp_into_impl(t, false, scratch);
        &scratch.out
    }

    fn stp_into_impl(&self, t: f64, dense: bool, scratch: &mut StpEvalScratch) {
        sts_obs::static_counter!("core.stp.evals").incr();
        let StpEvalScratch {
            out,
            cand_a,
            cand_b,
            candidates,
            table1,
            table2,
        } = scratch;
        out.clear();
        // The negated comparison also routes NaN query times to the
        // empty distribution (a NaN fails every comparison), honoring
        // the `stp()` contract for any input rather than panicking in
        // the binary search below.
        if !(t >= self.traj.start_time() && t <= self.traj.end_time()) {
            return;
        }
        let Some(i) = self.traj.index_at_or_before(t) else {
            return;
        };
        if self.traj.get(i).t == t {
            out.clone_from_dist(&self.obs_dists[i]);
            return;
        }
        // Strictly between observations i and i+1.
        let prev = self.traj.get(i);
        let next = self.traj.get(i + 1);
        let dt1 = t - prev.t;
        let dt2 = next.t - t;
        let before = &self.obs_dists[i];
        let after = &self.obs_dists[i + 1];
        if dense {
            candidates.clear();
            candidates.extend(self.grid.cells());
        } else {
            self.candidate_cells_into(prev.loc, dt1, next.loc, dt2, cand_a, cand_b, candidates);
        }
        // Isotropic transition models are evaluated through a per-bridge
        // distance table: O(1) in the innermost loop instead of O(KDE
        // samples).
        let use_tables = self.transition.is_isotropic();
        if use_tables {
            let step = (self.grid.cell_size() * 0.125).max(1e-3);
            table1.fill(self.transition, dt1, self.table_extent(dt1, step), step);
            table2.fill(self.transition, dt2, self.table_extent(dt2, step), step);
        }
        let (table1, table2) = (&*table1, &*table2);
        let trans1 = |from: sts_geo::Point, to: sts_geo::Point| -> f64 {
            if use_tables {
                table1.eval(from.distance(&to))
            } else {
                self.transition.probability(from, to, dt1)
            }
        };
        let trans2 = |from: sts_geo::Point, to: sts_geo::Point| -> f64 {
            if use_tables {
                table2.eval(from.distance(&to))
            } else {
                self.transition.probability(from, to, dt2)
            }
        };
        // Candidates arrive sorted and unique (dense grid order), so
        // pushing positive weights directly yields exactly what
        // `from_weights` would: no resort, no dedup, same entry order.
        let entries = out.entries_mut();
        for &r in candidates.iter() {
            let center = self.grid.center(r);
            // Σ_j f(r_j, ℓᵢ)·P(r, t | r_j, tᵢ)
            let mut p_in = 0.0;
            for &(rj, fj) in before.entries() {
                p_in += fj * trans1(self.grid.center(rj), center);
            }
            if p_in == 0.0 {
                continue;
            }
            // Σ_k f(r_k, ℓᵢ₊₁)·P(r_k, tᵢ₊₁ | r, t)
            let mut p_out = 0.0;
            for &(rk, fk) in after.entries() {
                p_out += fk * trans2(center, self.grid.center(rk));
            }
            let w = p_in * p_out;
            if w > 0.0 {
                entries.push((r, w));
            }
        }
        out.normalize_in_place();
        sts_obs::static_counter!("core.stp.cells").add(out.entries().len() as u64);
    }

    /// Largest distance a transition table must cover: the model's own
    /// negligibility bound, capped by the grid diagonal (no two cell
    /// centers are farther apart).
    fn table_extent(&self, dt: f64, step: f64) -> f64 {
        let diag = self.grid.area().width().hypot(self.grid.area().height());
        self.transition.max_displacement(dt).min(diag) + 2.0 * step
    }

    /// Candidate bridge cells: reachable both forward from the previous
    /// noisy observation and backward from the next one. A cell-size
    /// margin absorbs center-vs-point discretization. Writes into the
    /// caller's scratch buffers (`a`, `b` for the two reachability sets,
    /// `out` for their intersection) instead of allocating.
    #[allow(clippy::too_many_arguments)]
    fn candidate_cells_into(
        &self,
        prev: Point,
        dt1: f64,
        next: Point,
        dt2: f64,
        a: &mut Vec<CellId>,
        b: &mut Vec<CellId>,
        out: &mut Vec<CellId>,
    ) {
        out.clear();
        let slack = self.noise.truncation_radius() + self.grid.cell_size();
        let r1 = self.transition.max_displacement(dt1) + slack;
        let r2 = self.transition.max_displacement(dt2) + slack;
        if !r1.is_finite() || !r2.is_finite() {
            out.extend(self.grid.cells());
            return;
        }
        self.grid.cells_within_into(prev, r1, a);
        self.grid.cells_within_into(next, r2, b);
        // Both lists are in dense (sorted) order: linear intersection.
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Reusable buffers for [`StpEstimator::stp_into`]: the output
/// distribution plus every intermediate the bridge evaluation needs
/// (candidate-cell sets and the two per-bridge distance tables). One
/// scratch per worker thread removes all per-evaluation allocation from
/// the STS hot path.
#[derive(Default)]
pub struct StpEvalScratch {
    out: SparseDistribution,
    cand_a: Vec<CellId>,
    cand_b: Vec<CellId>,
    candidates: Vec<CellId>,
    table1: DistTable,
    table2: DistTable,
}

impl StpEvalScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        StpEvalScratch::default()
    }

    /// The distribution produced by the most recent `stp_into` call.
    pub fn distribution(&self) -> &SparseDistribution {
        &self.out
    }
}

/// Linear-interpolation lookup table for an isotropic transition's
/// probability-by-distance at a fixed interval. Distances beyond the
/// table evaluate to 0 (the model declared them negligible via
/// `max_displacement`, or they exceed the grid diagonal and cannot
/// occur).
#[derive(Default)]
struct DistTable {
    step_inv: f64,
    values: Vec<f64>,
}

impl DistTable {
    fn fill(&mut self, model: &dyn TransitionModel, dt: f64, max_d: f64, step: f64) {
        let n = (max_d / step).ceil().max(1.0) as usize + 2;
        self.step_inv = 1.0 / step;
        self.values.clear();
        self.values
            .extend((0..n).map(|i| model.probability_by_distance(i as f64 * step, dt)));
    }

    #[inline]
    fn eval(&self, d: f64) -> f64 {
        let x = d * self.step_inv;
        let i = x as usize;
        if i + 1 >= self.values.len() {
            return 0.0;
        }
        let frac = x - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{DeterministicNoise, GaussianNoise};
    use crate::transition::SpeedKdeTransition;
    use sts_geo::BoundingBox;
    use sts_stats::Kernel;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(100.0, 20.0)),
            2.0,
        )
        .unwrap()
    }

    /// Walker going +x at ~1 m/s with 10 s between fixes.
    fn walker() -> Trajectory {
        Trajectory::from_xyt(&[
            (5.0, 10.0, 0.0),
            (15.0, 10.0, 10.0),
            (25.0, 10.0, 20.0),
            (35.0, 10.0, 30.0),
            (45.0, 10.0, 40.0),
        ])
        .unwrap()
    }

    #[test]
    fn stp_outside_span_is_empty() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        assert!(est.stp(-1.0).is_empty());
        assert!(est.stp(41.0).is_empty());
    }

    #[test]
    fn stp_at_observation_is_noise_distribution() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        let d = est.stp(10.0);
        assert_eq!(&d, est.observation_distribution(1));
        assert!((d.total() - 1.0).abs() < 1e-12);
        // Peak cell contains the observation.
        let peak = d
            .entries()
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, g.cell_at(Point::new(15.0, 10.0)).unwrap());
    }

    #[test]
    fn bridge_concentrates_between_observations() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        let d = est.stp(15.0); // halfway between fixes at x=15 and x=25
        assert!(!d.is_empty());
        assert!((d.total() - 1.0).abs() < 1e-9);
        // Expected position is near x = 20.
        let mut ex = 0.0;
        for &(c, w) in d.entries() {
            ex += g.center(c).x * w;
        }
        assert!((ex - 20.0).abs() < 2.5, "expected x ≈ 20, got {ex}");
        // Mass near the expected position dominates mass far away.
        let near = d.get(g.cell_at(Point::new(20.0, 10.0)).unwrap());
        let far = d.get(g.cell_at(Point::new(80.0, 10.0)).unwrap());
        assert!(near > far);
    }

    #[test]
    fn bridge_mass_grows_toward_the_next_fix() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        let near_25 = |d: &SparseDistribution| d.get(g.cell_at(Point::new(25.0, 10.0)).unwrap());
        let early = est.stp(11.0);
        let late = est.stp(19.0);
        assert!(near_25(&late) > near_25(&early));
    }

    #[test]
    fn sparse_matches_dense() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        for t in [3.0, 12.5, 15.0, 27.9, 36.0] {
            let sparse = est.stp(t);
            let dense = est.stp_dense(t);
            let mut tv = 0.0;
            for &(c, w) in dense.entries() {
                tv += (w - sparse.get(c)).abs();
            }
            for &(c, w) in sparse.entries() {
                if dense.get(c) == 0.0 {
                    tv += w;
                }
            }
            assert!(tv < 1e-6, "t={t}: TV distance {tv}");
        }
    }

    #[test]
    fn stp_into_matches_stp_bitwise() {
        // Satellite guarantee: the scratch path must EQUAL the
        // allocating path — bit-for-bit, not just within tolerance —
        // across observed stamps, bridge times, and out-of-span times,
        // with the scratch reused (dirty) between evaluations.
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        let mut scratch = StpEvalScratch::new();
        for t in [
            -1.0,
            0.0,
            3.0,
            10.0,
            12.5,
            15.0,
            27.9,
            36.0,
            40.0,
            41.0,
            f64::NAN,
        ] {
            let alloc = est.stp(t);
            let scratched = est.stp_into(t, &mut scratch);
            assert_eq!(alloc.len(), scratched.len(), "t={t}: cell count");
            for (&(ca, wa), &(cb, wb)) in alloc.entries().iter().zip(scratched.entries()) {
                assert_eq!(ca, cb, "t={t}: cell id");
                assert_eq!(wa.to_bits(), wb.to_bits(), "t={t}: weight bits");
            }
            assert_eq!(scratch.distribution().len(), alloc.len());
        }
    }

    #[test]
    fn deterministic_noise_bridge_still_spreads() {
        let g = grid();
        let noise = DeterministicNoise;
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        let d = est.stp(15.0);
        // Even with point observations, the bridge is uncertain.
        assert!(d.len() > 1);
        assert!((d.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_trajectory() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = Trajectory::from_xyt(&[(50.0, 10.0, 5.0)]).unwrap();
        // A single-point trajectory has no speed samples; use a stand-in
        // transition model.
        let trans = SpeedKdeTransition::from_speed_samples(vec![1.0], Kernel::Gaussian).unwrap();
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        assert!(!est.stp(5.0).is_empty());
        assert!(est.stp(5.1).is_empty());
        assert!(est.stp(4.9).is_empty());
    }

    #[test]
    fn distance_table_path_matches_pairwise_path() {
        use crate::transition::TransitionModel;
        use sts_geo::Point as P;

        /// Same model, isotropy hidden — forces the pairwise slow path.
        struct NonIso(SpeedKdeTransition);
        impl TransitionModel for NonIso {
            fn probability(&self, from: P, to: P, dt: f64) -> f64 {
                self.0.probability(from, to, dt)
            }
            fn max_displacement(&self, dt: f64) -> f64 {
                self.0.max_displacement(dt)
            }
            // is_isotropic stays false (default).
        }

        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let fast = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let slow = NonIso(fast.clone());
        let est_fast = StpEstimator::new(&g, &noise, &fast, &traj);
        let est_slow = StpEstimator::new(&g, &noise, &slow, &traj);
        for t in [3.0, 12.5, 15.0, 27.9, 36.0] {
            let a = est_fast.stp(t);
            let b = est_slow.stp(t);
            let mut tv = 0.0;
            for &(c, w) in a.entries() {
                tv += (w - b.get(c)).abs();
            }
            for &(c, w) in b.entries() {
                if a.get(c) == 0.0 {
                    tv += w;
                }
            }
            // Interpolation at cell/8 resolution against a near-Dirac
            // speed density: sub-0.2% total-variation error.
            assert!(tv < 2e-3, "t={t}: table vs pairwise TV {tv}");
        }
    }

    #[test]
    fn nan_query_time_yields_empty_stp() {
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = walker();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        assert!(est.stp(f64::NAN).is_empty());
        assert!(est.stp_dense(f64::NAN).is_empty());
        assert!(est.stp(f64::INFINITY).is_empty());
        assert!(est.stp(f64::NEG_INFINITY).is_empty());
    }

    /// Sanity for a distribution: non-empty, every weight finite, total
    /// mass 1.
    fn assert_finite_normalized(d: &SparseDistribution, what: &str) {
        assert!(!d.is_empty(), "{what}: empty");
        for &(_, w) in d.entries() {
            assert!(w.is_finite() && w >= 0.0, "{what}: weight {w}");
        }
        assert!(
            (d.total() - 1.0).abs() < 1e-9,
            "{what}: total {}",
            d.total()
        );
    }

    #[test]
    fn zero_variance_speed_model_gives_finite_normalized_stp() {
        // Perfectly constant speed: σ̂ = 0, so Silverman's bandwidth
        // degenerates and the KDE takes the bandwidth-floor path.
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let traj = Trajectory::from_xyt(&[
            (5.0, 10.0, 0.0),
            (15.0, 10.0, 10.0),
            (25.0, 10.0, 20.0),
            (35.0, 10.0, 30.0),
        ])
        .unwrap();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        assert_eq!(trans.kde().bandwidth(), sts_stats::Kde::BANDWIDTH_FLOOR);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        for t in [0.0, 5.0, 13.7, 25.0, 30.0] {
            assert_finite_normalized(&est.stp(t), &format!("t={t}"));
        }
    }

    #[test]
    fn repaired_duplicate_stamps_give_finite_normalized_stp() {
        // Identical consecutive timestamps cannot enter a Trajectory;
        // the degraded path is raw stream → repair → STP. The repaired
        // trajectory must produce a proper distribution everywhere.
        use sts_traj::repair::{repair, RepairConfig};
        let raw = vec![
            sts_traj::TrajPoint::from_xy(5.0, 10.0, 0.0),
            sts_traj::TrajPoint::from_xy(6.0, 10.0, 0.0), // duplicate stamp
            sts_traj::TrajPoint::from_xy(15.0, 10.0, 10.0),
            sts_traj::TrajPoint::from_xy(15.5, 10.0, 10.0), // duplicate stamp
            sts_traj::TrajPoint::from_xy(25.0, 10.0, 20.0),
        ];
        let out = repair(&raw, &RepairConfig::default()).unwrap();
        assert_eq!(out.report.dropped_duplicate_stamps, 2);
        assert_eq!(out.trajectories.len(), 1);
        let traj = &out.trajectories[0];
        let g = grid();
        let noise = GaussianNoise::new(2.0);
        let trans = SpeedKdeTransition::from_trajectory(traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, traj);
        for t in [0.0, 4.2, 10.0, 15.0, 20.0] {
            assert_finite_normalized(&est.stp(t), &format!("t={t}"));
        }
    }

    #[test]
    fn single_cell_grid_concentrates_all_mass() {
        // A one-cell grid: every distribution must be exactly {cell: 1}.
        let g = Grid::new(BoundingBox::new(Point::ORIGIN, Point::new(5.0, 5.0)), 10.0).unwrap();
        assert_eq!(g.len(), 1);
        let noise = GaussianNoise::new(2.0);
        let traj =
            Trajectory::from_xyt(&[(1.0, 1.0, 0.0), (2.0, 2.0, 10.0), (3.0, 1.0, 20.0)]).unwrap();
        let trans = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
            .unwrap()
            .with_position_uncertainty(g.cell_size() / 2.0);
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        for t in [0.0, 5.0, 10.0, 12.5, 20.0] {
            let d = est.stp(t);
            assert_finite_normalized(&d, &format!("t={t}"));
            assert_eq!(d.len(), 1);
            assert!((d.get(CellId(0)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn teleporting_trajectory_yields_empty_bridge() {
        // Two fixes so far apart in so little time that no speed in the
        // personal distribution can bridge them: STP should be empty
        // rather than garbage.
        let g = grid();
        let noise = GaussianNoise::new(1.0);
        let traj = Trajectory::from_xyt(&[
            (5.0, 10.0, 0.0),
            (6.0, 10.0, 1.0),
            (7.0, 10.0, 2.0),
            // 90 m in one second — unreachable at ~1 m/s.
            (97.0, 10.0, 3.0),
        ])
        .unwrap();
        // Compact-support kernel around 1 m/s: 90 m/s is impossible.
        let trans =
            SpeedKdeTransition::from_speed_samples(vec![0.9, 1.0, 1.1], Kernel::Epanechnikov)
                .unwrap();
        let est = StpEstimator::new(&g, &noise, &trans, &traj);
        let d = est.stp(2.5);
        assert!(d.is_empty(), "unbridgeable gap should give empty STP");
    }
}
