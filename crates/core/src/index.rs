//! Spatio-temporal inverted index for candidate pruning.
//!
//! Exact STS costs `O(|Tra|·|Tra'|·|R|²)` per pair (paper §V-C);
//! scanning a large corpus for the most similar trajectory at that
//! price is wasteful when almost every candidate shares *no*
//! spatio-temporal region with the query. [`ColocationIndex`] maps
//! `(grid cell, time bucket)` keys to the trajectories observed there,
//! so a query only pays the exact measure on candidates that plausibly
//! co-locate — the classic filter-and-refine pattern of trajectory
//! databases.
//!
//! The filter is *conservative by construction* for the matching task:
//! any trajectory pair with an observation in the same spatial
//! neighborhood (3×3 cells) within one time bucket is retained. Pairs
//! without any such co-occurrence would score near-zero STS anyway.

use crate::StsError;
use std::collections::HashMap;
use sts_geo::{CellId, Grid};
use sts_traj::Trajectory;

/// Inverted index over `(cell, time bucket)` co-occurrences.
pub struct ColocationIndex {
    grid: Grid,
    bucket_seconds: f64,
    /// Posting lists: key → ids of trajectories observed there.
    postings: HashMap<(CellId, i64), Vec<u32>>,
    n_indexed: usize,
}

impl ColocationIndex {
    /// Builds the index over a corpus. `bucket_seconds` controls the
    /// temporal resolution: co-locations farther apart than one bucket
    /// are not guaranteed to be found (choose it at or above the
    /// corpus's typical sampling gap).
    pub fn build(grid: Grid, bucket_seconds: f64, corpus: &[Trajectory]) -> Self {
        assert!(bucket_seconds > 0.0, "bucket width must be positive");
        let mut postings: HashMap<(CellId, i64), Vec<u32>> = HashMap::new();
        for (id, traj) in corpus.iter().enumerate() {
            for p in traj.points() {
                let key = (
                    grid.cell_at_clamped(p.loc),
                    (p.t / bucket_seconds).floor() as i64,
                );
                let list = postings.entry(key).or_default();
                if list.last() != Some(&(id as u32)) {
                    list.push(id as u32);
                }
            }
        }
        ColocationIndex {
            grid,
            bucket_seconds,
            postings,
            n_indexed: corpus.len(),
        }
    }

    /// Number of indexed trajectories.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_indexed
    }

    /// `true` when no trajectories are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_indexed == 0
    }

    /// Number of posting lists (index size indicator).
    #[inline]
    pub fn posting_lists(&self) -> usize {
        self.postings.len()
    }

    /// Candidate ids that co-occur with `query` in at least one
    /// `(3×3 cell neighborhood, ±1 time bucket)` region, with their
    /// co-occurrence counts, sorted by decreasing count.
    pub fn candidates(&self, query: &Trajectory) -> Vec<(u32, u32)> {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for p in query.points() {
            let cell = self.grid.cell_at_clamped(p.loc);
            let bucket = (p.t / self.bucket_seconds).floor() as i64;
            let mut cells = self.grid.neighbors(cell);
            cells.push(cell);
            for c in cells {
                for b in [bucket - 1, bucket, bucket + 1] {
                    if let Some(list) = self.postings.get(&(c, b)) {
                        for &id in list {
                            *counts.entry(id).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, u32)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Filter-and-refine top-k: prune with the index, then compute exact
    /// STS only on the `refine_limit` strongest candidates (at least
    /// `k`). Returns `(corpus index, similarity)`, best first. Candidates
    /// never touched by the filter are never scored (their STS would be
    /// ~0 — no shared spatio-temporal region).
    pub fn top_k(
        &self,
        sts: &crate::Sts,
        query: &Trajectory,
        corpus: &[Trajectory],
        k: usize,
        refine_limit: usize,
    ) -> Result<Vec<(usize, f64)>, StsError> {
        assert_eq!(
            corpus.len(),
            self.n_indexed,
            "corpus must be the one the index was built over"
        );
        let limit = refine_limit.max(k);
        let q = sts.prepare(query)?;
        let mut scored = Vec::new();
        for (id, _) in self.candidates(query).into_iter().take(limit) {
            let c = &corpus[id as usize];
            // Unpreparable candidates (too short) score 0 like in the
            // matching harness.
            let s = sts
                .prepare(c)
                .map(|p| sts.similarity_prepared(&q, &p))
                .unwrap_or(0.0);
            scored.push((id as usize, s));
        }
        crate::sts::sort_scores_descending(&mut scored);
        scored.truncate(k);
        Ok(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sts, StsConfig};
    use sts_geo::{BoundingBox, Point};
    use sts_traj::TrajPoint;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(400.0, 400.0)),
            5.0,
        )
        .unwrap()
    }

    /// Walker along y = `y` starting at `t0`.
    fn walker(y: f64, t0: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = t0 + 10.0 * i as f64;
                    TrajPoint::from_xy(2.0 * (t - t0), y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    fn corpus() -> Vec<Trajectory> {
        (0..12)
            .map(|k| walker(30.0 * k as f64 + 5.0, 0.0, 10))
            .collect()
    }

    #[test]
    fn index_statistics() {
        let corpus = corpus();
        let idx = ColocationIndex::build(grid(), 30.0, &corpus);
        assert_eq!(idx.len(), 12);
        assert!(!idx.is_empty());
        assert!(idx.posting_lists() > 0);
    }

    #[test]
    fn candidates_find_the_co_located_trajectory() {
        let corpus = corpus();
        let idx = ColocationIndex::build(grid(), 30.0, &corpus);
        // A query following corpus trajectory 3's route, shifted by 5 s.
        let query = walker(95.0, 5.0, 10);
        let cands = idx.candidates(&query);
        assert!(!cands.is_empty());
        assert_eq!(cands[0].0, 3, "strongest candidate should be walker 3");
        // Walkers far away are not candidates at all.
        let ids: Vec<u32> = cands.iter().map(|&(id, _)| id).collect();
        assert!(!ids.contains(&11), "walker 11 is 240 m away");
    }

    #[test]
    fn pruned_top_k_matches_exact_top_k() {
        let corpus = corpus();
        let g = grid();
        let idx = ColocationIndex::build(g.clone(), 30.0, &corpus);
        let sts = Sts::new(
            StsConfig {
                noise_sigma: 4.0,
                ..StsConfig::default()
            },
            g,
        );
        let query = walker(65.0, 5.0, 10);
        let pruned = idx.top_k(&sts, &query, &corpus, 1, 4).unwrap();
        let exact = sts.top_k(&query, &corpus, 1).unwrap();
        assert_eq!(pruned[0].0, exact[0].0, "pruned and exact disagree");
        assert!((pruned[0].1 - exact[0].1).abs() < 1e-12);
    }

    #[test]
    fn disjoint_query_yields_no_candidates() {
        let corpus = corpus();
        let idx = ColocationIndex::build(grid(), 30.0, &corpus);
        // Same space, 10 hours later: temporal buckets disjoint.
        let query = walker(65.0, 36_000.0, 10);
        assert!(idx.candidates(&query).is_empty());
    }

    #[test]
    #[should_panic]
    fn corpus_mismatch_panics() {
        let corpus = corpus();
        let g = grid();
        let idx = ColocationIndex::build(g.clone(), 30.0, &corpus);
        let sts = Sts::new(StsConfig::default(), g);
        let _ = idx.top_k(&sts, &corpus[0], &corpus[..3], 1, 4);
    }
}
