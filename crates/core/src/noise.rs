//! Location-noise models (paper §IV-A, Eq. 3).
//!
//! Each observed location `(ℓ, t)` is modeled as a probability
//! distribution over grid cells rather than a deterministic point. The
//! paper allows "any arbitrary probability distribution" and works the
//! Gaussian case (Eq. 3); we expose the trait plus three instances:
//! Gaussian, uniform-disc, and the deterministic point model used by the
//! `STS-N` ablation.

use crate::dist::SparseDistribution;
use sts_geo::{Grid, Point};
use sts_stats::Gaussian;

/// A location-noise model: converts an observed location into an
/// (unnormalized) weight distribution `f(r, ℓ)` over grid cells.
pub trait NoiseModel: Send + Sync {
    /// Unnormalized weights over grid cells for an observation at
    /// `observed`. Implementations may truncate negligible tails; the
    /// result must be non-empty for any finite observation (an
    /// observation always is *somewhere*).
    fn weights(&self, grid: &Grid, observed: Point) -> SparseDistribution;

    /// Radius (meters) beyond which this model's weight is negligible;
    /// used by the S-T probability estimator to bound candidate cells.
    fn truncation_radius(&self) -> f64;
}

/// Gaussian location noise with standard deviation `sigma` (Eq. 3):
/// `f(r, ℓ) ∝ exp(−dis(ℓ, r)² / 2σ²)`.
///
/// `truncation_k` bounds the support at `k·σ`; `None` disables
/// truncation (the faithful dense computation, used for validation).
/// At the default `k = 4` the discarded tail mass is < 10⁻⁴ of the
/// total, far below the differences the measure needs to resolve.
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    truncation_k: Option<f64>,
}

impl GaussianNoise {
    /// Default truncation multiple.
    pub const DEFAULT_TRUNCATION_K: f64 = 4.0;

    /// Creates the model with the default `4σ` truncation.
    pub fn new(sigma: f64) -> Self {
        Self::with_truncation(sigma, Some(Self::DEFAULT_TRUNCATION_K))
    }

    /// Creates the model with an explicit truncation multiple (`None`
    /// evaluates every grid cell — exact but `O(|R|)` per observation).
    pub fn with_truncation(sigma: f64, truncation_k: Option<f64>) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "noise sigma must be positive (got {sigma})"
        );
        if let Some(k) = truncation_k {
            assert!(k > 0.0, "truncation multiple must be positive");
        }
        GaussianNoise {
            sigma,
            truncation_k,
        }
    }

    /// The noise standard deviation σ.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl NoiseModel for GaussianNoise {
    fn weights(&self, grid: &Grid, observed: Point) -> SparseDistribution {
        let cells = match self.truncation_k {
            Some(k) => {
                // Never truncate below the cell scale, or coarse grids
                // with small σ would lose the observation's own cell.
                let radius = (k * self.sigma).max(grid.cell_size());
                grid.cells_within(observed, radius)
            }
            None => grid.cells().collect(),
        };
        let mut weights: Vec<_> = cells
            .into_iter()
            .map(|c| {
                let d = grid.center(c).distance(&observed);
                (c, Gaussian::unnormalized_weight(d, self.sigma))
            })
            .collect();
        if weights.iter().all(|(_, w)| *w <= 0.0) || weights.is_empty() {
            // Observation far outside the grid: snap to the nearest cell.
            weights = vec![(grid.cell_at_clamped(observed), 1.0)];
        }
        SparseDistribution::from_weights(weights)
    }

    fn truncation_radius(&self) -> f64 {
        match self.truncation_k {
            Some(k) => k * self.sigma,
            None => f64::INFINITY,
        }
    }
}

/// Uniform noise over a disc of the given radius: every cell whose center
/// lies within `radius` of the observation gets equal weight.
/// Demonstrates the "arbitrary distribution" claim of §IV-A.
#[derive(Debug, Clone)]
pub struct UniformDiscNoise {
    radius: f64,
}

impl UniformDiscNoise {
    /// Creates the model; `radius` must be positive.
    pub fn new(radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "radius must be positive"
        );
        UniformDiscNoise { radius }
    }
}

impl NoiseModel for UniformDiscNoise {
    fn weights(&self, grid: &Grid, observed: Point) -> SparseDistribution {
        let radius = self.radius.max(grid.cell_size());
        let cells = grid.cells_within(observed, radius);
        if cells.is_empty() {
            return SparseDistribution::from_weights(vec![(grid.cell_at_clamped(observed), 1.0)]);
        }
        SparseDistribution::from_weights(cells.into_iter().map(|c| (c, 1.0)).collect())
    }

    fn truncation_radius(&self) -> f64 {
        self.radius
    }
}

/// The deterministic point model of the `STS-N` ablation: all mass on the
/// cell containing the observation (the paper's remark that the
/// location-probability form generalizes the raw trajectory, §IV-A).
#[derive(Debug, Clone, Default)]
pub struct DeterministicNoise;

impl NoiseModel for DeterministicNoise {
    fn weights(&self, grid: &Grid, observed: Point) -> SparseDistribution {
        SparseDistribution::from_weights(vec![(grid.cell_at_clamped(observed), 1.0)])
    }

    fn truncation_radius(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::BoundingBox;

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0)),
            5.0,
        )
        .unwrap()
    }

    #[test]
    fn gaussian_mass_concentrates_at_observation() {
        let g = grid();
        let model = GaussianNoise::new(5.0);
        let obs = Point::new(52.5, 52.5); // a cell center
        let w = model.weights(&g, obs).normalize();
        let own = g.cell_at(obs).unwrap();
        let own_mass = w.get(own);
        for (c, m) in w.entries() {
            assert!(own_mass >= *m - 1e-12, "cell {c} beats own cell");
        }
        assert!((w.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_truncated_matches_dense() {
        let g = grid();
        let sparse = GaussianNoise::with_truncation(4.0, Some(6.0));
        let dense = GaussianNoise::with_truncation(4.0, None);
        let obs = Point::new(30.0, 70.0);
        let ws = sparse.weights(&g, obs).normalize();
        let wd = dense.weights(&g, obs).normalize();
        // Same cells dominate; total variation distance tiny.
        let mut tv = 0.0;
        for (c, m) in wd.entries() {
            tv += (m - ws.get(*c)).abs();
        }
        assert!(tv < 1e-6, "TV distance {tv}");
    }

    #[test]
    fn gaussian_far_outside_grid_snaps_to_nearest() {
        let g = grid();
        let model = GaussianNoise::new(2.0);
        let w = model.weights(&g, Point::new(-500.0, -500.0));
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.entries()[0].0,
            g.cell_at_clamped(Point::new(-500.0, -500.0))
        );
    }

    #[test]
    fn gaussian_small_sigma_on_coarse_grid_keeps_own_cell() {
        let g = Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0)),
            100.0,
        )
        .unwrap();
        let model = GaussianNoise::new(1.0); // σ << cell size
        let obs = Point::new(380.0, 520.0);
        let w = model.weights(&g, obs);
        assert!(w.get(g.cell_at(obs).unwrap()) > 0.0);
    }

    #[test]
    fn gaussian_sigma_widens_support() {
        let g = grid();
        let narrow = GaussianNoise::new(2.0);
        let wide = GaussianNoise::new(10.0);
        let obs = Point::new(50.0, 50.0);
        assert!(wide.weights(&g, obs).len() > narrow.weights(&g, obs).len());
    }

    #[test]
    fn uniform_disc_weights_are_equal() {
        let g = grid();
        let model = UniformDiscNoise::new(10.0);
        let w = model.weights(&g, Point::new(50.0, 50.0)).normalize();
        let first = w.entries()[0].1;
        for (_, m) in w.entries() {
            assert!((m - first).abs() < 1e-12);
        }
        assert!(w.len() > 1);
    }

    #[test]
    fn deterministic_is_a_point_mass() {
        let g = grid();
        let model = DeterministicNoise;
        let obs = Point::new(33.0, 44.0);
        let w = model.weights(&g, obs);
        assert_eq!(w.len(), 1);
        assert_eq!(w.entries()[0].0, g.cell_at(obs).unwrap());
        assert_eq!(model.truncation_radius(), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_sigma_panics() {
        let _ = GaussianNoise::new(0.0);
    }
}
