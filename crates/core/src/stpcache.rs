//! Per-trajectory STP caching for the STS hot path.
//!
//! `STP(r, t, Tra)` (Eqs. 1–5) depends on a *single* trajectory, yet the
//! matrix paths historically recomputed it per *pair* — every trajectory
//! was re-evaluated against every partner's timestamps. This module
//! gives each [`crate::PreparedTrajectory`] a shared, thread-safe STP
//! cache so a distribution is evaluated once per `(trajectory,
//! timestamp)` and every pair that needs it afterwards reduces to a
//! sparse dot product over cached entries.
//!
//! Layout: a flat structure-of-arrays arena (`cell_ids: Vec<u32>` /
//! `probs: Vec<f64>`) plus an index from timestamp bits to an
//! `(offset, len)` range. The SoA form keeps a pair's inner loop — the
//! sorted merge of two cached distributions — on two dense, cache-line
//! friendly slices, and makes an empty distribution a zero-length range
//! rather than an allocation.
//!
//! Concurrency: the cache sits behind an `RwLock`. Scoring threads
//! detect misses under a short read lock; when there are any, the
//! re-check and the evaluation both happen under one write lock, so
//! every `(trajectory, timestamp)` is evaluated **exactly once**
//! process-wide — work counters (`core.stp.evals`, `core.stp.cells`,
//! hits/misses) stay thread-count invariant, which the telemetry suite
//! asserts. Holding the write lock across evaluation serializes fills
//! of *one* trajectory's cache; threads filling different trajectories
//! proceed in parallel, and a thread blocked on a filling writer would
//! otherwise have computed the same distributions itself. When a pair
//! reads two caches simultaneously the guards are taken in a canonical
//! (address) order, which rules out reader/writer deadlock cycles.
//!
//! The arena is bounded by [`MAX_ARENA_ENTRIES`]; on overflow the cache
//! recycles (clears) itself. Correctness never depends on an entry
//! being present: readers fall back to direct evaluation for missing
//! timestamps, so eviction only costs time.

use crate::dist::SparseDistribution;
use crate::stprob::{StpEstimator, StpEvalScratch};
use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard};

/// How [`crate::Sts`] evaluates STP distributions when scoring pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StpCacheMode {
    /// The uncached reference path: both trajectories are re-evaluated
    /// at every merged timestamp of every pair, exactly as written in
    /// the paper's Algorithm 1. Kept as the oracle for the differential
    /// equivalence suite.
    Off,
    /// Per-trajectory caching keyed by exact timestamp bits (the
    /// default). Scores are **bit-identical** to [`StpCacheMode::Off`]:
    /// the cache stores precisely what `stp()` returns and the sparse
    /// dot over cached entries performs the same merge in the same
    /// order. Saves the mirror-pair/diagonal recomputation and all
    /// per-evaluation allocation.
    #[default]
    Exact,
    /// Evaluation on the shared time lattice `t_k = k·dt` instead of
    /// the pair's merged timestamps: the score becomes the mean
    /// co-location probability over lattice points inside the pair's
    /// overlap window. Because lattice points are global, each
    /// trajectory is evaluated at most `span/dt` times for the *whole*
    /// matrix — per-trajectory, not per-pair — which is where the
    /// order-of-magnitude throughput win comes from. This is an
    /// explicitly tolerance-gated approximation of the merged-timestamp
    /// score (quadrature of the same co-location curve on a different
    /// time partition); equivalence tests gate it on ranking agreement,
    /// not bit equality. `dt ≤ 0`, non-finite `dt`, or a window that
    /// would need more than [`MAX_LATTICE_POINTS`] points falls back to
    /// [`StpCacheMode::Exact`] semantics for that pair.
    Lattice {
        /// Lattice period in seconds.
        dt: f64,
    },
}

/// Upper bound on `(cell, prob)` entries held per trajectory cache
/// (≈ 48 MB). On overflow the cache recycles; see module docs.
pub(crate) const MAX_ARENA_ENTRIES: usize = 4 << 20;

/// Upper bound on lattice points per pair before a pair falls back to
/// exact merged-timestamp evaluation (guards against degenerate `dt`).
pub(crate) const MAX_LATTICE_POINTS: usize = 1 << 22;

#[derive(Default)]
struct CacheInner {
    /// `t.to_bits()` → `(offset, len)` into the SoA arena. A `len` of 0
    /// is a cached *empty* distribution (e.g. `t` outside the span).
    index: HashMap<u64, (u32, u32)>,
    cell_ids: Vec<u32>,
    probs: Vec<f64>,
}

/// A trajectory's STP cache (one per [`crate::PreparedTrajectory`]).
#[derive(Default)]
pub(crate) struct StpCache {
    inner: RwLock<CacheInner>,
}

impl std::fmt::Debug for StpCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock_read();
        f.debug_struct("StpCache")
            .field("timestamps", &inner.index.len())
            .field("entries", &inner.cell_ids.len())
            .finish()
    }
}

impl StpCache {
    fn lock_read(&self) -> RwLockReadGuard<'_, CacheInner> {
        // A poisoned lock only means some scoring thread panicked; the
        // cache itself is never left mid-mutation (appends are
        // panic-free), so recover the guard rather than wedging the
        // whole job.
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Makes sure every timestamp in `times` is cached, evaluating
    /// misses through `est.stp_into` with the caller's scratch. Misses
    /// are re-checked and evaluated under one write lock, so each
    /// timestamp is computed exactly once however many threads race on
    /// it (see the module docs for why determinism wins over
    /// out-of-lock evaluation here).
    pub(crate) fn ensure(
        &self,
        est: &StpEstimator<'_>,
        times: &[(f64, f64)],
        scratch: &mut FillScratch,
    ) {
        let any_miss = {
            let inner = self.lock_read();
            times
                .iter()
                .any(|&(t, _)| !inner.index.contains_key(&t.to_bits()))
        };
        if !any_miss {
            sts_obs::static_counter!("core.stp.cache_hits").add(times.len() as u64);
            return;
        }
        let mut inner = self
            .inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Re-check under the write lock: a concurrent filler may have
        // committed some timestamps since the read probe. Whatever is
        // still missing here is missing for every thread — exactly one
        // writer evaluates it.
        scratch.miss.clear();
        scratch.miss.extend(
            times
                .iter()
                .map(|&(t, _)| t)
                .filter(|t| !inner.index.contains_key(&t.to_bits())),
        );
        let hits = times.len() - scratch.miss.len();
        if hits > 0 {
            sts_obs::static_counter!("core.stp.cache_hits").add(hits as u64);
        }
        if scratch.miss.is_empty() {
            return;
        }
        sts_obs::static_counter!("core.stp.cache_misses").add(scratch.miss.len() as u64);
        for i in 0..scratch.miss.len() {
            let t = scratch.miss[i];
            let d = est.stp_into(t, &mut scratch.eval);
            let n = d.entries().len();
            if n > MAX_ARENA_ENTRIES {
                // A single distribution larger than the arena bound
                // (degenerate dense fallback on a huge grid): leave it
                // uncached; readers evaluate it directly.
                continue;
            }
            if inner.cell_ids.len() + n > MAX_ARENA_ENTRIES {
                // Arena full: recycle wholesale. Readers never rely on
                // presence, so this only trades time, not correctness.
                inner.index.clear();
                inner.cell_ids.clear();
                inner.probs.clear();
            }
            let at = inner.cell_ids.len() as u32;
            for &(c, w) in d.entries() {
                inner.cell_ids.push(c.0);
                inner.probs.push(w);
            }
            inner.index.insert(t.to_bits(), (at, n as u32));
        }
    }

    /// A read view over the cache for the dot-product phase.
    pub(crate) fn read(&self) -> StpCacheReader<'_> {
        StpCacheReader {
            guard: self.lock_read(),
        }
    }
}

/// Read guard over a trajectory's cache; hands out SoA slices.
pub(crate) struct StpCacheReader<'a> {
    guard: RwLockReadGuard<'a, CacheInner>,
}

impl StpCacheReader<'_> {
    /// The cached distribution at `t` as parallel `(cell_ids, probs)`
    /// slices, or `None` when `t` is not cached (never computes).
    pub(crate) fn get(&self, t: f64) -> Option<(&[u32], &[f64])> {
        let &(start, len) = self.guard.index.get(&t.to_bits())?;
        let (s, e) = (start as usize, start as usize + len as usize);
        Some((&self.guard.cell_ids[s..e], &self.guard.probs[s..e]))
    }

    /// Number of cached timestamps.
    pub(crate) fn timestamps(&self) -> usize {
        self.guard.index.len()
    }
}

/// Buffers used while filling a cache: the miss list and the low-level
/// evaluation scratch.
#[derive(Default)]
pub(crate) struct FillScratch {
    miss: Vec<f64>,
    pub(crate) eval: StpEvalScratch,
}

/// Per-worker scratch arena for the cached STS hot path: the pair's
/// evaluation-time list plus all cache-fill buffers. One instance per
/// worker thread (pool workers, strict-matrix threads, the subprocess
/// worker's serve loop) is created once and reused across every pair
/// that worker scores — the hot path performs no per-pair allocation
/// beyond first-touch growth of these buffers.
///
/// Ownership rules: a scratch is exclusively owned by one worker and
/// never crosses threads mid-job; the shared state is the per-trajectory
/// [`StpCache`], which the scratch only stages into. Buffers are
/// cleared at the start of each use, so a scratch remains valid even if
/// a previous score panicked mid-evaluation.
#[derive(Default)]
pub struct StpScratch {
    /// `(t, multiplicity)` evaluation points for the current pair.
    pub(crate) times: Vec<(f64, f64)>,
    pub(crate) fill: FillScratch,
}

impl StpScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        StpScratch::default()
    }
}

/// Converts a cached SoA distribution back into a standalone
/// [`SparseDistribution`] (exact copy, including any zero-weight
/// entries the normalization kept).
pub(crate) fn soa_to_dist(ids: &[u32], probs: &[f64]) -> SparseDistribution {
    let mut d = SparseDistribution::empty();
    d.entries_mut().extend(
        ids.iter()
            .zip(probs)
            .map(|(&c, &p)| (sts_geo::CellId(c), p)),
    );
    d
}
