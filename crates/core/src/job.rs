//! Supervised similarity-matrix jobs: deadlines, cancellation,
//! retrying workers and checkpoint/resume on top of the
//! [`sts_runtime`] pool.
//!
//! [`Sts::similarity_matrix_degraded`] contains faults but still runs
//! open-loop: no way to stop it, no way to resume it, and a panicked
//! cell is never retried. At production scale the dominant failure
//! mode is operational — a job killed at 90%, a stripe wedged on a
//! pathological pair, a host with fewer cores than assumed — so every
//! long-running matrix job here is *supervised*:
//!
//! * **deadline-aware** — a [`Budget`] (wall-clock and/or max-pairs)
//!   is checked at every pair-chunk boundary; a stopped job returns
//!   every completed cell and marks the rest [`PairOutcome::Skipped`];
//! * **cancellable** — a [`CancelToken`] gives Ctrl-C handlers and RPC
//!   deadline watchers a clean way in;
//! * **self-healing** — a panicked cell is retried with
//!   decorrelated-jitter backoff up to [`RetryPolicy::max_retries`]
//!   times before becoming [`PairOutcome::Failed`]; the pool
//!   additionally retries whole chunks as a backstop and a watchdog
//!   marks chunks exceeding the soft timeout;
//! * **resumable** — completed cells are periodically flushed to a
//!   text checkpoint (format: [`sts_runtime::checkpoint`]); a resumed
//!   job verifies the header fingerprint against its inputs and skips
//!   checkpointed cells, so a crash loses at most one flush interval.
//!
//! The [`JobReport`] extends the degraded-mode [`BatchReport`] with
//! the runtime half: timing, retry counts, chunk accounting and
//! percent-complete ([`JobStats`]).

use crate::batch::{prepare_all, BatchReport, PairOutcome};
use crate::sts::{sort_scores_descending, PreparedTrajectory, Sts};
use crate::worker;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use sts_geo::Grid;
use sts_isolate::{IsolateConfig, WorkerSpec};
use sts_obs::{trace, Telemetry};
use sts_runtime::checkpoint::{load_checkpoint, save_checkpoint, CellRecord, Checkpoint, Fnv1a};
use sts_runtime::pool::{run_supervised_with, ChunkStatus, PoolConfig};
use sts_runtime::{
    Budget, CancelToken, CheckpointError, DecorrelatedJitter, FaultPlan, IsolateStats, JobState,
    JobStats, PairChunk, PairSpace, RetryPolicy,
};
use sts_traj::Trajectory;

/// Periodic checkpointing of a supervised job.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file path. If the file exists when the job starts,
    /// the job *resumes* from it (after fingerprint verification).
    pub path: PathBuf,
    /// Flush after this many newly completed chunks (clamped to ≥ 1).
    /// A crash loses at most this much progress.
    pub flush_every_chunks: usize,
}

impl CheckpointConfig {
    /// Checkpoint to `path`, flushing every 8 completed chunks.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            flush_every_chunks: 8,
        }
    }
}

/// Where a supervised job's scoring actually runs.
#[derive(Debug, Clone, Default)]
pub enum ExecMode {
    /// Score on a thread pool inside this process (the default).
    /// Panics are contained per cell, but aborts, OOM kills and wedged
    /// computations take the whole job down.
    #[default]
    InProcess,
    /// Score in supervised `sts-worker` subprocesses over the
    /// [`sts_isolate`] protocol. A crashed, wedged or babbling worker
    /// costs one chunk: the supervisor restarts it under a budget and
    /// bisects the killing chunk down to the single poison pair, which
    /// is quarantined as [`PairOutcome::Poisoned`] with the worker's
    /// exit status. Budget, cancellation, checkpoint/resume and
    /// telemetry behave exactly as in-process; per-cell *retries* run
    /// inside the worker, so they are applied identically but not
    /// counted in [`JobStats::retries`], and chunk accounting counts
    /// fully-resolved chunks (bisection fragments are not chunks).
    ///
    /// Requires a measure built purely from config ([`Sts::new`] or
    /// the `NoNoise` variant) — trait-object and corpus-trained
    /// measures cannot be described to a worker
    /// ([`JobError::SubprocessUnsupported`]).
    Subprocess(IsolateOptions),
    /// Score on a fleet of socket workers dealt whole tiles by the
    /// lease-based coordinator in [`crate::shard`]. Only meaningful
    /// under the tiled engine ([`crate::tiled::tiled_engine`]) — tiles
    /// are the unit of distribution; a plain supervised job has no
    /// tiles to deal ([`JobError::ShardRequiresTiling`]). Same
    /// pure-config measure requirement as `Subprocess`.
    Sharded(crate::shard::ShardOptions),
}

/// Tuning for [`ExecMode::Subprocess`]. `Default` is production-shaped;
/// tests shrink the timeouts.
#[derive(Debug, Clone)]
pub struct IsolateOptions {
    /// Worker executable; `None` resolves `sts-worker` next to the
    /// current executable ([`worker::default_worker_path`]).
    pub worker: Option<PathBuf>,
    /// Hard per-chunk timeout: a worker that has not answered within
    /// this long is killed and the chunk attributed. Must comfortably
    /// exceed the honest worst-case chunk time.
    pub hard_timeout: Duration,
    /// How long a fresh worker may take to rebuild the measure,
    /// prepare the corpus and answer `ready`.
    pub ready_timeout: Duration,
    /// Worker respawns allowed across the run (the initial fleet is
    /// free); exhaustion stops the job as
    /// [`JobState::WorkersExhausted`].
    pub restart_budget: usize,
    /// Worker deaths an isolated single-pair chunk may cause before
    /// the pair is quarantined as poison.
    pub poison_attempts: u32,
}

impl Default for IsolateOptions {
    fn default() -> Self {
        IsolateOptions {
            worker: None,
            hard_timeout: Duration::from_secs(30),
            ready_timeout: Duration::from_secs(10),
            restart_budget: 256,
            poison_attempts: 1,
        }
    }
}

/// Everything that governs one supervised job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Wall-clock / max-pairs budget (default: unlimited).
    pub budget: Budget,
    /// Cooperative cancellation (default: a fresh, never-cancelled
    /// token — keep a clone to cancel from outside).
    pub cancel: CancelToken,
    /// Per-cell and chunk-backstop retry policy.
    pub retry: RetryPolicy,
    /// Worker threads; `0` = automatic ([`sts_runtime::thread_count`],
    /// which honors the `STS_THREADS` env override).
    pub threads: usize,
    /// Pairs per scheduling chunk — the granularity of cancellation
    /// checks, retries and checkpoint records.
    pub chunk_pairs: usize,
    /// Per-chunk soft timeout for the watchdog (default: none).
    pub soft_timeout: Option<Duration>,
    /// Periodic checkpointing (default: none).
    pub checkpoint: Option<CheckpointConfig>,
    /// Failpoint-style fault injection, consulted before every scoring
    /// attempt — how the chaos suite drives panicking and slow cells
    /// through a real job (default: none; production jobs pay one
    /// `Option` check per cell).
    pub fault: Option<FaultPlan>,
    /// Attach a [`Telemetry`] section to the [`JobReport`]: the global
    /// metrics-registry delta over the job's lifetime (zero-valued
    /// instruments dropped). In a process running concurrent jobs the
    /// delta includes their overlap — the registry is process-wide.
    pub telemetry: bool,
    /// In-process thread pool or supervised worker subprocesses
    /// (default: in-process).
    pub exec: ExecMode,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
            retry: RetryPolicy::default(),
            threads: 0,
            chunk_pairs: 64,
            soft_timeout: None,
            checkpoint: None,
            fault: None,
            telemetry: false,
            exec: ExecMode::InProcess,
        }
    }
}

impl JobConfig {
    /// The legacy degraded-mode contract: unlimited, no retries (first
    /// panic is terminal and reported as [`PairOutcome::Panicked`]),
    /// no checkpoint.
    pub(crate) fn legacy_degraded() -> Self {
        JobConfig {
            retry: RetryPolicy::none(),
            ..JobConfig::default()
        }
    }
}

/// Errors starting or persisting a supervised job. Only the
/// checkpoint path can produce these; a job without checkpointing
/// never fails — it degrades.
#[derive(Debug)]
pub enum JobError {
    /// The checkpoint file exists but cannot be parsed.
    Checkpoint(CheckpointError),
    /// The checkpoint belongs to different inputs (grid or
    /// trajectories changed since it was written).
    FingerprintMismatch {
        /// Fingerprint of the current inputs.
        expected: u64,
        /// Fingerprint recorded in the checkpoint file.
        found: u64,
    },
    /// The checkpoint's matrix dimensions do not match the job's.
    DimsMismatch {
        /// `(rows, cols)` of the current job.
        expected: (usize, usize),
        /// `(rows, cols)` recorded in the checkpoint file.
        found: (usize, usize),
    },
    /// [`ExecMode::Subprocess`] was requested but the measure was
    /// built around trait objects or a training corpus, which cannot
    /// be serialized into a worker preamble.
    SubprocessUnsupported,
    /// [`ExecMode::Subprocess`] was requested but the worker
    /// executable does not exist at the resolved path.
    WorkerMissing {
        /// The path that was probed.
        path: PathBuf,
    },
    /// The tiled engine was asked to run with an unusable
    /// [`TileConfig`](crate::TileConfig) — a zero tile size (which
    /// would schedule forever without progressing) or a checkpoint
    /// config (tiles *are* the checkpoint; combining both would
    /// double-write every cell).
    InvalidTiling(String),
    /// The tile directory could not be created or scanned.
    TileDir(std::io::Error),
    /// [`ExecMode::Sharded`] was requested outside the tiled engine.
    /// Sharding deals *tiles* to workers; without tiling there is
    /// nothing to lease.
    ShardRequiresTiling,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Checkpoint(e) => write!(f, "cannot resume: {e}"),
            JobError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:016x} does not match job inputs {expected:016x} \
                 (grid or trajectories changed since the checkpoint was written)"
            ),
            JobError::DimsMismatch { expected, found } => write!(
                f,
                "checkpoint is {}x{} but the job is {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            JobError::SubprocessUnsupported => write!(
                f,
                "subprocess execution needs a pure-config measure (Sts::new or the NoNoise \
                 variant); custom noise/transition models cannot be described to a worker"
            ),
            JobError::WorkerMissing { path } => {
                write!(f, "worker executable not found at {}", path.display())
            }
            JobError::InvalidTiling(why) => write!(f, "invalid tile config: {why}"),
            JobError::TileDir(e) => write!(f, "tile directory unusable: {e}"),
            JobError::ShardRequiresTiling => write!(
                f,
                "sharded execution distributes tiles and needs the tiled engine \
                 (similarity_matrix_tiled); use Subprocess for untiled supervision"
            ),
        }
    }
}

impl std::error::Error for JobError {}

impl From<CheckpointError> for JobError {
    fn from(e: CheckpointError) -> Self {
        JobError::Checkpoint(e)
    }
}

/// The full report of a supervised job: the data-quality half
/// ([`BatchReport`]: quarantines, per-cell failures) plus the runtime
/// half ([`JobStats`]: state, timing, retries, completion).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Quarantined trajectories and failed/panicked pairs.
    pub batch: BatchReport,
    /// Lifecycle accounting.
    pub stats: JobStats,
    /// What the job recorded in the metrics registry, when
    /// [`JobConfig::telemetry`] was set (see [`Telemetry`]).
    pub telemetry: Option<Telemetry>,
}

impl JobReport {
    /// Terminal state of the job.
    pub fn state(&self) -> JobState {
        self.stats.state
    }

    /// Did every pair get a terminal outcome (no skips)?
    pub fn is_complete(&self) -> bool {
        self.stats.pairs_skipped == 0
    }

    /// Fraction of the matrix with a terminal outcome, in percent.
    pub fn percent_complete(&self) -> f64 {
        self.stats.percent_complete()
    }
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; {}", self.stats, self.batch)?;
        if let Some(t) = &self.telemetry {
            write!(f, "; {t}")?;
        }
        Ok(())
    }
}

/// Binds a checkpoint to its job inputs: grid geometry plus the shape
/// (length, first/last point) of every trajectory. Deliberately *not*
/// the full point data — hashing millions of points per flush would
/// tax the hot path — so resuming with a corpus edited in place
/// between identical endpoints is undetected; the documented contract
/// is "same files, same grid, same order".
pub(crate) fn job_fingerprint(
    grid: &Grid,
    queries: &[Trajectory],
    candidates: &[Trajectory],
) -> u64 {
    let qs: Vec<TrajShape> = queries.iter().map(traj_shape).collect();
    let cs: Vec<TrajShape> = candidates.iter().map(traj_shape).collect();
    fingerprint_shapes(grid, &qs, &cs)
}

/// One trajectory as the fingerprint sees it: length plus first/last
/// point. A worker can reconstruct these from decoded preamble frames
/// without holding full [`Trajectory`] values, so the handshake
/// fingerprint check shares this exact hash with the checkpoint path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TrajShape {
    pub len: u64,
    pub first: [f64; 3],
    pub last: [f64; 3],
}

pub(crate) fn traj_shape(t: &Trajectory) -> TrajShape {
    let (first, last) = (t.get(0), t.get(t.len() - 1));
    TrajShape {
        len: t.len() as u64,
        first: [first.loc.x, first.loc.y, first.t],
        last: [last.loc.x, last.loc.y, last.t],
    }
}

/// The single fingerprint implementation — [`job_fingerprint`] and the
/// worker's handshake verification both call this, so they cannot
/// drift apart.
pub(crate) fn fingerprint_shapes(
    grid: &Grid,
    queries: &[TrajShape],
    candidates: &[TrajShape],
) -> u64 {
    let mut h = Fnv1a::new();
    let area = grid.area();
    for v in [
        area.min().x,
        area.min().y,
        area.max().x,
        area.max().y,
        grid.cell_size(),
    ] {
        h.write_f64(v);
    }
    for side in [queries, candidates] {
        h.write_u64(side.len() as u64);
        for s in side {
            h.write_u64(s.len);
            for p in [s.first, s.last] {
                h.write_f64(p[0]);
                h.write_f64(p[1]);
                h.write_f64(p[2]);
            }
        }
    }
    h.finish()
}

/// Is this outcome terminal for resume purposes (never recomputed)?
pub(crate) fn is_terminal(cell: &PairOutcome) -> bool {
    !matches!(cell, PairOutcome::Skipped)
}

pub(crate) fn to_record(cell: &PairOutcome) -> Option<CellRecord> {
    match cell {
        PairOutcome::Score(s) => Some(CellRecord::Score(*s)),
        PairOutcome::Failed { attempts } => Some(CellRecord::Failed {
            attempts: *attempts,
        }),
        PairOutcome::Panicked => Some(CellRecord::Panicked),
        // Poison is checkpointed: a resumed job must NOT rediscover a
        // poison pair by feeding it to (and losing) another worker.
        PairOutcome::Poisoned { exit } => Some(CellRecord::Poisoned { exit: *exit }),
        // Quarantine is re-derived from preparation on resume; Skipped
        // is by definition not terminal.
        PairOutcome::Quarantined | PairOutcome::Skipped => None,
    }
}

pub(crate) fn from_record(rec: CellRecord) -> PairOutcome {
    match rec {
        CellRecord::Score(s) => PairOutcome::Score(s),
        CellRecord::Failed { attempts } => PairOutcome::Failed { attempts },
        CellRecord::Panicked => PairOutcome::Panicked,
        CellRecord::Poisoned { exit } => PairOutcome::Poisoned { exit },
    }
}

impl Sts {
    /// The supervised `queries × candidates` similarity matrix: the
    /// degraded-mode guarantees of
    /// [`similarity_matrix_degraded`](Sts::similarity_matrix_degraded)
    /// plus deadlines, cancellation, retries and checkpoint/resume —
    /// see the [module docs](crate::job).
    ///
    /// Never panics and never loses completed work: whatever stops the
    /// job (deadline, budget, cancel, per-cell failures), every
    /// completed cell is returned and the [`JobReport`] says exactly
    /// what happened. `Err` is only possible when
    /// [`JobConfig::checkpoint`] is set and the existing checkpoint
    /// cannot be used (parse error, fingerprint/dims mismatch).
    pub fn similarity_matrix_supervised(
        &self,
        queries: &[Trajectory],
        candidates: &[Trajectory],
        cfg: &JobConfig,
    ) -> Result<(Vec<Vec<PairOutcome>>, JobReport), JobError> {
        let started = Instant::now();
        let _job_span = trace::span("job.run");
        if matches!(cfg.exec, ExecMode::Sharded(_)) {
            return Err(JobError::ShardRequiresTiling);
        }
        let metrics_base = cfg.telemetry.then(|| sts_obs::metrics::global().snapshot());
        let space = PairSpace::new(queries.len(), candidates.len());
        let mut batch = BatchReport::default();

        // A job with no budget at all returns before preparing
        // anything: "0-pair budget" must mean *immediately*, not
        // "after an O(n) preparation pass".
        if let Some(reason) = check_start(cfg) {
            let cells = vec![PairOutcome::Skipped; space.len()];
            let stats = stats_from(&space, &cells, 0, JobState::from_run(Some(reason), false));
            return Ok((
                reshape(cells, &space),
                JobReport {
                    batch,
                    stats: JobStats {
                        elapsed: started.elapsed(),
                        ..stats
                    },
                    telemetry: job_telemetry(metrics_base.as_ref()),
                },
            ));
        }

        let (prepared_q, prepared_c) = {
            let _span = trace::span("job.prepare");
            (
                prepare_all(self, queries, &mut batch.quarantined_queries),
                prepare_all(self, candidates, &mut batch.quarantined_candidates),
            )
        };

        // Resume: restore terminal cells from an existing checkpoint.
        let fingerprint = job_fingerprint(self.grid(), queries, candidates);
        let mut cells: Vec<PairOutcome> = vec![PairOutcome::Skipped; space.len()];
        let mut pairs_resumed = 0usize;
        if let Some(ck) = &cfg.checkpoint {
            if ck.path.exists() {
                let _span = trace::span("job.resume");
                let cp = load_checkpoint(&ck.path)?;
                if cp.fingerprint != fingerprint {
                    return Err(JobError::FingerprintMismatch {
                        expected: fingerprint,
                        found: cp.fingerprint,
                    });
                }
                if (cp.rows, cp.cols) != (space.rows(), space.cols()) {
                    return Err(JobError::DimsMismatch {
                        expected: (space.rows(), space.cols()),
                        found: (cp.rows, cp.cols),
                    });
                }
                for (i, j, rec) in cp.cells {
                    let outcome = from_record(rec);
                    // The quarantine list survives the round-trip: a
                    // resumed report names its poison pairs exactly
                    // like the run that discovered them did.
                    if let PairOutcome::Poisoned { exit } = &outcome {
                        batch.poisoned_pairs.push((i, j, *exit));
                    }
                    cells[i * space.cols() + j] = outcome;
                    pairs_resumed += 1;
                }
                sts_obs::static_counter!("core.job.pairs_resumed").add(pairs_resumed as u64);
            }
        }
        let done: Vec<bool> = cells.iter().map(is_terminal).collect();

        // Subprocess execution takes over from here: same quarantine,
        // fingerprint and resume semantics, different engine.
        if let ExecMode::Subprocess(opts) = &cfg.exec {
            return self.similarity_matrix_subprocess(SubprocessArgs {
                queries,
                candidates,
                cfg,
                opts,
                space: &space,
                cells,
                done,
                batch,
                fingerprint,
                pairs_resumed,
                started,
                metrics_base,
            });
        }

        // Chunks fully covered by the checkpoint are never queued.
        let chunks: Vec<PairChunk> = space
            .chunks(cfg.chunk_pairs)
            .filter(|c| c.range().any(|lin| !done[lin]))
            .collect();

        let cell_retries = AtomicU64::new(0);
        let work =
            |scratch: &mut crate::StpScratch, chunk: &PairChunk| -> Vec<(usize, PairOutcome)> {
                let mut out = Vec::with_capacity(chunk.len);
                for lin in chunk.range() {
                    if done[lin] {
                        continue;
                    }
                    let (i, j) = space.pair(lin);
                    out.push((
                        lin,
                        self.score_cell_retrying(
                            prepared_q[i].as_ref(),
                            prepared_c[j].as_ref(),
                            cfg,
                            lin,
                            &cell_retries,
                            scratch,
                        ),
                    ));
                }
                out
            };

        let pool_cfg = PoolConfig {
            threads: cfg.threads,
            retry: cfg.retry,
            soft_timeout: cfg.soft_timeout,
            budget: cfg.budget,
            cancel: cfg.cancel.clone(),
        };
        let mut flush_pending = 0usize;
        let mut flushes = 0usize;
        let mut flush_errors = 0usize;
        let run = run_supervised_with(
            &chunks,
            &pool_cfg,
            |_slot| crate::StpScratch::new(),
            work,
            |_chunk, computed| {
                for (lin, outcome) in computed {
                    cells[lin] = outcome;
                }
                if let Some(ck) = &cfg.checkpoint {
                    flush_pending += 1;
                    if flush_pending >= ck.flush_every_chunks.max(1) {
                        flush_pending = 0;
                        trace::event("job.checkpoint_flush", flushes as f64 + 1.0);
                        match save_checkpoint(&ck.path, &snapshot(fingerprint, &space, &cells)) {
                            Ok(()) => flushes += 1,
                            Err(_) => flush_errors += 1,
                        }
                    }
                }
            },
        );

        // Pool-level backstop: cells of a terminally failed chunk that
        // never produced outcomes become Failed (or Panicked under the
        // legacy no-retry contract).
        for (idx, status) in run.statuses.iter().enumerate() {
            if let ChunkStatus::Failed { attempts } = status {
                for lin in chunks[idx].range() {
                    if !done[lin] && !is_terminal(&cells[lin]) {
                        cells[lin] = if cfg.retry.max_retries == 0 {
                            PairOutcome::Panicked
                        } else {
                            PairOutcome::Failed {
                                attempts: *attempts,
                            }
                        };
                    }
                }
            }
        }

        // Final flush so a later resume (or post-mortem) sees the
        // job's full terminal knowledge, whatever stopped it.
        if let Some(ck) = &cfg.checkpoint {
            match save_checkpoint(&ck.path, &snapshot(fingerprint, &space, &cells)) {
                Ok(()) => flushes += 1,
                Err(_) => flush_errors += 1,
            }
        }

        // Fold per-cell outcomes into the batch report.
        for (lin, cell) in cells.iter().enumerate() {
            match cell {
                PairOutcome::Panicked => batch.panicked_pairs.push(space.pair(lin)),
                PairOutcome::Failed { .. } => batch.failed_pairs.push(space.pair(lin)),
                _ => {}
            }
        }

        let any_failed = !batch.failed_pairs.is_empty() || !batch.panicked_pairs.is_empty();
        let mut stats = stats_from(
            &space,
            &cells,
            pairs_resumed,
            JobState::from_run(run.stop, any_failed),
        );
        stats.elapsed = started.elapsed();
        stats.chunks_total = chunks.len();
        stats.chunks_completed = run
            .statuses
            .iter()
            .filter(|s| **s == ChunkStatus::Completed)
            .count();
        stats.chunks_failed = run
            .statuses
            .iter()
            .filter(|s| matches!(s, ChunkStatus::Failed { .. }))
            .count();
        stats.chunks_skipped = run
            .statuses
            .iter()
            .filter(|s| matches!(s, ChunkStatus::Skipped(_)))
            .count();
        stats.retries = run.retries + cell_retries.into_inner();
        stats.slow_chunks = run.slow_chunks;
        stats.checkpoint_flushes = flushes;
        stats.checkpoint_write_errors = flush_errors;
        stats.chunk_wait_total = run.chunk_wait;
        stats.chunk_run_total = run.chunk_run;

        Ok((
            reshape(cells, &space),
            JobReport {
                batch,
                stats,
                telemetry: job_telemetry(metrics_base.as_ref()),
            },
        ))
    }

    /// The [`ExecMode::Subprocess`] engine: deals the pending pairs to
    /// a supervised fleet of `sts-worker` subprocesses and folds their
    /// results — and the crash-attribution verdicts — back into the
    /// same cells/report structures the in-process engine fills.
    fn similarity_matrix_subprocess(
        &self,
        args: SubprocessArgs<'_>,
    ) -> Result<(Vec<Vec<PairOutcome>>, JobReport), JobError> {
        let SubprocessArgs {
            queries,
            candidates,
            cfg,
            opts,
            space,
            mut cells,
            done,
            mut batch,
            fingerprint,
            pairs_resumed,
            started,
            metrics_base,
        } = args;
        let spec = self.measure_spec().ok_or(JobError::SubprocessUnsupported)?;
        let program = opts
            .worker
            .clone()
            .unwrap_or_else(worker::default_worker_path);
        if !program.is_file() {
            return Err(JobError::WorkerMissing { path: program });
        }
        let _span = trace::span("job.subprocess");
        let preamble =
            worker::encode_preamble(spec, self.grid(), cfg, space, queries, candidates, 0);
        let chunks = pending_chunks(&done, cfg.chunk_pairs);
        let iso = IsolateConfig {
            worker: WorkerSpec {
                program,
                args: vec!["serve".to_string()],
                envs: Vec::new(),
            },
            workers: cfg.threads,
            hard_timeout: opts.hard_timeout,
            ready_timeout: opts.ready_timeout,
            restart_budget: opts.restart_budget,
            poison_attempts: opts.poison_attempts,
            budget: cfg.budget,
            cancel: cfg.cancel.clone(),
            ..IsolateConfig::default()
        };

        let mut flush_pending = 0usize;
        let mut flushes = 0usize;
        let mut flush_errors = 0usize;
        let run = sts_isolate::supervise(&chunks, &iso, &preamble, |_chunk, payload| {
            // The supervisor validated the framing; a payload that is
            // not a record set would be a worker bug — leave those
            // cells skipped rather than guessing.
            let Some(parsed) = worker::decode_result_payload(payload) else {
                return;
            };
            for (lin, outcome) in parsed {
                if lin < cells.len() {
                    cells[lin] = outcome;
                }
            }
            if let Some(ck) = &cfg.checkpoint {
                flush_pending += 1;
                if flush_pending >= ck.flush_every_chunks.max(1) {
                    flush_pending = 0;
                    trace::event("job.checkpoint_flush", flushes as f64 + 1.0);
                    match save_checkpoint(&ck.path, &snapshot(fingerprint, space, &cells)) {
                        Ok(()) => flushes += 1,
                        Err(_) => flush_errors += 1,
                    }
                }
            }
        });

        // Crash-attribution verdicts: quarantine each poison pair with
        // its worker's exit, in deterministic (ascending-lin) order.
        for p in &run.poisoned {
            if p.lin < cells.len() {
                cells[p.lin] = PairOutcome::Poisoned { exit: p.exit };
                let (i, j) = space.pair(p.lin);
                batch.poisoned_pairs.push((i, j, p.exit));
            }
        }

        // Final flush: poison verdicts land only after the supervisor
        // returns, so this is what makes them resume-proof.
        if let Some(ck) = &cfg.checkpoint {
            match save_checkpoint(&ck.path, &snapshot(fingerprint, space, &cells)) {
                Ok(()) => flushes += 1,
                Err(_) => flush_errors += 1,
            }
        }

        for (lin, cell) in cells.iter().enumerate() {
            match cell {
                PairOutcome::Panicked => batch.panicked_pairs.push(space.pair(lin)),
                PairOutcome::Failed { .. } => batch.failed_pairs.push(space.pair(lin)),
                _ => {}
            }
        }

        let any_failed = !batch.failed_pairs.is_empty()
            || !batch.panicked_pairs.is_empty()
            || !batch.poisoned_pairs.is_empty();
        let mut stats = stats_from(
            space,
            &cells,
            pairs_resumed,
            JobState::from_run(run.stop, any_failed),
        );
        stats.elapsed = started.elapsed();
        stats.chunks_total = chunks.len();
        stats.chunks_completed = chunks
            .iter()
            .filter(|c| c.range().all(|lin| is_terminal(&cells[lin])))
            .count();
        stats.chunks_skipped = chunks.len() - stats.chunks_completed;
        stats.checkpoint_flushes = flushes;
        stats.checkpoint_write_errors = flush_errors;
        stats.isolate = Some(IsolateStats {
            workers_spawned: run.workers_spawned,
            worker_restarts: run.worker_restarts,
            worker_kills: run.worker_kills,
            protocol_errors: run.protocol_errors,
            pairs_poisoned: run.poisoned.len(),
            max_bisect_depth: run.max_bisect_depth,
        });

        Ok((
            reshape(cells, space),
            JobReport {
                batch,
                stats,
                telemetry: job_telemetry(metrics_base.as_ref()),
            },
        ))
    }

    /// Supervised top-k: ranks every scorable candidate under the same
    /// budget/cancellation/retry/checkpoint regime as
    /// [`similarity_matrix_supervised`](Sts::similarity_matrix_supervised)
    /// (the query is row 0 of a `1 × candidates` job). Skipped,
    /// quarantined and failed candidates are excluded from the ranking
    /// — the report says which and why.
    pub fn top_k_supervised(
        &self,
        query: &Trajectory,
        candidates: &[Trajectory],
        k: usize,
        cfg: &JobConfig,
    ) -> Result<(Vec<(usize, f64)>, JobReport), JobError> {
        let (matrix, report) =
            self.similarity_matrix_supervised(std::slice::from_ref(query), candidates, cfg)?;
        let mut scored: Vec<(usize, f64)> = matrix[0]
            .iter()
            .enumerate()
            .filter_map(|(j, cell)| cell.score().map(|s| (j, s)))
            .collect();
        sort_scores_descending(&mut scored);
        scored.truncate(k);
        Ok((scored, report))
    }

    /// Scores one cell with per-cell panic containment and retries.
    /// The jitter is seeded by the cell's linear index, so a replayed
    /// job backs off through the same schedule. The fault hook runs
    /// inside the containment, before the real work, so injected
    /// panics take exactly the retry path a genuine panic would.
    /// `scratch` is the calling worker's reusable arena; its buffers
    /// are cleared on entry, so reuse after a caught panic is safe.
    pub(crate) fn score_cell_retrying(
        &self,
        q: Option<&PreparedTrajectory>,
        c: Option<&PreparedTrajectory>,
        cfg: &JobConfig,
        lin: usize,
        retries: &AtomicU64,
        scratch: &mut crate::StpScratch,
    ) -> PairOutcome {
        let (Some(q), Some(c)) = (q, c) else {
            return PairOutcome::Quarantined;
        };
        let retry = &cfg.retry;
        let mut jitter = DecorrelatedJitter::new(
            retry.backoff_base,
            retry.backoff_cap,
            retry.seed ^ (lin as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        let mut attempts = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| {
                if let Some(plan) = &cfg.fault {
                    plan.apply(lin, attempts);
                }
                self.similarity_prepared_with(q, c, scratch)
            })) {
                Ok(s) => return PairOutcome::Score(s),
                Err(_) => {
                    attempts += 1;
                    if attempts > retry.max_retries {
                        return if retry.max_retries == 0 {
                            PairOutcome::Panicked
                        } else {
                            PairOutcome::Failed { attempts }
                        };
                    }
                    retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(jitter.next_delay());
                }
            }
        }
    }
}

/// Everything [`Sts::similarity_matrix_subprocess`] inherits from the
/// shared front half of the supervised job (one struct, because twelve
/// positional arguments help nobody).
struct SubprocessArgs<'a> {
    queries: &'a [Trajectory],
    candidates: &'a [Trajectory],
    cfg: &'a JobConfig,
    opts: &'a IsolateOptions,
    space: &'a PairSpace,
    cells: Vec<PairOutcome>,
    done: Vec<bool>,
    batch: BatchReport,
    fingerprint: u64,
    pairs_resumed: usize,
    started: Instant,
    metrics_base: Option<sts_obs::Snapshot>,
}

/// Chunks covering exactly the not-yet-terminal linear indices:
/// maximal contiguous runs of pending pairs, split at `chunk_pairs`.
/// Unlike the in-process path (whose work closure skips done pairs
/// cell-by-cell), a subprocess worker scores every pair it is sent —
/// so resumed-terminal pairs, checkpointed poison above all, must
/// never appear in a chunk.
fn pending_chunks(done: &[bool], chunk_pairs: usize) -> Vec<PairChunk> {
    let size = chunk_pairs.max(1);
    let mut chunks = Vec::new();
    let mut lin = 0;
    while lin < done.len() {
        if done[lin] {
            lin += 1;
            continue;
        }
        let mut end = lin;
        while end < done.len() && !done[end] && end - lin < size {
            end += 1;
        }
        chunks.push(PairChunk {
            id: chunks.len(),
            start: lin,
            len: end - lin,
        });
        lin = end;
    }
    chunks
}

/// The report's telemetry section: the global-registry delta since the
/// job-start snapshot, zero-valued instruments dropped. `None` when
/// telemetry was not requested.
pub(crate) fn job_telemetry(base: Option<&sts_obs::Snapshot>) -> Option<Telemetry> {
    base.map(|base| Telemetry {
        metrics: sts_obs::metrics::global()
            .snapshot()
            .since(base)
            .without_zeros(),
    })
}

/// Does the config stop a job before any work at all?
pub(crate) fn check_start(cfg: &JobConfig) -> Option<sts_runtime::StopReason> {
    if cfg.cancel.is_cancelled() {
        return Some(sts_runtime::StopReason::Cancelled);
    }
    cfg.budget.check(0)
}

/// The checkpoint snapshot of the current cell state.
fn snapshot(fingerprint: u64, space: &PairSpace, cells: &[PairOutcome]) -> Checkpoint {
    Checkpoint {
        fingerprint,
        rows: space.rows(),
        cols: space.cols(),
        cells: cells
            .iter()
            .enumerate()
            .filter_map(|(lin, cell)| {
                to_record(cell).map(|rec| {
                    let (i, j) = space.pair(lin);
                    (i, j, rec)
                })
            })
            .collect(),
    }
}

/// Pair-level accounting common to every exit path.
pub(crate) fn stats_from(
    space: &PairSpace,
    cells: &[PairOutcome],
    pairs_resumed: usize,
    state: JobState,
) -> JobStats {
    let pairs_skipped = cells
        .iter()
        .filter(|c| matches!(c, PairOutcome::Skipped))
        .count();
    let pairs_failed = cells
        .iter()
        .filter(|c| {
            matches!(
                c,
                PairOutcome::Failed { .. } | PairOutcome::Panicked | PairOutcome::Poisoned { .. }
            )
        })
        .count();
    JobStats {
        state,
        elapsed: Duration::ZERO,
        pairs_total: space.len(),
        pairs_completed: space.len() - pairs_skipped,
        pairs_failed,
        pairs_skipped,
        pairs_resumed,
        chunks_total: 0,
        chunks_completed: 0,
        chunks_failed: 0,
        chunks_skipped: 0,
        retries: 0,
        slow_chunks: Vec::new(),
        checkpoint_flushes: 0,
        checkpoint_write_errors: 0,
        chunk_wait_total: Duration::ZERO,
        chunk_run_total: Duration::ZERO,
        isolate: None,
        tiles: None,
        shard: None,
    }
}

/// Flat row-major cells into `Vec<Vec<_>>` rows.
pub(crate) fn reshape(cells: Vec<PairOutcome>, space: &PairSpace) -> Vec<Vec<PairOutcome>> {
    let cols = space.cols();
    if cols == 0 {
        return vec![Vec::new(); space.rows()];
    }
    let mut rows = Vec::with_capacity(space.rows());
    let mut it = cells.into_iter();
    for _ in 0..space.rows() {
        rows.push(it.by_ref().take(cols).collect());
    }
    rows
}
