//! The STS measure (paper §V-B, Eq. 10) and its ablation variants.
//!
//! `STS(Tra, Tra')` is the average co-location probability over all
//! timestamps of both trajectories (the merged trajectory of §III-B).
//! Averaging — rather than summing — removes the dependence on trajectory
//! length, which varies freely under sporadic sampling.

use crate::colocation::{colocation_of, colocation_sparse};
use crate::dist::SparseDistribution;
use crate::noise::{DeterministicNoise, GaussianNoise, NoiseModel};
use crate::stpcache::{soa_to_dist, StpCache, MAX_LATTICE_POINTS};
use crate::stprob::StpEstimator;
use crate::transition::{
    BrownianTransition, FrequencyTransition, SpeedKdeTransition, TransitionModel,
};
use crate::StsError;
use crate::{StpCacheMode, StpScratch};
use std::sync::{Arc, Mutex};
use sts_geo::Grid;
use sts_obs::{static_counter, trace};
use sts_runtime::PairSpace;
use sts_stats::Kernel;
use sts_traj::Trajectory;

/// Tuning knobs of the measure. The grid is passed separately (it is
/// dataset-scale, not a tuning constant).
#[derive(Debug, Clone)]
pub struct StsConfig {
    /// Location-noise standard deviation σ of Eq. 3, meters. The paper
    /// suggests setting the grid size to the localization error; σ plays
    /// that role here.
    pub noise_sigma: f64,
    /// KDE kernel for the personalized speed model (paper: Gaussian).
    pub kernel: Kernel,
    /// Gaussian-noise truncation multiple (`None` = evaluate every cell:
    /// the faithful dense computation).
    pub truncation_k: Option<f64>,
    /// How STP distributions are evaluated and reused when scoring
    /// pairs (see [`StpCacheMode`]). The default, `Exact`, is
    /// bit-identical to the uncached reference path.
    pub cache: StpCacheMode,
}

impl Default for StsConfig {
    fn default() -> Self {
        StsConfig {
            noise_sigma: 3.0,
            kernel: Kernel::Gaussian,
            truncation_k: Some(GaussianNoise::DEFAULT_TRUNCATION_K),
            cache: StpCacheMode::default(),
        }
    }
}

/// The ablation variants of §VI-C ("Effectiveness of each component").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StsVariant {
    /// Full STS: Gaussian location noise + personalized speed KDE.
    #[default]
    Full,
    /// `STS-N`: locations are deterministic points (no noise model).
    NoNoise,
    /// `STS-G`: one global speed distribution pooled over all objects.
    GlobalSpeed,
    /// `STS-F`: frequency-based grid transition learned from all objects.
    FrequencyBased,
}

impl StsVariant {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            StsVariant::Full => "STS",
            StsVariant::NoNoise => "STS-N",
            StsVariant::GlobalSpeed => "STS-G",
            StsVariant::FrequencyBased => "STS-F",
        }
    }
}

/// How the transition model is obtained for a trajectory.
enum TransitionSource {
    /// Build a personalized speed KDE from the trajectory itself (§IV-B).
    Personalized { kernel: Kernel },
    /// One shared model for every object (`STS-G`, `STS-F`, Brownian).
    Shared(Arc<dyn TransitionModel>),
}

/// How an [`Sts`] was constructed, when that construction is pure
/// config — the information a worker subprocess needs to rebuild the
/// identical measure from a preamble. Measures built around arbitrary
/// trait objects ([`Sts::with_noise_model`],
/// [`Sts::with_shared_transition`]) or trained on a corpus (`STS-G`,
/// `STS-F`) carry no spec and cannot run under
/// [`crate::job::ExecMode::Subprocess`].
#[derive(Debug, Clone)]
pub(crate) enum MeasureSpec {
    /// [`Sts::new`]: Gaussian noise + personalized speed KDE.
    Full(StsConfig),
    /// [`StsVariant::NoNoise`]: deterministic locations.
    NoNoise(StsConfig),
}

/// A trajectory with its per-trajectory model state precomputed: the
/// transition model and the noise distribution of each observation.
/// Preparing once and reusing across pairs is what makes `n × n`
/// similarity matrices affordable.
pub struct PreparedTrajectory {
    traj: Trajectory,
    transition: Arc<dyn TransitionModel>,
    obs_dists: Vec<SparseDistribution>,
    /// Per-trajectory STP cache shared by every pair this trajectory
    /// participates in (interior mutability; see `stpcache` docs).
    cache: StpCache,
}

impl PreparedTrajectory {
    /// The underlying trajectory.
    #[inline]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// The cached STP distribution at exactly `t`, if this trajectory's
    /// cache holds one (an exact copy of what `stp(t)` returned when the
    /// entry was filled). `None` means the timestamp was never evaluated
    /// through the cached scoring path — this accessor never computes.
    pub fn cached_stp(&self, t: f64) -> Option<SparseDistribution> {
        let reader = self.cache.read();
        let (ids, probs) = reader.get(t)?;
        Some(soa_to_dist(ids, probs))
    }

    /// Number of timestamps currently cached for this trajectory.
    pub fn cached_timestamps(&self) -> usize {
        self.cache.read().timestamps()
    }
}

/// The STS spatial-temporal similarity measure.
pub struct Sts {
    grid: Grid,
    noise: Arc<dyn NoiseModel>,
    transition: TransitionSource,
    spec: Option<MeasureSpec>,
    cache: StpCacheMode,
}

impl Sts {
    /// Full STS (Gaussian noise + personalized speed model).
    pub fn new(config: StsConfig, grid: Grid) -> Self {
        Sts {
            grid,
            noise: Arc::new(GaussianNoise::with_truncation(
                config.noise_sigma,
                config.truncation_k,
            )),
            transition: TransitionSource::Personalized {
                kernel: config.kernel,
            },
            cache: config.cache,
            spec: Some(MeasureSpec::Full(config)),
        }
    }

    /// Builds one of the paper's variants. `corpus` provides the
    /// "historical data of all objects" that the non-personalized
    /// variants (`STS-G`, `STS-F`) learn from; `Full` and `NoNoise`
    /// ignore it.
    pub fn variant(
        config: StsConfig,
        grid: Grid,
        variant: StsVariant,
        corpus: &[Trajectory],
    ) -> Result<Self, StsError> {
        let gaussian: Arc<dyn NoiseModel> = Arc::new(GaussianNoise::with_truncation(
            config.noise_sigma,
            config.truncation_k,
        ));
        Ok(match variant {
            StsVariant::Full => Sts::new(config, grid),
            StsVariant::NoNoise => Sts {
                grid,
                noise: Arc::new(DeterministicNoise),
                transition: TransitionSource::Personalized {
                    kernel: config.kernel,
                },
                cache: config.cache,
                spec: Some(MeasureSpec::NoNoise(config)),
            },
            StsVariant::GlobalSpeed => {
                let global =
                    SpeedKdeTransition::global_from_trajectories(corpus.iter(), config.kernel)?
                        .with_position_uncertainty(grid.cell_size() / 2.0);
                Sts {
                    grid,
                    noise: gaussian,
                    transition: TransitionSource::Shared(Arc::new(global)),
                    spec: None,
                    cache: config.cache,
                }
            }
            StsVariant::FrequencyBased => {
                let freq = FrequencyTransition::from_trajectories(grid.clone(), corpus.iter(), 0.1);
                Sts {
                    grid,
                    noise: gaussian,
                    transition: TransitionSource::Shared(Arc::new(freq)),
                    spec: None,
                    cache: config.cache,
                }
            }
        })
    }

    /// STS with an arbitrary noise model (the "any arbitrary probability
    /// distribution" claim of §IV-A).
    pub fn with_noise_model(grid: Grid, noise: Arc<dyn NoiseModel>, kernel: Kernel) -> Self {
        Sts {
            grid,
            noise,
            transition: TransitionSource::Personalized { kernel },
            spec: None,
            cache: StpCacheMode::default(),
        }
    }

    /// STS with a shared transition model for all objects (e.g. the
    /// Brownian-motion model of the related-work comparison).
    pub fn with_shared_transition(
        config: StsConfig,
        grid: Grid,
        transition: Arc<dyn TransitionModel>,
    ) -> Self {
        Sts {
            grid,
            noise: Arc::new(GaussianNoise::with_truncation(
                config.noise_sigma,
                config.truncation_k,
            )),
            transition: TransitionSource::Shared(transition),
            spec: None,
            cache: config.cache,
        }
    }

    /// Convenience: the Brownian special case (§II) — Gaussian noise plus
    /// a Gaussian random-walk transition with the given diffusion.
    pub fn brownian(config: StsConfig, grid: Grid, diffusion: f64) -> Self {
        let b = BrownianTransition::new(diffusion);
        Self::with_shared_transition(config, grid, Arc::new(b))
    }

    /// The grid partition in use.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The pure-config construction recipe, when one exists — what the
    /// subprocess job path serializes into the worker preamble.
    pub(crate) fn measure_spec(&self) -> Option<&MeasureSpec> {
        self.spec.as_ref()
    }

    /// Precomputes the per-trajectory model state. Fails when the
    /// personalized speed model cannot be built (trajectory shorter than
    /// 2 points).
    pub fn prepare(&self, traj: &Trajectory) -> Result<PreparedTrajectory, StsError> {
        let _span = trace::span("sts.prepare");
        static_counter!("core.trajectories.prepared").incr();
        let transition: Arc<dyn TransitionModel> = match &self.transition {
            TransitionSource::Personalized { kernel } => Arc::new(
                SpeedKdeTransition::from_trajectory(traj, *kernel)?
                    // Transitions are evaluated between cell centers;
                    // account for that quantization (see the
                    // `SpeedKdeTransition` docs).
                    .with_position_uncertainty(self.grid.cell_size() / 2.0),
            ),
            TransitionSource::Shared(model) => Arc::clone(model),
        };
        let obs_dists =
            StpEstimator::observation_distributions(&self.grid, self.noise.as_ref(), traj);
        Ok(PreparedTrajectory {
            traj: traj.clone(),
            transition,
            obs_dists,
            cache: StpCache::default(),
        })
    }

    fn estimator<'a>(&'a self, p: &'a PreparedTrajectory) -> StpEstimator<'a> {
        StpEstimator::with_observation_distributions(
            &self.grid,
            self.noise.as_ref(),
            p.transition.as_ref(),
            &p.traj,
            &p.obs_dists,
        )
    }

    /// The cache mode in effect for this measure.
    #[inline]
    pub fn cache_mode(&self) -> StpCacheMode {
        self.cache
    }

    /// Overrides the STP cache mode (and the embedded subprocess spec,
    /// so `ExecMode::Subprocess` workers score identically). Used by the
    /// differential suites to pit cached scoring against the
    /// [`StpCacheMode::Off`] reference on an otherwise identical
    /// measure.
    pub fn with_cache_mode(mut self, mode: StpCacheMode) -> Self {
        self.cache = mode;
        match &mut self.spec {
            Some(MeasureSpec::Full(cfg)) | Some(MeasureSpec::NoNoise(cfg)) => cfg.cache = mode,
            None => {}
        }
        self
    }

    /// `STS(Tra, Tra')` (Eq. 10): the average co-location probability
    /// over the merged timestamps of the two prepared trajectories.
    ///
    /// Ad-hoc entry point: allocates a fresh [`StpScratch`] per call.
    /// Matrix paths thread one scratch per worker through
    /// [`Sts::similarity_prepared_with`] instead.
    pub fn similarity_prepared(&self, a: &PreparedTrajectory, b: &PreparedTrajectory) -> f64 {
        let mut scratch = StpScratch::new();
        self.similarity_prepared_with(a, b, &mut scratch)
    }

    /// [`Sts::similarity_prepared`] with a caller-owned scratch arena —
    /// the hot-path form every worker loop uses. The scratch must not be
    /// shared across threads; the per-trajectory STP caches take care of
    /// cross-worker reuse.
    pub fn similarity_prepared_with(
        &self,
        a: &PreparedTrajectory,
        b: &PreparedTrajectory,
        scratch: &mut StpScratch,
    ) -> f64 {
        static_counter!("core.pairs.scored").incr();
        match self.cache {
            StpCacheMode::Off => self.similarity_uncached(a, b),
            StpCacheMode::Exact => self.similarity_cached(a, b, None, scratch),
            StpCacheMode::Lattice { dt } => self.similarity_cached(a, b, Some(dt), scratch),
        }
    }

    /// The uncached reference path (`StpCacheMode::Off`): re-evaluates
    /// both STP distributions at every merged timestamp, exactly as
    /// Algorithm 1 is written. The differential equivalence suite pins
    /// the cached paths against this oracle.
    fn similarity_uncached(&self, a: &PreparedTrajectory, b: &PreparedTrajectory) -> f64 {
        let ea = self.estimator(a);
        let eb = self.estimator(b);
        let ts = a.traj.merged_timestamps(&b.traj);
        debug_assert!(!ts.is_empty());
        // Timestamps outside the overlap of the two spans contribute 0
        // (Eq. 5) but still count in the average's denominator.
        let lo = a.traj.start_time().max(b.traj.start_time());
        let hi = a.traj.end_time().min(b.traj.end_time());
        let mut sum = 0.0;
        let mut i = 0;
        while i < ts.len() {
            let t = ts[i];
            // Duplicate timestamps (one per trajectory) contribute the
            // same CP value; compute once, weight by multiplicity.
            let mut mult = 1;
            while i + mult < ts.len() && ts[i + mult] == t {
                mult += 1;
            }
            if t >= lo && t <= hi {
                let cp = colocation_of(&ea.stp(t), &eb.stp(t));
                sum += cp * mult as f64;
            }
            i += mult;
        }
        sum / ts.len() as f64
    }

    /// The cached hot path: fill both trajectories' STP caches for the
    /// pair's evaluation times, then reduce to sparse dot products over
    /// the cached SoA slices. With `lattice_dt = None` the evaluation
    /// times are the merged timestamps inside the overlap window and the
    /// result is bit-identical to [`Sts::similarity_uncached`]; with a
    /// lattice period the times are the global lattice points in the
    /// window (see [`StpCacheMode::Lattice`]).
    fn similarity_cached(
        &self,
        a: &PreparedTrajectory,
        b: &PreparedTrajectory,
        lattice_dt: Option<f64>,
        scratch: &mut StpScratch,
    ) -> f64 {
        let lo = a.traj.start_time().max(b.traj.start_time());
        let hi = a.traj.end_time().min(b.traj.end_time());
        // Degenerate lattice periods fall back to exact evaluation.
        let lattice_dt = lattice_dt.filter(|&dt| {
            dt > 0.0
                && dt.is_finite()
                && ((hi - lo) / dt).is_finite()
                && (hi - lo) / dt < MAX_LATTICE_POINTS as f64
        });
        scratch.times.clear();
        let denom = match lattice_dt {
            Some(dt) => {
                // Global lattice t_k = k·dt: the same k always yields the
                // same f64, so lattice points are shared by every pair
                // (and every worker) that overlaps them.
                let k0 = (lo / dt).ceil() as i64;
                let k1 = (hi / dt).floor() as i64;
                if k1 < k0 {
                    return 0.0;
                }
                for k in k0..=k1 {
                    scratch.times.push((k as f64 * dt, 1.0));
                }
                (k1 - k0 + 1) as f64
            }
            None => {
                let ts = a.traj.merged_timestamps(&b.traj);
                debug_assert!(!ts.is_empty());
                // Same duplicate-grouping as the reference loop: one
                // evaluation per distinct timestamp, weighted by
                // multiplicity; out-of-window stamps contribute 0 but
                // count in the denominator.
                let mut i = 0;
                while i < ts.len() {
                    let t = ts[i];
                    let mut mult = 1;
                    while i + mult < ts.len() && ts[i + mult] == t {
                        mult += 1;
                    }
                    if t >= lo && t <= hi {
                        scratch.times.push((t, mult as f64));
                    }
                    i += mult;
                }
                ts.len() as f64
            }
        };
        let same = std::ptr::eq(a, b);
        let est_a = self.estimator(a);
        let est_b = self.estimator(b);
        a.cache.ensure(&est_a, &scratch.times, &mut scratch.fill);
        if !same {
            b.cache.ensure(&est_b, &scratch.times, &mut scratch.fill);
        }
        let times = &scratch.times;
        let score = |ra: &crate::stpcache::StpCacheReader<'_>,
                     rb: &crate::stpcache::StpCacheReader<'_>|
         -> f64 {
            let mut sum = 0.0;
            for &(t, weight) in times {
                let cp = match (ra.get(t), rb.get(t)) {
                    (Some((ia, pa)), Some((ib, pb))) => colocation_sparse(ia, pa, ib, pb),
                    // Evicted between fill and read (arena recycle under
                    // pressure): evaluate directly — same value, since
                    // cached entries are exactly what `stp` returns.
                    _ => colocation_of(&est_a.stp(t), &est_b.stp(t)),
                };
                sum += cp * weight;
            }
            sum
        };
        let sum = if same {
            // One guard serves both sides: re-acquiring a std read lock
            // recursively can deadlock behind a queued writer.
            let r = a.cache.read();
            score(&r, &r)
        } else {
            // Canonical (address) acquisition order rules out
            // reader/writer deadlock cycles across scoring threads.
            let a_first = (a as *const PreparedTrajectory) < (b as *const PreparedTrajectory);
            let (first, second) = if a_first { (a, b) } else { (b, a) };
            let r1 = first.cache.read();
            let r2 = second.cache.read();
            if a_first {
                score(&r1, &r2)
            } else {
                score(&r2, &r1)
            }
        };
        sum / denom
    }

    /// The co-location probability at every merged timestamp, in time
    /// order — the trace Eq. 10 averages. Applications that need *when*
    /// and *for how long* two objects met (contact tracing, §I) consume
    /// this directly; see [`exposure_duration`].
    pub fn colocation_profile(
        &self,
        a: &PreparedTrajectory,
        b: &PreparedTrajectory,
    ) -> Vec<(f64, f64)> {
        let ea = self.estimator(a);
        let eb = self.estimator(b);
        a.traj
            .merged_timestamps(&b.traj)
            .into_iter()
            .map(|t| (t, colocation_of(&ea.stp(t), &eb.stp(t))))
            .collect()
    }

    /// `STS(Tra, Tra')` from raw trajectories (prepares both first).
    pub fn similarity(&self, a: &Trajectory, b: &Trajectory) -> Result<f64, StsError> {
        let pa = self.prepare(a)?;
        let pb = self.prepare(b)?;
        Ok(self.similarity_prepared(&pa, &pb))
    }

    /// The full `queries × candidates` similarity matrix. Row `i`,
    /// column `j` holds `STS(queries[i], candidates[j])`.
    ///
    /// Pairs are dealt to workers in chunks from a shared queue (the
    /// same [`sts_runtime::PairSpace`] chunking as the degraded and
    /// supervised paths), with the worker count from
    /// [`sts_runtime::thread_count`] — `STS_THREADS` overrides,
    /// otherwise the host's available parallelism. This is the
    /// *strict* path: one unpreparable trajectory fails the whole
    /// batch and panics propagate; services want
    /// [`Sts::similarity_matrix_supervised`].
    pub fn similarity_matrix(
        &self,
        queries: &[Trajectory],
        candidates: &[Trajectory],
    ) -> Result<Vec<Vec<f64>>, StsError> {
        let _span = trace::span("sts.matrix");
        let prepared_q: Vec<PreparedTrajectory> = queries
            .iter()
            .map(|t| self.prepare(t))
            .collect::<Result<_, _>>()?;
        let prepared_c: Vec<PreparedTrajectory> = candidates
            .iter()
            .map(|t| self.prepare(t))
            .collect::<Result<_, _>>()?;
        let space = PairSpace::new(prepared_q.len(), prepared_c.len());
        const CHUNK_PAIRS: usize = 64;
        let mut flat = vec![0.0f64; space.len()];
        {
            // Chunk boundaries align with `chunks_mut`, so each queue
            // entry owns a disjoint output slice.
            let queue: Mutex<Vec<(sts_runtime::PairChunk, &mut [f64])>> = Mutex::new(
                space
                    .chunks(CHUNK_PAIRS)
                    .zip(flat.chunks_mut(CHUNK_PAIRS))
                    .collect(),
            );
            let n_threads = sts_runtime::thread_count(space.len().div_ceil(CHUNK_PAIRS));
            std::thread::scope(|scope| {
                for _ in 0..n_threads {
                    let queue = &queue;
                    let prepared_q = &prepared_q;
                    let prepared_c = &prepared_c;
                    scope.spawn(move || {
                        // One scratch arena per worker thread, reused
                        // across every chunk it scores.
                        let mut scratch = StpScratch::new();
                        loop {
                            let Some((chunk, out)) = queue.lock().unwrap().pop() else {
                                break;
                            };
                            for (slot, lin) in chunk.range().enumerate() {
                                let (i, j) = space.pair(lin);
                                out[slot] = self.similarity_prepared_with(
                                    &prepared_q[i],
                                    &prepared_c[j],
                                    &mut scratch,
                                );
                            }
                        }
                    });
                }
            });
        }
        let mut rows = Vec::with_capacity(space.rows());
        let mut it = flat.into_iter();
        for _ in 0..space.rows() {
            rows.push(it.by_ref().take(space.cols()).collect());
        }
        Ok(rows)
    }

    /// The `k` most similar candidates to `query`, best first, as
    /// `(candidate index, similarity)`.
    pub fn top_k(
        &self,
        query: &Trajectory,
        candidates: &[Trajectory],
        k: usize,
    ) -> Result<Vec<(usize, f64)>, StsError> {
        let q = self.prepare(query)?;
        let mut scored: Vec<(usize, f64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| Ok((i, self.similarity_prepared(&q, &self.prepare(c)?))))
            .collect::<Result<_, StsError>>()?;
        sort_scores_descending(&mut scored);
        scored.truncate(k);
        Ok(scored)
    }
}

/// Sorts `(index, similarity)` pairs best-first without ever panicking:
/// NaN similarities (a degenerate model, not a valid score) rank below
/// every real number instead of aborting the whole top-k.
pub(crate) fn sort_scores_descending(scored: &mut [(usize, f64)]) {
    let key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
    scored.sort_by(|a, b| key(b.1).total_cmp(&key(a.1)).then(a.0.cmp(&b.0)));
}

/// Total time (seconds) during which a co-location profile (from
/// [`Sts::colocation_profile`]) stays at or above `threshold`,
/// integrated by the trapezoid-free "interval owned by its left sample"
/// rule over consecutive profile timestamps.
pub fn exposure_duration(profile: &[(f64, f64)], threshold: f64) -> f64 {
    profile
        .windows(2)
        .filter(|w| w[0].1 >= threshold)
        .map(|w| w[1].0 - w[0].0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::{BoundingBox, Point};

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(200.0, 50.0)),
            5.0,
        )
        .unwrap()
    }

    fn config() -> StsConfig {
        StsConfig {
            noise_sigma: 3.0,
            ..StsConfig::default()
        }
    }

    /// Straight walker along y = `y`, 2 m/s, one fix every 10 s, shifted
    /// in phase by `phase` seconds.
    fn walker(y: f64, phase: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = phase + 10.0 * i as f64;
                    sts_traj::TrajPoint::from_xy(2.0 * t, y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn same_object_scores_higher_than_different() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 8);
        let same = walker(25.0, 5.0, 8); // same path, asynchronous
        let other = walker(5.0, 5.0, 8); // 20 m away in parallel
        let s_same = sts.similarity(&a, &same).unwrap();
        let s_other = sts.similarity(&a, &other).unwrap();
        assert!(s_same > s_other, "same {s_same} <= other {s_other}");
        assert!(s_same > 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 6);
        let b = walker(20.0, 3.0, 7);
        let ab = sts.similarity(&a, &b).unwrap();
        let ba = sts.similarity(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn similarity_bounded_in_unit_interval() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 6);
        let b = walker(25.0, 1.0, 6);
        let s = sts.similarity(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&s), "similarity {s}");
        let s_self = sts.similarity(&a, &a).unwrap();
        assert!((0.0..=1.0).contains(&s_self));
        assert!(s_self >= s);
    }

    #[test]
    fn disjoint_time_spans_score_zero() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 5);
        let b = walker(25.0, 1000.0, 5);
        assert_eq!(sts.similarity(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn too_short_trajectory_errors() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 5);
        let single = Trajectory::from_xyt(&[(10.0, 25.0, 0.0)]).unwrap();
        assert!(matches!(
            sts.similarity(&a, &single),
            Err(StsError::TrajectoryTooShort { len: 1 })
        ));
    }

    #[test]
    fn variants_construct_and_rank_consistently() {
        let g = grid();
        let corpus: Vec<Trajectory> = vec![walker(25.0, 0.0, 8), walker(5.0, 0.0, 8)];
        for v in [
            StsVariant::Full,
            StsVariant::NoNoise,
            StsVariant::GlobalSpeed,
            StsVariant::FrequencyBased,
        ] {
            let sts = Sts::variant(config(), g.clone(), v, &corpus).unwrap();
            let a = walker(25.0, 0.0, 8);
            let same = walker(25.0, 5.0, 8);
            let other = walker(5.0, 5.0, 8);
            let s_same = sts.similarity(&a, &same).unwrap();
            let s_other = sts.similarity(&a, &other).unwrap();
            assert!(
                s_same >= s_other,
                "{}: same {s_same} < other {s_other}",
                v.name()
            );
        }
    }

    #[test]
    fn variant_names() {
        assert_eq!(StsVariant::Full.name(), "STS");
        assert_eq!(StsVariant::NoNoise.name(), "STS-N");
        assert_eq!(StsVariant::GlobalSpeed.name(), "STS-G");
        assert_eq!(StsVariant::FrequencyBased.name(), "STS-F");
        assert_eq!(StsVariant::default(), StsVariant::Full);
    }

    #[test]
    fn matrix_matches_pairwise_calls() {
        let sts = Sts::new(config(), grid());
        let queries = vec![walker(25.0, 0.0, 6), walker(5.0, 0.0, 6)];
        let candidates = vec![
            walker(25.0, 5.0, 6),
            walker(5.0, 5.0, 6),
            walker(45.0, 5.0, 6),
        ];
        let m = sts.similarity_matrix(&queries, &candidates).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 3);
        for (i, q) in queries.iter().enumerate() {
            for (j, c) in candidates.iter().enumerate() {
                let s = sts.similarity(q, c).unwrap();
                assert!((m[i][j] - s).abs() < 1e-12, "({i},{j})");
            }
        }
        // The diagonal structure: query 0 matches candidate 0, query 1
        // matches candidate 1.
        assert!(m[0][0] > m[0][1]);
        assert!(m[1][1] > m[1][0]);
    }

    #[test]
    fn score_sort_ranks_nan_last_instead_of_panicking() {
        // Regression: a single NaN similarity used to abort top-k via
        // `partial_cmp(..).expect("finite similarities")`.
        let mut scored = vec![(0, f64::NAN), (1, 0.3), (2, 0.9), (3, f64::NAN)];
        sort_scores_descending(&mut scored);
        assert_eq!(scored[0].0, 2);
        assert_eq!(scored[1].0, 1);
        assert!(scored[2].1.is_nan() && scored[3].1.is_nan());
        assert_eq!((scored[2].0, scored[3].0), (0, 3));
    }

    #[test]
    fn top_k_orders_by_similarity() {
        let sts = Sts::new(config(), grid());
        let q = walker(25.0, 0.0, 6);
        let candidates = vec![
            walker(45.0, 5.0, 6),
            walker(25.0, 5.0, 6),
            walker(5.0, 5.0, 6),
        ];
        let top = sts.top_k(&q, &candidates, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1, "closest candidate should rank first");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn brownian_special_case_behaves_like_gaussian_speed_sts() {
        // §II: the Brownian bridge is STS's estimator with a Gaussian
        // speed assumption. Both should therefore produce the same
        // *ranking* on a clean separation task.
        let g = grid();
        let sts_kde = Sts::new(config(), g.clone());
        let sts_brown = Sts::brownian(config(), g, 4.0);
        let a = walker(25.0, 0.0, 8);
        let same = walker(25.0, 5.0, 8);
        let other = walker(5.0, 5.0, 8);
        for sts in [&sts_kde, &sts_brown] {
            let s1 = sts.similarity(&a, &same).unwrap();
            let s2 = sts.similarity(&a, &other).unwrap();
            assert!(s1 > s2);
        }
    }

    #[test]
    fn colocation_profile_averages_to_similarity() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 6);
        let b = walker(25.0, 4.0, 6);
        let pa = sts.prepare(&a).unwrap();
        let pb = sts.prepare(&b).unwrap();
        let profile = sts.colocation_profile(&pa, &pb);
        assert_eq!(profile.len(), a.len() + b.len());
        let avg = profile.iter().map(|&(_, cp)| cp).sum::<f64>() / profile.len() as f64;
        let s = sts.similarity_prepared(&pa, &pb);
        assert!((avg - s).abs() < 1e-12, "profile avg {avg} vs STS {s}");
        // Profile timestamps are sorted.
        for w in profile.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn exposure_duration_thresholds() {
        let profile = vec![(0.0, 0.9), (10.0, 0.9), (20.0, 0.1), (30.0, 0.8)];
        // Intervals owned by samples >= 0.5: [0,10) and [10,20) and [30, ..) has
        // no right neighbor.
        assert_eq!(exposure_duration(&profile, 0.5), 20.0);
        assert_eq!(exposure_duration(&profile, 0.95), 0.0);
        assert_eq!(exposure_duration(&profile, 0.0), 30.0);
        assert_eq!(exposure_duration(&[], 0.5), 0.0);
    }

    #[test]
    fn co_movers_have_long_exposure() {
        let sts = Sts::new(config(), grid());
        let a = walker(25.0, 0.0, 8);
        let together = walker(25.0, 5.0, 8);
        let apart = walker(5.0, 5.0, 8);
        let pa = sts.prepare(&a).unwrap();
        let e_together = exposure_duration(
            &sts.colocation_profile(&pa, &sts.prepare(&together).unwrap()),
            0.05,
        );
        let e_apart = exposure_duration(
            &sts.colocation_profile(&pa, &sts.prepare(&apart).unwrap()),
            0.05,
        );
        assert!(
            e_together > e_apart,
            "together {e_together}s vs apart {e_apart}s"
        );
    }

    #[test]
    fn dense_and_truncated_agree() {
        let dense_cfg = StsConfig {
            noise_sigma: 3.0,
            truncation_k: None,
            ..StsConfig::default()
        };
        let sparse_cfg = config();
        let a = walker(25.0, 0.0, 5);
        let b = walker(25.0, 5.0, 5);
        let s_dense = Sts::new(dense_cfg, grid()).similarity(&a, &b).unwrap();
        let s_sparse = Sts::new(sparse_cfg, grid()).similarity(&a, &b).unwrap();
        assert!(
            (s_dense - s_sparse).abs() < 1e-3,
            "dense {s_dense} vs sparse {s_sparse}"
        );
    }
}
