//! The STS worker subprocess: preamble codec and serve loop.
//!
//! [`sts_isolate`] moves chunks and opaque payloads; this module gives
//! those payloads their STS meaning. The supervisor side
//! ([`crate::job`], `ExecMode::Subprocess`) encodes the whole job —
//! measure config, grid, retry policy, fault plan, matrix dims and
//! both trajectory sides — as *preamble* frames; the worker side
//! ([`serve`]) decodes them, rebuilds the identical [`Sts`], prepares
//! every trajectory once, answers `ready`, and then scores chunks
//! until `shutdown` or EOF.
//!
//! Wire vocabulary (one whitespace-separated record per frame, framed
//! by [`sts_isolate::protocol`]):
//!
//! ```text
//! supervisor → worker (preamble, then `begin`):
//!   hello <version> <fingerprint:016x> <hb_every>
//!   trace <trace_id:016x> <parent_span> <span_base> <ship_spans>   (optional)
//!   measure <full|no-noise> <sigma> <kernel> <trunc|none> <off|exact|lattice:<dt>>
//!   grid <minx> <miny> <maxx> <maxy> <cell>
//!   retry <max_retries> <base_ns> <cap_ns> <seed>
//!   fault <seed> <slow> <transient> <tfail> <persistent> <abort> <wedge> <garbage> <slow_ns>
//!   dims <rows> <cols>
//!   traj <q|c> <index> <npoints> (<x> <y> <t>)*
//!   begin
//! worker → supervisor:
//!   ready [<worker_now_ns>]          (clock origin echoed iff `trace` was sent)
//!   | reject version <got> <want>
//!   | reject fingerprint <computed:016x> <claimed:016x>
//! supervisor → worker (per chunk):
//!   chunk <req_id> <start> <len>
//! worker → supervisor (heartbeats only when hb_every > 0):
//!   hb <req_id> <pairs_done>
//!   tstat <seq> (c <name> <v> | g <name> <v> | h <name> ...)*      (iff `trace` was sent)
//!   tspan <seq> <n> (<id> <parent> <name> <thread> <start> <dur>)* (iff ship_spans)
//!   result <req_id> <n> (<lin> s <score> | <lin> f <attempts> | <lin> p | <lin> q)*
//! supervisor → worker (end of run):
//!   shutdown
//! worker → supervisor (final telemetry flush, iff `trace` was sent):
//!   tstat ... [tspan ...] bye <trace_id:016x>
//! ```
//!
//! The optional `trace` preamble frame is the **fleet telemetry
//! handshake** (protocol v3): it hands the worker the coordinator's
//! trace id and parent span id, a `span_base` that namespaces this
//! connection's span ids into a disjoint range, and whether to ship
//! spans at all. A worker that received it echoes its monotonic trace
//! clock in `ready <now_ns>` (each process counts from its own
//! arbitrary epoch — the coordinator turns the echo into a
//! per-connection [`sts_obs::ClockMap`]), attaches a cumulative
//! registry snapshot (`tstat`, latest-seq-wins so chaos drops and
//! duplicates self-heal) and a drained span buffer (`tspan`, span ids
//! pre-shifted by `span_base`, roots re-parented under `parent_span`)
//! to every result, and flushes both once more before `bye` on clean
//! exit. Without the frame the worker behaves exactly as v2: the
//! stdio subprocess path and hand-rolled drivers see no new frames.
//!
//! The `hello` handshake makes version or corpus skew a *typed*
//! rejection instead of undefined scoring: the worker recomputes the
//! job fingerprint from its own decoded preamble (the same hash the
//! checkpoint header uses) and answers `reject ...` instead of `ready`
//! on any mismatch. Supervisors treat a rejection as permanent — the
//! pairing of binaries is wrong, and restarting cannot fix it. A
//! preamble without a `hello` frame is served without verification,
//! for hand-rolled drivers.
//!
//! `f64`s travel as Rust's shortest round-trip decimal (the same
//! encoding the checkpoint format relies on), so a worker-scored cell
//! is bit-identical to its in-process twin. Injected
//! [`Fault::GarbageOutput`](sts_runtime::Fault) pairs make the worker
//! replace the chunk's result frame with unframed noise — the
//! supervisor's protocol validation, not this module, turns that into
//! a quarantine.

use crate::job::JobConfig;
use crate::sts::MeasureSpec;
use crate::{StpCacheMode, Sts, StsConfig, StsVariant};
use std::fmt;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;
use sts_geo::{BoundingBox, Grid, Point};
use sts_isolate::protocol::{read_frame, write_frame, ProtocolError};
use sts_obs::{trace, FanoutSubscriber, RingRecorder, Snapshot, Subscriber};
use sts_runtime::{Fault, FaultPlan, PairSpace, RetryPolicy};
use sts_stats::Kernel;
use sts_traj::Trajectory;

/// The wire-protocol version spoken by this build's `hello` frame. A
/// worker answering a different version's preamble replies
/// `reject version <got> <want>` instead of `ready`. Version 3 added
/// the fleet telemetry handshake (`trace` preamble frame, clocked
/// `ready`, `tstat`/`tspan`/`bye` shipping).
pub const PROTOCOL_VERSION: u64 = 3;

/// How many closed spans a worker buffers between shipping
/// opportunities; the oldest are dropped past this (span shipping is
/// best-effort diagnostics, memory is not allowed to grow with chunk
/// size).
const SPAN_BUFFER: usize = 1024;

/// The conventional worker executable name, resolved next to the
/// current executable (test and release binaries land in the same
/// target directory; integration tests one level deeper, in `deps/`).
pub fn default_worker_path() -> PathBuf {
    let name = format!("sts-worker{}", std::env::consts::EXE_SUFFIX);
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            let dir = exe.parent()?;
            let dir = if dir.ends_with("deps") {
                dir.parent()?
            } else {
                dir
            };
            Some(dir.join(&name))
        })
        .unwrap_or_else(|| PathBuf::from(name))
}

fn kernel_token(k: Kernel) -> &'static str {
    match k {
        Kernel::Gaussian => "gaussian",
        Kernel::Epanechnikov => "epanechnikov",
        Kernel::Uniform => "uniform",
        Kernel::Triangular => "triangular",
    }
}

fn kernel_from_token(s: &str) -> Option<Kernel> {
    Some(match s {
        "gaussian" => Kernel::Gaussian,
        "epanechnikov" => Kernel::Epanechnikov,
        "uniform" => Kernel::Uniform,
        "triangular" => Kernel::Triangular,
        _ => return None,
    })
}

/// Encodes the whole job as preamble frames for [`serve`] to decode.
/// The `spec` is the measure's pure-config construction recipe; `cfg`
/// contributes the retry policy and fault plan the worker must apply
/// so in-process and subprocess cells take identical code paths.
/// `hb_every` asks the worker to emit `hb` heartbeat frames every that
/// many scored pairs inside a chunk (0 disables them — the stdio
/// supervisor path, whose per-chunk hard timeout covers liveness).
pub(crate) fn encode_preamble(
    spec: &MeasureSpec,
    grid: &Grid,
    cfg: &JobConfig,
    space: &PairSpace,
    queries: &[Trajectory],
    candidates: &[Trajectory],
    hb_every: u64,
) -> Vec<String> {
    let mut frames = Vec::with_capacity(6 + queries.len() + candidates.len());
    let fingerprint = crate::job::job_fingerprint(grid, queries, candidates);
    frames.push(format!(
        "hello {PROTOCOL_VERSION} {fingerprint:016x} {hb_every}"
    ));
    let (variant, sts_cfg) = match spec {
        MeasureSpec::Full(c) => ("full", c),
        MeasureSpec::NoNoise(c) => ("no-noise", c),
    };
    let trunc = match sts_cfg.truncation_k {
        Some(k) => k.to_string(),
        None => "none".to_string(),
    };
    // The cache mode travels with the measure so a worker-scored cell
    // takes the same code path (and lattice approximation, if any) as
    // its in-process twin.
    let cache = match sts_cfg.cache {
        StpCacheMode::Off => "off".to_string(),
        StpCacheMode::Exact => "exact".to_string(),
        StpCacheMode::Lattice { dt } => format!("lattice:{dt}"),
    };
    frames.push(format!(
        "measure {variant} {} {} {trunc} {cache}",
        sts_cfg.noise_sigma,
        kernel_token(sts_cfg.kernel),
    ));
    let area = grid.area();
    frames.push(format!(
        "grid {} {} {} {} {}",
        area.min().x,
        area.min().y,
        area.max().x,
        area.max().y,
        grid.cell_size(),
    ));
    frames.push(format!(
        "retry {} {} {} {}",
        cfg.retry.max_retries,
        cfg.retry.backoff_base.as_nanos(),
        cfg.retry.backoff_cap.as_nanos(),
        cfg.retry.seed,
    ));
    if let Some(p) = &cfg.fault {
        frames.push(format!(
            "fault {} {} {} {} {} {} {} {} {}",
            p.seed,
            p.slow_per_mille,
            p.transient_per_mille,
            p.transient_failures,
            p.persistent_per_mille,
            p.abort_per_mille,
            p.wedge_per_mille,
            p.garbage_per_mille,
            p.slow_for.as_nanos(),
        ));
    }
    frames.push(format!("dims {} {}", space.rows(), space.cols()));
    for (side, trajectories) in [("q", queries), ("c", candidates)] {
        for (idx, t) in trajectories.iter().enumerate() {
            let mut frame = format!("traj {side} {idx} {}", t.len());
            for k in 0..t.len() {
                let p = t.get(k);
                frame.push_str(&format!(" {} {} {}", p.loc.x, p.loc.y, p.t));
            }
            frames.push(frame);
        }
    }
    frames
}

/// Why a worker's serve loop gave up.
#[derive(Debug)]
pub enum ServeError {
    /// The supervisor's bytes do not form valid frames (or the stream
    /// ended mid-preamble).
    Protocol(ProtocolError),
    /// The preamble does not describe a runnable job.
    Spec(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "worker protocol error: {e}"),
            ServeError::Spec(msg) => write!(f, "bad job preamble: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

/// The fleet telemetry handshake decoded from a `trace` preamble
/// frame (see the module docs).
#[derive(Debug, Clone, Copy)]
struct TraceCtx {
    /// Coordinator-chosen id for the whole job's trace, echoed in `bye`.
    trace_id: u64,
    /// Coordinator span id the worker's root spans re-parent under.
    parent_span: u64,
    /// Added to every shipped span id — namespaces this connection's
    /// ids into a range disjoint from the coordinator's and every
    /// other worker's.
    span_base: u64,
    /// Ship `tspan` frames at all? (The coordinator turns this off
    /// when it has no subscriber — buffering spans nobody will read
    /// is wasted work.)
    ship_spans: bool,
}

/// The decoded preamble, accumulated frame by frame until `begin`.
#[derive(Default)]
struct JobSpec {
    hello: Option<(u64, u64, u64)>,
    trace: Option<TraceCtx>,
    measure: Option<(StsVariant, StsConfig)>,
    grid: Option<Grid>,
    retry: Option<RetryPolicy>,
    fault: Option<FaultPlan>,
    dims: Option<(usize, usize)>,
    queries: Vec<Option<Trajectory>>,
    candidates: Vec<Option<Trajectory>>,
    // Shapes are recorded from the *raw decoded points*, independently
    // of Trajectory construction, so the fingerprint check sees exactly
    // what the supervisor hashed.
    q_shapes: Vec<Option<crate::job::TrajShape>>,
    c_shapes: Vec<Option<crate::job::TrajShape>>,
}

fn spec_err(msg: impl Into<String>) -> ServeError {
    ServeError::Spec(msg.into())
}

fn parse<T: std::str::FromStr>(
    fields: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, ServeError> {
    fields
        .next()
        .ok_or_else(|| spec_err(format!("missing {what}")))?
        .parse()
        .map_err(|_| spec_err(format!("bad {what}")))
}

fn duration_ns(
    fields: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<Duration, ServeError> {
    // Encoded via `as_nanos()` (u128); saturate rather than reject a
    // pathological-but-legal `Duration`.
    let ns: u128 = parse(fields, what)?;
    Ok(Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX)))
}

impl JobSpec {
    fn absorb(&mut self, frame: &str) -> Result<(), ServeError> {
        let mut fields = frame.split_whitespace();
        match fields.next().unwrap_or("") {
            "hello" => {
                let version: u64 = parse(&mut fields, "protocol version")?;
                let fingerprint = fields
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| spec_err("bad job fingerprint"))?;
                let hb_every: u64 = parse(&mut fields, "heartbeat stride")?;
                self.hello = Some((version, fingerprint, hb_every));
            }
            "trace" => {
                let trace_id = fields
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| spec_err("bad trace id"))?;
                let parent_span: u64 = parse(&mut fields, "parent span")?;
                let span_base: u64 = parse(&mut fields, "span base")?;
                let ship: u64 = parse(&mut fields, "ship flag")?;
                self.trace = Some(TraceCtx {
                    trace_id,
                    parent_span,
                    span_base,
                    ship_spans: ship != 0,
                });
            }
            "measure" => {
                let variant = match fields.next() {
                    Some("full") => StsVariant::Full,
                    Some("no-noise") => StsVariant::NoNoise,
                    other => return Err(spec_err(format!("unknown measure `{other:?}`"))),
                };
                let noise_sigma: f64 = parse(&mut fields, "noise sigma")?;
                let kernel = fields
                    .next()
                    .and_then(kernel_from_token)
                    .ok_or_else(|| spec_err("unknown kernel"))?;
                let truncation_k = match fields.next() {
                    Some("none") => None,
                    Some(v) => Some(v.parse().map_err(|_| spec_err("bad truncation"))?),
                    None => return Err(spec_err("missing truncation")),
                };
                let cache = match fields.next() {
                    Some("off") => StpCacheMode::Off,
                    Some("exact") => StpCacheMode::Exact,
                    Some(v) if v.starts_with("lattice:") => StpCacheMode::Lattice {
                        dt: v["lattice:".len()..]
                            .parse()
                            .map_err(|_| spec_err("bad lattice dt"))?,
                    },
                    Some(_) => return Err(spec_err("unknown cache mode")),
                    None => return Err(spec_err("missing cache mode")),
                };
                self.measure = Some((
                    variant,
                    StsConfig {
                        noise_sigma,
                        kernel,
                        truncation_k,
                        cache,
                    },
                ));
            }
            "grid" => {
                let min_x: f64 = parse(&mut fields, "grid min x")?;
                let min_y: f64 = parse(&mut fields, "grid min y")?;
                let max_x: f64 = parse(&mut fields, "grid max x")?;
                let max_y: f64 = parse(&mut fields, "grid max y")?;
                let cell: f64 = parse(&mut fields, "grid cell size")?;
                let bbox = BoundingBox::new(Point::new(min_x, min_y), Point::new(max_x, max_y));
                self.grid =
                    Some(Grid::new(bbox, cell).map_err(|e| spec_err(format!("bad grid: {e}")))?);
            }
            "retry" => {
                self.retry = Some(RetryPolicy {
                    max_retries: parse(&mut fields, "max retries")?,
                    backoff_base: duration_ns(&mut fields, "backoff base")?,
                    backoff_cap: duration_ns(&mut fields, "backoff cap")?,
                    seed: parse(&mut fields, "retry seed")?,
                });
            }
            "fault" => {
                self.fault = Some(FaultPlan {
                    seed: parse(&mut fields, "fault seed")?,
                    slow_per_mille: parse(&mut fields, "slow rate")?,
                    transient_per_mille: parse(&mut fields, "transient rate")?,
                    transient_failures: parse(&mut fields, "transient failures")?,
                    persistent_per_mille: parse(&mut fields, "persistent rate")?,
                    abort_per_mille: parse(&mut fields, "abort rate")?,
                    wedge_per_mille: parse(&mut fields, "wedge rate")?,
                    garbage_per_mille: parse(&mut fields, "garbage rate")?,
                    slow_for: duration_ns(&mut fields, "slow duration")?,
                });
            }
            "dims" => {
                let rows: usize = parse(&mut fields, "rows")?;
                let cols: usize = parse(&mut fields, "cols")?;
                self.dims = Some((rows, cols));
                self.queries = (0..rows).map(|_| None).collect();
                self.candidates = (0..cols).map(|_| None).collect();
                self.q_shapes = (0..rows).map(|_| None).collect();
                self.c_shapes = (0..cols).map(|_| None).collect();
            }
            "traj" => {
                let side = fields.next().unwrap_or("");
                let idx: usize = parse(&mut fields, "trajectory index")?;
                let n: usize = parse(&mut fields, "point count")?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    let x: f64 = parse(&mut fields, "point x")?;
                    let y: f64 = parse(&mut fields, "point y")?;
                    let t: f64 = parse(&mut fields, "point t")?;
                    points.push((x, y, t));
                }
                // An unconstructible trajectory is the *pair's*
                // problem (quarantined per cell), not the preamble's.
                let traj = Trajectory::from_xyt(&points).ok();
                let shape = points.first().map(|&(x, y, t)| {
                    let (lx, ly, lt) = points[points.len() - 1];
                    crate::job::TrajShape {
                        len: n as u64,
                        first: [x, y, t],
                        last: [lx, ly, lt],
                    }
                });
                let (slot, shape_slot) = match side {
                    "q" => (self.queries.get_mut(idx), self.q_shapes.get_mut(idx)),
                    "c" => (self.candidates.get_mut(idx), self.c_shapes.get_mut(idx)),
                    other => return Err(spec_err(format!("unknown trajectory side `{other}`"))),
                };
                *slot.ok_or_else(|| spec_err("trajectory index out of dims"))? = traj;
                if let Some(s) = shape_slot {
                    *s = shape;
                }
            }
            other => return Err(spec_err(format!("unknown preamble frame `{other}`"))),
        }
        Ok(())
    }

    /// The typed rejection this preamble's handshake earns, if any.
    /// `None` means serve the job — including preambles with no
    /// `hello` frame at all (hand-rolled drivers skip verification)
    /// and preambles too torn to even name a grid (those fail in
    /// [`build`](Self::build) with the specific missing frame).
    fn handshake_rejection(&self) -> Option<String> {
        let (version, claimed, _) = self.hello?;
        if version != PROTOCOL_VERSION {
            return Some(format!("reject version {version} {PROTOCOL_VERSION}"));
        }
        let grid = self.grid.as_ref()?;
        self.dims?;
        let collect = |side: &[Option<crate::job::TrajShape>]| {
            side.iter().copied().collect::<Option<Vec<_>>>()
        };
        let computed = match (collect(&self.q_shapes), collect(&self.c_shapes)) {
            (Some(qs), Some(cs)) => crate::job::fingerprint_shapes(grid, &qs, &cs),
            // A missing trajectory frame can never hash to an honest
            // claim; any value other than the claim rejects.
            _ => claimed.wrapping_add(1),
        };
        (computed != claimed).then(|| format!("reject fingerprint {computed:016x} {claimed:016x}"))
    }

    fn build(self) -> Result<WorkerState, ServeError> {
        let (variant, config) = self.measure.ok_or_else(|| spec_err("no measure frame"))?;
        let grid = self.grid.ok_or_else(|| spec_err("no grid frame"))?;
        let (rows, cols) = self.dims.ok_or_else(|| spec_err("no dims frame"))?;
        let sts = match variant {
            StsVariant::Full => Sts::new(config, grid),
            StsVariant::NoNoise => Sts::variant(config, grid, StsVariant::NoNoise, &[])
                .map_err(|e| spec_err(format!("cannot build measure: {e}")))?,
            _ => return Err(spec_err("variant not expressible in a preamble")),
        };
        let cfg = JobConfig {
            retry: self.retry.unwrap_or_default(),
            fault: self.fault,
            ..JobConfig::default()
        };
        let prepare_side = |side: Vec<Option<Trajectory>>| {
            side.into_iter()
                .map(|t| {
                    t.and_then(|t| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            sts.prepare(&t).ok()
                        }))
                        .ok()
                        .flatten()
                    })
                })
                .collect()
        };
        let hb_every = self.hello.map_or(0, |(_, _, hb)| hb);
        let trace = self.trace;
        let prepared_q = prepare_side(self.queries);
        let prepared_c = prepare_side(self.candidates);
        Ok(WorkerState {
            sts,
            cfg,
            space: PairSpace::new(rows, cols),
            prepared_q,
            prepared_c,
            hb_every,
            trace,
        })
    }
}

/// Everything a ready worker needs to score chunks.
struct WorkerState {
    sts: Sts,
    cfg: JobConfig,
    space: PairSpace,
    prepared_q: Vec<Option<crate::PreparedTrajectory>>,
    prepared_c: Vec<Option<crate::PreparedTrajectory>>,
    hb_every: u64,
    trace: Option<TraceCtx>,
}

/// Runs the worker side of the protocol over the given streams until
/// `shutdown` or clean EOF. This is what the `sts-worker` binary wraps
/// around locked stdin/stdout; tests drive it over in-memory pipes.
///
/// Faults from the preamble's plan are *executed* here: aborts and
/// wedges kill or hang this process (that is the point — the
/// supervisor contains them), and a [`Fault::GarbageOutput`] pair
/// makes the worker emit unframed noise instead of its chunk's result
/// frame.
pub fn serve<R: BufRead, W: Write>(input: &mut R, output: &mut W) -> Result<(), ServeError> {
    // The shipping baseline: everything this process records past here
    // is this job's work. In a real worker subprocess the registry is
    // empty anyway; the baseline matters for in-process test workers.
    let metrics_base = sts_obs::metrics::global().snapshot();
    let mut spec = JobSpec::default();
    let state = loop {
        let frame = read_frame(input)?;
        if frame == "begin" {
            if let Some(rejection) = spec.handshake_rejection() {
                write_frame(output, &rejection).map_err(ProtocolError::Io)?;
                return Err(spec_err(format!("handshake failed: {rejection}")));
            }
            break spec.build()?;
        }
        spec.absorb(&frame)?;
    };
    let mut shipper = state.trace.map(|ctx| Shipper::install(ctx, metrics_base));
    // The clock-origin exchange: a trace-aware coordinator needs this
    // worker's monotonic epoch to map shipped timestamps into its own
    // clock domain.
    let ready = match state.trace {
        Some(_) => format!("ready {}", trace::now_ns()),
        None => "ready".to_string(),
    };
    write_frame(output, &ready).map_err(ProtocolError::Io)?;
    let serve_span = trace::span_with_parent("worker.serve", 0);

    let retries = AtomicU64::new(0);
    // One scratch arena for the whole process, reused across chunks —
    // the subprocess twin of the pool's per-worker state.
    let mut scratch = crate::StpScratch::new();
    loop {
        let frame = match read_frame(input) {
            Ok(f) => f,
            Err(ProtocolError::Eof) => {
                // The supervisor hung up; flush telemetry best-effort
                // (the write side may be gone too).
                drop(serve_span);
                if let Some(sh) = shipper.as_mut() {
                    let _ = sh.flush(output);
                }
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        };
        let mut fields = frame.split_whitespace();
        match fields.next().unwrap_or("") {
            "chunk" => {
                let req_id: u64 = parse(&mut fields, "request id")?;
                let start: usize = parse(&mut fields, "chunk start")?;
                let len: usize = parse(&mut fields, "chunk len")?;
                if start + len > state.space.len() {
                    return Err(spec_err(format!(
                        "chunk {start}+{len} exceeds the {}-pair space",
                        state.space.len()
                    )));
                }
                let chunk_span = trace::span("worker.chunk");
                trace::event("worker.tile", req_id as f64);
                let mut body = format!("result {req_id} {len}");
                let mut garbage = false;
                let mut pairs_done = 0u64;
                for lin in start..start + len {
                    // A garbage-output pair corrupts the whole chunk's
                    // result frame; checked before scoring so the
                    // corruption is deterministic however the chunk
                    // was bisected.
                    if let Some(plan) = &state.cfg.fault {
                        if plan.fault_for(lin) == Fault::GarbageOutput {
                            garbage = true;
                            break;
                        }
                    }
                    let (i, j) = state.space.pair(lin);
                    let outcome = state.sts.score_cell_retrying(
                        state.prepared_q[i].as_ref(),
                        state.prepared_c[j].as_ref(),
                        &state.cfg,
                        lin,
                        &retries,
                        &mut scratch,
                    );
                    body.push(' ');
                    body.push_str(&encode_record(lin, &outcome));
                    pairs_done += 1;
                    // Progress heartbeats keep a long chunk's lease
                    // alive without the coordinator guessing at
                    // honest-but-slow scoring.
                    if state.hb_every > 0 && pairs_done % state.hb_every == 0 {
                        write_frame(output, &format!("hb {req_id} {pairs_done}"))
                            .map_err(ProtocolError::Io)?;
                    }
                }
                // Close the chunk's span *before* shipping so it rides
                // this round's tspan, then attach telemetry ahead of
                // the result (or the garbage noise — the corruption is
                // the result's problem, not the snapshot's).
                drop(chunk_span);
                if let Some(sh) = shipper.as_mut() {
                    sh.ship(output).map_err(ProtocolError::Io)?;
                }
                if garbage {
                    // Deliberately NOT a frame: no length prefix, and
                    // bytes that cannot parse as one.
                    output
                        .write_all(b"!! garbage fault: this is not a frame !!\n")
                        .and_then(|()| output.flush())
                        .map_err(ProtocolError::Io)?;
                } else {
                    write_frame(output, &body).map_err(ProtocolError::Io)?;
                }
            }
            "shutdown" => {
                drop(serve_span);
                if let Some(sh) = shipper.as_mut() {
                    sh.flush(output).map_err(ProtocolError::Io)?;
                }
                return Ok(());
            }
            other => return Err(spec_err(format!("unknown request frame `{other}`"))),
        }
    }
}

/// The worker side of telemetry shipping: owns the shipping baseline,
/// the bounded span collector and the frame sequence counter, and
/// restores the process's previous subscriber on drop (in-process test
/// workers share the coordinator's subscriber slot).
struct Shipper {
    ctx: TraceCtx,
    base: Snapshot,
    seq: u64,
    ring: Option<Arc<RingRecorder>>,
    prev: Option<Arc<dyn Subscriber>>,
}

impl Shipper {
    /// Starts shipping under `ctx`; when span shipping is on, installs
    /// a bounded collector (fanned out alongside any subscriber the
    /// process already had, so `STS_TRACE` keeps working in workers).
    fn install(ctx: TraceCtx, base: Snapshot) -> Shipper {
        let (ring, prev) = if ctx.ship_spans {
            let ring = Arc::new(RingRecorder::new(SPAN_BUFFER));
            let prev = trace::set_subscriber(ring.clone());
            if let Some(p) = prev.clone() {
                let fanout: Arc<dyn Subscriber> =
                    Arc::new(FanoutSubscriber::new(vec![p, ring.clone()]));
                trace::set_subscriber(fanout);
            }
            (Some(ring), prev)
        } else {
            (None, None)
        };
        Shipper {
            ctx,
            base,
            seq: 0,
            ring,
            prev,
        }
    }

    /// Writes one telemetry round: a cumulative `tstat` (latest wins
    /// coordinator-side) and, when collecting, a `tspan` draining the
    /// buffer, span ids shifted into this connection's range and roots
    /// re-parented under the coordinator's span.
    fn ship<W: Write>(&mut self, output: &mut W) -> std::io::Result<()> {
        self.seq += 1;
        let delta = sts_obs::metrics::global()
            .snapshot()
            .since(&self.base)
            .without_zeros();
        write_frame(
            output,
            &format!("tstat {} {}", self.seq, delta.encode_wire()),
        )?;
        if let Some(ring) = &self.ring {
            let spans = ring.spans();
            ring.clear();
            if !spans.is_empty() {
                let mut body = format!("tspan {} {}", self.seq, spans.len());
                for s in &spans {
                    let id = s.id.wrapping_add(self.ctx.span_base);
                    let parent = if s.parent == 0 {
                        self.ctx.parent_span
                    } else {
                        s.parent.wrapping_add(self.ctx.span_base)
                    };
                    body.push_str(&format!(
                        " {id} {parent} {} {} {} {}",
                        s.name, s.thread, s.start_ns, s.dur_ns
                    ));
                }
                write_frame(output, &body)?;
            }
        }
        Ok(())
    }

    /// The clean-exit flush: one last shipping round, then `bye`
    /// echoing the trace id so the coordinator can count completed
    /// flushes.
    fn flush<W: Write>(&mut self, output: &mut W) -> std::io::Result<()> {
        self.ship(output)?;
        write_frame(output, &format!("bye {:016x}", self.ctx.trace_id))
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        if self.ring.is_some() {
            trace::clear_subscriber();
            if let Some(prev) = self.prev.take() {
                trace::set_subscriber(prev);
            }
        }
    }
}

/// One cell's wire record (see the module docs for the vocabulary).
fn encode_record(lin: usize, outcome: &crate::PairOutcome) -> String {
    use crate::PairOutcome;
    match outcome {
        PairOutcome::Score(s) => format!("{lin} s {s}"),
        PairOutcome::Failed { attempts } => format!("{lin} f {attempts}"),
        PairOutcome::Panicked => format!("{lin} p"),
        PairOutcome::Quarantined => format!("{lin} q"),
        // score_cell_retrying never produces these; encode defensively
        // as quarantined rather than poisoning the protocol.
        PairOutcome::Skipped | PairOutcome::Poisoned { .. } => format!("{lin} q"),
    }
}

/// Parses one result payload (`<n> (<record>)*`, the body after
/// `result <req_id> `) into `(lin, outcome)` cells. Returns `None` on
/// any malformed record — the caller treats the chunk as undelivered.
pub(crate) fn decode_result_payload(payload: &str) -> Option<Vec<(usize, crate::PairOutcome)>> {
    use crate::PairOutcome;
    let mut fields = payload.split_whitespace();
    let n: usize = fields.next()?.parse().ok()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let lin: usize = fields.next()?.parse().ok()?;
        let outcome = match fields.next()? {
            "s" => PairOutcome::Score(fields.next()?.parse().ok()?),
            "f" => PairOutcome::Failed {
                attempts: fields.next()?.parse().ok()?,
            },
            "p" => PairOutcome::Panicked,
            "q" => PairOutcome::Quarantined,
            _ => return None,
        };
        out.push((lin, outcome));
    }
    fields.next().is_none().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairOutcome;
    use sts_geo::{BoundingBox, Grid, Point};

    fn grid() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(200.0, 50.0)),
            5.0,
        )
        .unwrap()
    }

    fn walker(y: f64, phase: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = phase + 10.0 * i as f64;
                    sts_traj::TrajPoint::from_xy(2.0 * t, y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    /// Feeds a full preamble + chunks through `serve` over in-memory
    /// pipes and returns the worker's framed responses.
    fn drive_serve(preamble: &[String], requests: &[String]) -> Vec<String> {
        let mut input = Vec::new();
        for frame in preamble {
            write_frame(&mut input, frame).unwrap();
        }
        write_frame(&mut input, "begin").unwrap();
        for frame in requests {
            write_frame(&mut input, frame).unwrap();
        }
        write_frame(&mut input, "shutdown").unwrap();
        let mut output = Vec::new();
        serve(&mut input.as_slice(), &mut output).unwrap();
        let mut frames = Vec::new();
        let mut r = output.as_slice();
        while let Ok(f) = read_frame(&mut r) {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn served_chunks_match_in_process_scores_bit_exactly() {
        let sts = Sts::new(StsConfig::default(), grid());
        let queries = vec![walker(25.0, 0.0, 6), walker(5.0, 0.0, 6)];
        let candidates = vec![walker(25.0, 5.0, 6), walker(5.0, 5.0, 6)];
        let space = PairSpace::new(2, 2);
        let cfg = JobConfig::default();
        let preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            sts.grid(),
            &cfg,
            &space,
            &queries,
            &candidates,
            0,
        );
        let frames = drive_serve(&preamble, &["chunk 7 0 4".into()]);
        assert_eq!(frames[0], "ready");
        let payload = frames[1].strip_prefix("result 7 ").unwrap();
        let cells = decode_result_payload(payload).unwrap();
        assert_eq!(cells.len(), 4);
        let strict = sts.similarity_matrix(&queries, &candidates).unwrap();
        for (lin, outcome) in cells {
            let (i, j) = space.pair(lin);
            match outcome {
                PairOutcome::Score(s) => {
                    assert_eq!(s.to_bits(), strict[i][j].to_bits(), "({i},{j})")
                }
                other => panic!("({i},{j}): {other:?}"),
            }
        }
    }

    #[test]
    fn unpreparable_trajectory_yields_quarantined_records() {
        let queries = vec![walker(25.0, 0.0, 6)];
        let candidates = vec![
            Trajectory::from_xyt(&[(10.0, 25.0, 0.0)]).unwrap(),
            walker(25.0, 5.0, 6),
        ];
        let space = PairSpace::new(1, 2);
        let cfg = JobConfig::default();
        let preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            &grid(),
            &cfg,
            &space,
            &queries,
            &candidates,
            0,
        );
        let frames = drive_serve(&preamble, &["chunk 0 0 2".into()]);
        let cells = decode_result_payload(frames[1].strip_prefix("result 0 ").unwrap()).unwrap();
        assert_eq!(cells[0], (0, PairOutcome::Quarantined));
        assert!(matches!(cells[1], (1, PairOutcome::Score(_))));
    }

    #[test]
    fn garbage_fault_corrupts_the_result_frame() {
        let queries = vec![walker(25.0, 0.0, 4)];
        let candidates = vec![walker(25.0, 5.0, 4)];
        let space = PairSpace::new(1, 1);
        let cfg = JobConfig {
            fault: Some(FaultPlan {
                garbage_per_mille: 1000,
                ..FaultPlan::default()
            }),
            ..JobConfig::default()
        };
        let preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            &grid(),
            &cfg,
            &space,
            &queries,
            &candidates,
            0,
        );
        let mut input = Vec::new();
        for frame in &preamble {
            write_frame(&mut input, frame).unwrap();
        }
        write_frame(&mut input, "begin").unwrap();
        write_frame(&mut input, "chunk 0 0 1").unwrap();
        let mut output = Vec::new();
        // EOF after the chunk is a clean exit.
        serve(&mut input.as_slice(), &mut output).unwrap();
        let mut r = output.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), "ready");
        assert!(
            matches!(read_frame(&mut r), Err(ProtocolError::Garbage { .. })),
            "garbage pair must not produce a valid frame"
        );
    }

    #[test]
    fn version_skew_is_rejected_before_ready() {
        let queries = vec![walker(25.0, 0.0, 4)];
        let candidates = vec![walker(25.0, 5.0, 4)];
        let mut preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            &grid(),
            &JobConfig::default(),
            &PairSpace::new(1, 1),
            &queries,
            &candidates,
            0,
        );
        // A future supervisor speaking version 99.
        preamble[0] = preamble[0].replacen(&format!("hello {PROTOCOL_VERSION} "), "hello 99 ", 1);
        let mut input = Vec::new();
        for frame in &preamble {
            write_frame(&mut input, frame).unwrap();
        }
        write_frame(&mut input, "begin").unwrap();
        let mut output = Vec::new();
        let err = serve(&mut input.as_slice(), &mut output).unwrap_err();
        assert!(matches!(err, ServeError::Spec(_)), "{err}");
        let mut r = output.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            format!("reject version 99 {PROTOCOL_VERSION}")
        );
    }

    #[test]
    fn corpus_skew_is_a_fingerprint_rejection() {
        let queries = vec![walker(25.0, 0.0, 4)];
        let candidates = vec![walker(25.0, 5.0, 4)];
        let mut preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            &grid(),
            &JobConfig::default(),
            &PairSpace::new(1, 1),
            &queries,
            &candidates,
            0,
        );
        // The corpus the worker decodes is not the corpus the
        // supervisor hashed: nudge one endpoint coordinate.
        let traj = preamble
            .iter_mut()
            .find(|f| f.starts_with("traj q 0 "))
            .unwrap();
        *traj = traj.replacen(" 0 25 0", " 1 25 0", 1);
        let mut input = Vec::new();
        for frame in &preamble {
            write_frame(&mut input, frame).unwrap();
        }
        write_frame(&mut input, "begin").unwrap();
        let mut output = Vec::new();
        assert!(serve(&mut input.as_slice(), &mut output).is_err());
        let mut r = output.as_slice();
        let frame = read_frame(&mut r).unwrap();
        assert!(
            frame.starts_with("reject fingerprint "),
            "expected a fingerprint rejection, got {frame:?}"
        );
    }

    #[test]
    fn heartbeats_pace_long_chunks_when_asked() {
        let queries = vec![walker(25.0, 0.0, 6), walker(5.0, 0.0, 6)];
        let candidates = vec![walker(25.0, 5.0, 6), walker(5.0, 5.0, 6)];
        let space = PairSpace::new(2, 2);
        let preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            &grid(),
            &JobConfig::default(),
            &space,
            &queries,
            &candidates,
            2,
        );
        let frames = drive_serve(&preamble, &["chunk 9 0 4".into()]);
        assert_eq!(
            &frames[..3],
            &[
                "ready".to_string(),
                "hb 9 2".to_string(),
                "hb 9 4".to_string()
            ],
            "hb_every=2 over a 4-pair chunk beats twice"
        );
        assert!(frames[3].starts_with("result 9 4 "));
    }

    #[test]
    fn trace_handshake_ships_telemetry_and_spans() {
        let queries = vec![walker(25.0, 0.0, 6), walker(5.0, 0.0, 6)];
        let candidates = vec![walker(25.0, 5.0, 6), walker(5.0, 5.0, 6)];
        let space = PairSpace::new(2, 2);
        let mut preamble = encode_preamble(
            &MeasureSpec::Full(StsConfig::default()),
            &grid(),
            &JobConfig::default(),
            &space,
            &queries,
            &candidates,
            0,
        );
        let span_base = 1u64 << 32;
        preamble.insert(1, format!("trace {:016x} 42 {span_base} 1", 0xabcdu64));
        let frames = drive_serve(&preamble, &["chunk 3 0 4".into()]);

        // The clock-origin exchange rides the ready frame.
        assert!(frames[0].starts_with("ready "), "{:?}", frames[0]);
        let origin: u64 = frames[0].strip_prefix("ready ").unwrap().parse().unwrap();
        assert!(origin > 0);

        // One shipping round per chunk plus the shutdown flush, with
        // increasing sequence numbers and a decodable snapshot whose
        // pair counter covers the chunk (≥: other tests in this
        // process may score concurrently — the registry is global).
        let tstats: Vec<&String> = frames.iter().filter(|f| f.starts_with("tstat ")).collect();
        assert_eq!(tstats.len(), 2, "{frames:?}");
        assert!(tstats[0].starts_with("tstat 1 "));
        let payload = tstats[1].strip_prefix("tstat 2").unwrap().trim_start();
        let snap = Snapshot::decode_wire(payload).unwrap();
        assert!(
            snap.counter("core.pairs.scored").unwrap_or(0) >= 4,
            "{snap:?}"
        );

        // Shipped spans are shifted into this connection's id range
        // and roots hang under the coordinator's parent span.
        let mut shipped: Vec<(u64, u64, String)> = Vec::new();
        for f in frames.iter().filter(|f| f.starts_with("tspan ")) {
            let mut fields = f.split_whitespace().skip(1);
            let _seq: u64 = fields.next().unwrap().parse().unwrap();
            let n: usize = fields.next().unwrap().parse().unwrap();
            for _ in 0..n {
                let id: u64 = fields.next().unwrap().parse().unwrap();
                let parent: u64 = fields.next().unwrap().parse().unwrap();
                let name = fields.next().unwrap().to_string();
                let _thread = fields.next().unwrap();
                let _start = fields.next().unwrap();
                let _dur = fields.next().unwrap();
                shipped.push((id, parent, name));
            }
        }
        let chunk = shipped
            .iter()
            .find(|(_, _, n)| n == "worker.chunk")
            .expect("chunk span shipped");
        let serve_root = shipped
            .iter()
            .find(|(_, _, n)| n == "worker.serve")
            .expect("serve span shipped in the final flush");
        assert!(chunk.0 >= span_base, "id shifted: {chunk:?}");
        assert_eq!(chunk.1, serve_root.0, "chunk nests under serve");
        assert_eq!(serve_root.1, 42, "root re-parents under the coordinator");

        // Clean exit ends with bye echoing the trace id.
        assert_eq!(frames.last().unwrap(), &format!("bye {:016x}", 0xabcdu64));
        // The shipper restored the subscriber slot on the way out.
        assert!(!sts_obs::tracing_enabled());
    }

    #[test]
    fn preamble_round_trips_f64_extremes() {
        // Encode → absorb must preserve bits for the values the grid
        // and trajectories can legally hold.
        let mut spec = JobSpec::default();
        spec.absorb("dims 1 1").unwrap();
        spec.absorb("traj q 0 1 0.1000000000000000055511151231257827 -0 1e-308")
            .unwrap();
        let t = spec.queries[0].clone().unwrap();
        assert_eq!(t.get(0).loc.x.to_bits(), 0.1f64.to_bits());
        assert_eq!(t.get(0).loc.y.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn malformed_preambles_are_typed_errors() {
        for bad in [
            "measure sideways 1 gaussian none",
            "measure full nope gaussian none",
            "grid 0 0 10 10 not-a-number",
            "traj z 0 1 0 0 0",
            "blorp 1 2 3",
        ] {
            let mut spec = JobSpec::default();
            spec.absorb("dims 2 2").unwrap();
            assert!(
                matches!(spec.absorb(bad), Err(ServeError::Spec(_))),
                "{bad:?} should be rejected"
            );
        }
        // Building without the mandatory frames fails, not panics.
        assert!(JobSpec::default().build().is_err());
    }

    #[test]
    fn result_payload_decoder_rejects_torn_records() {
        assert!(decode_result_payload("1 0 s 0.5").is_some());
        for bad in [
            "",
            "1",
            "1 0",
            "1 0 s",
            "1 0 z 1",
            "2 0 s 0.5",
            "1 0 s 0.5 extra",
        ] {
            assert!(decode_result_payload(bad).is_none(), "{bad:?}");
        }
    }
}
