#![warn(missing_docs)]
//! # sts-core — the STS spatial-temporal similarity measure
//!
//! Implementation of *"Spatial-Temporal Similarity for Trajectories with
//! Location Noise and Sporadic Sampling"* (ICDE 2021):
//!
//! 1. space is partitioned into a uniform [`sts_geo::Grid`] (§IV-A);
//! 2. every observation becomes a probability distribution over cells
//!    via a [`noise::NoiseModel`] (Eq. 3);
//! 3. each trajectory gets a *personalized* speed distribution — a KDE
//!    over its own consecutive-point speeds — defining its
//!    [`transition::TransitionModel`] (Eqs. 6–7);
//! 4. the [`stprob::StpEstimator`] combines both into the probability of
//!    the object being at any cell at any time (Eqs. 4–5);
//! 5. the co-location probability of two trajectories at a timestamp is
//!    the inner product of their cell distributions (Eqs. 8–9,
//!    Algorithm 1), and [`Sts`] averages it over the merged timestamps
//!    (Eq. 10).
//!
//! ```
//! use sts_core::{Sts, StsConfig};
//! use sts_geo::{BoundingBox, Grid, Point};
//! use sts_traj::Trajectory;
//!
//! let grid = Grid::new(
//!     BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
//!     5.0,
//! ).unwrap();
//! let sts = Sts::new(StsConfig { noise_sigma: 3.0, ..StsConfig::default() }, grid);
//!
//! let a = Trajectory::from_xyt(&[(0.0, 50.0, 0.0), (20.0, 50.0, 20.0), (40.0, 50.0, 40.0)]).unwrap();
//! let b = Trajectory::from_xyt(&[(1.0, 51.0, 5.0), (21.0, 49.0, 25.0), (39.0, 50.0, 45.0)]).unwrap();
//! let c = Trajectory::from_xyt(&[(0.0, 10.0, 0.0), (20.0, 10.0, 20.0), (40.0, 10.0, 40.0)]).unwrap();
//!
//! let close = sts.similarity(&a, &b).unwrap();
//! let far = sts.similarity(&a, &c).unwrap();
//! assert!(close > far);
//! ```

pub mod batch;
mod colocation;
mod dist;
pub mod index;
pub mod job;
pub mod noise;
pub mod shard;
mod stpcache;
pub mod stprob;
mod sts;
pub mod tiled;
pub mod transition;
pub mod worker;

pub use batch::{BatchReport, PairOutcome, QuarantineReason};
pub use colocation::colocation_probability;
pub use dist::SparseDistribution;
pub use index::ColocationIndex;
pub use job::{CheckpointConfig, ExecMode, IsolateOptions, JobConfig, JobError, JobReport};
pub use noise::{DeterministicNoise, GaussianNoise, NoiseModel, UniformDiscNoise};
pub use shard::{ProcessLauncher, ShardOptions, WorkerHandle, WorkerLauncher};
pub use stpcache::{StpCacheMode, StpScratch};
pub use stprob::{StpEstimator, StpEvalScratch};
pub use sts::{exposure_duration, PreparedTrajectory, Sts, StsConfig, StsVariant};
pub use tiled::{TileConfig, TILE_CELL_BYTES};
pub use transition::{
    BrownianTransition, FrequencyTransition, SpeedKdeTransition, TransitionModel,
};
pub use worker::{default_worker_path, serve, ServeError, PROTOCOL_VERSION};

use std::fmt;

/// Errors produced by the STS measure.
#[derive(Debug, Clone, PartialEq)]
pub enum StsError {
    /// The personalized speed model needs at least two observations.
    TrajectoryTooShort {
        /// The offending trajectory's length.
        len: usize,
    },
    /// The speed KDE could not be constructed.
    Kde(sts_stats::KdeError),
}

impl fmt::Display for StsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StsError::TrajectoryTooShort { len } => write!(
                f,
                "trajectory with {len} point(s) cannot yield a speed distribution (need >= 2)"
            ),
            StsError::Kde(e) => write!(f, "speed density estimation failed: {e}"),
        }
    }
}

impl std::error::Error for StsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StsError::Kde(e) => Some(e),
            _ => None,
        }
    }
}
