//! Perf smoke checks: every timing suite runs end-to-end under the
//! smoke configuration and yields sane measurements. Ignored by default
//! (they exist to catch bit-rot in the suites, not to produce numbers);
//! run with `cargo test -p sts-bench -- --ignored`.

use sts_bench::perf::all_suites;
use sts_bench::timing::TimingConfig;

#[test]
#[ignore = "perf smoke loop; run explicitly with -- --ignored"]
fn perf_smoke() {
    let config = TimingConfig::smoke();
    for (name, suite) in all_suites() {
        let report = suite(&config);
        assert_eq!(report.suite, name);
        assert!(!report.entries.is_empty(), "suite {name} produced nothing");
        for (id, m) in &report.entries {
            assert!(
                m.min_ns > 0.0 && m.median_ns.is_finite(),
                "suite {name}, entry {id}: bogus measurement {m}"
            );
        }
    }
}
