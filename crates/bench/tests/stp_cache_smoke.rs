//! Perf-regression smoke for the per-trajectory STP cache: on a
//! 32-trajectory matrix, the cached path must spend strictly fewer STP
//! evaluations per scored pair than the uncached oracle. Lives in its
//! own test binary so the global telemetry registry it reads is not
//! shared with any other suite's process. Ignored by default (it is a
//! perf guard, not a correctness gate); run with
//! `cargo test -p sts-bench --test stp_cache_smoke -- --ignored`.

use sts_bench::bench_mall;
use sts_core::{StpCacheMode, Sts, StsConfig};
use sts_traj::Trajectory;

fn evals_per_pair(sts: &Sts, trajs: &[Trajectory]) -> f64 {
    let base = sts_obs::metrics::global().snapshot();
    sts.similarity_matrix(trajs, trajs).unwrap();
    let delta = sts_obs::metrics::global().snapshot().since(&base);
    let pairs = delta.counter("core.pairs.scored").unwrap_or(0);
    assert_eq!(pairs, (trajs.len() * trajs.len()) as u64);
    delta.counter("core.stp.evals").unwrap_or(0) as f64 / pairs as f64
}

#[test]
#[ignore = "perf guard over a 32x32 matrix; run explicitly with -- --ignored"]
fn cached_matrix_spends_fewer_stp_evals_per_pair_than_uncached() {
    let scenario = bench_mall(32);
    let trajs: Vec<Trajectory> = scenario.pairs.d1.clone();
    let make = |mode: StpCacheMode| {
        Sts::new(
            StsConfig {
                noise_sigma: scenario.scale.noise_sigma,
                ..StsConfig::default()
            },
            scenario.default_grid(),
        )
        .with_cache_mode(mode)
    };

    let uncached = evals_per_pair(&make(StpCacheMode::Off), &trajs);
    let exact = evals_per_pair(&make(StpCacheMode::Exact), &trajs);
    let lattice = evals_per_pair(&make(StpCacheMode::Lattice { dt: 20.0 }), &trajs);

    assert!(
        exact < uncached,
        "exact caching did not reduce STP evals per pair: \
         exact {exact:.2} vs uncached {uncached:.2}"
    );
    assert!(
        lattice < uncached,
        "lattice caching did not reduce STP evals per pair: \
         lattice {lattice:.2} vs uncached {uncached:.2}"
    );
}
