//! In-repo performance runner — the replacement for `cargo bench`.
//!
//! ```text
//! cargo run -p sts-bench --release --bin perf                      # all suites
//! cargo run -p sts-bench --release --bin perf -- stp               # one suite
//! cargo run -p sts-bench --release --bin perf -- --quick           # smoke config
//! cargo run -p sts-bench --release --bin perf -- --json BENCH.json # machine output
//! cargo run -p sts-bench --release --bin perf -- --timeline t.jsonl  # replay a trace
//! ```
//!
//! `--timeline <trace.jsonl>` switches from benchmarking to *replay*:
//! the file (an `STS_TRACE=<path>` export from a sharded run) is folded
//! into per-tile lease → deal → heartbeat → commit lifecycles,
//! stragglers beyond `--straggler-pct` (default 90) are flagged, and
//! `--json <out>` writes a chrome://tracing-compatible trace instead of
//! bench numbers.

use std::process::ExitCode;
use sts_bench::perf::{all_suites, PerfReport};
use sts_bench::report::write_json;
use sts_bench::timing::{format_ns, TimingConfig};

fn main() -> ExitCode {
    let mut config = TimingConfig::default();
    let mut selected: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut straggler_pct = 90.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config = TimingConfig::smoke(),
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
            "--timeline" => match args.next() {
                Some(path) => timeline_path = Some(path),
                None => {
                    eprintln!("--timeline requires a path argument");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
            "--straggler-pct" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(pct) => straggler_pct = pct,
                None => {
                    eprintln!("--straggler-pct requires a numeric argument");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => selected.push(name.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = timeline_path {
        return run_timeline(&path, straggler_pct, json_path.as_deref());
    }

    // Bench runs honour STS_TRACE/STS_METRICS like every other binary,
    // which is how a traced sharded run for `--timeline` is produced:
    // the coordinator writes `$STS_TRACE`, its workers ship spans back
    // over the wire (their own env-inherited files get a `.<pid>`
    // suffix and can be ignored or merged).
    sts_obs::init_from_env();

    let suites = all_suites();
    let known: Vec<&str> = suites.iter().map(|(name, _)| *name).collect();
    for name in &selected {
        if !known.contains(&name.as_str()) {
            eprintln!("unknown suite: {name} (available: {})", known.join(", "));
            return ExitCode::FAILURE;
        }
    }

    let mut reports: Vec<PerfReport> = Vec::new();
    for (name, suite) in suites {
        if !selected.is_empty() && !selected.iter().any(|s| s == name) {
            continue;
        }
        println!("== {name} ==");
        let report = suite(&config);
        let width = report
            .entries
            .iter()
            .map(|(id, _)| id.len())
            .max()
            .unwrap_or(0);
        for (id, m) in &report.entries {
            println!(
                "  {id:<width$}  {median:>12}  (min {min}, {samples}×{iters})",
                median = format_ns(m.median_ns),
                min = format_ns(m.min_ns),
                samples = m.samples,
                iters = m.iters_per_sample,
            );
        }
        for (name, value) in &report.extras {
            println!("  {name}: {value:.1}");
        }
        println!();
        reports.push(report);
    }

    if let Some(path) = json_path {
        let mut file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_json(&mut file, &reports) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// Replay a trace JSONL export as per-tile lifecycle timelines: print
/// each tile's lease → commit walk, flag stragglers beyond the
/// percentile threshold, and optionally write a chrome-trace JSON.
fn run_timeline(path: &str, straggler_pct: f64, json_out: Option<&str>) -> ExitCode {
    // `load_trace` fails typed on a missing, empty, record-free or
    // mid-write-truncated file — an empty timeline report silently
    // inverting a straggler analysis is worse than no report.
    let log = match sts_obs::load_trace(std::path::Path::new(path)) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("timeline error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if log.skipped > 0 {
        eprintln!(
            "warning: skipped {} non-trace line(s) in {path}",
            log.skipped
        );
    }
    let orphans = log.orphan_spans();
    let tiles = sts_obs::build_timeline(&log);
    println!(
        "== timeline: {path} ({} span(s), {} event(s), {} tile(s)) ==",
        log.spans.len(),
        log.events.len(),
        tiles.len()
    );
    for t in &tiles {
        let state = if t.commit_ns.is_some() {
            "committed"
        } else if t.fallback_ns.is_some() {
            "local-fallback"
        } else {
            "incomplete"
        };
        let dur = t
            .duration_ns()
            .map_or_else(|| "-".to_string(), |ns| format_ns(ns as f64));
        println!(
            "  tile {:<4} {state:<14} {dur:>10}  leases {} deals {} hb {} expiries {}",
            t.tile,
            t.lease_ns.len(),
            t.deal_ns.len(),
            t.hb_ns.len(),
            t.expire_ns.len(),
        );
    }
    let stragglers = sts_obs::stragglers(&tiles, straggler_pct);
    if stragglers.is_empty() {
        println!("no stragglers beyond the p{straggler_pct:.0} threshold");
    } else {
        println!("stragglers beyond p{straggler_pct:.0} (slowest first):");
        for (tile, dur_ns) in &stragglers {
            println!("  tile {tile}: {}", format_ns(*dur_ns as f64));
        }
    }
    if !orphans.is_empty() {
        eprintln!(
            "warning: {} orphan span(s) (unknown parents): {orphans:?}",
            orphans.len()
        );
    }
    if let Some(out) = json_out {
        let mut file = match std::fs::File::create(out) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = sts_obs::write_chrome_trace(&log, &mut file) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote chrome trace to {out} (open via chrome://tracing or ui.perfetto.dev)");
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: perf [--quick] [--json <path>] [suite ...]\n       \
         perf --timeline <trace.jsonl> [--straggler-pct <p>] [--json <chrome-trace-out>]"
    );
    eprintln!(
        "suites: similarity, grid_size, matching, stp, stp_cache, substrates, chaos, runtime, \
         tiles, shard, serve"
    );
}
