//! In-repo performance runner — the replacement for `cargo bench`.
//!
//! ```text
//! cargo run -p sts-bench --release --bin perf                      # all suites
//! cargo run -p sts-bench --release --bin perf -- stp               # one suite
//! cargo run -p sts-bench --release --bin perf -- --quick           # smoke config
//! cargo run -p sts-bench --release --bin perf -- --json BENCH.json # machine output
//! ```

use std::process::ExitCode;
use sts_bench::perf::{all_suites, PerfReport};
use sts_bench::report::write_json;
use sts_bench::timing::{format_ns, TimingConfig};

fn main() -> ExitCode {
    let mut config = TimingConfig::default();
    let mut selected: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config = TimingConfig::smoke(),
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => selected.push(name.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let suites = all_suites();
    let known: Vec<&str> = suites.iter().map(|(name, _)| *name).collect();
    for name in &selected {
        if !known.contains(&name.as_str()) {
            eprintln!("unknown suite: {name} (available: {})", known.join(", "));
            return ExitCode::FAILURE;
        }
    }

    let mut reports: Vec<PerfReport> = Vec::new();
    for (name, suite) in suites {
        if !selected.is_empty() && !selected.iter().any(|s| s == name) {
            continue;
        }
        println!("== {name} ==");
        let report = suite(&config);
        let width = report
            .entries
            .iter()
            .map(|(id, _)| id.len())
            .max()
            .unwrap_or(0);
        for (id, m) in &report.entries {
            println!(
                "  {id:<width$}  {median:>12}  (min {min}, {samples}×{iters})",
                median = format_ns(m.median_ns),
                min = format_ns(m.min_ns),
                samples = m.samples,
                iters = m.iters_per_sample,
            );
        }
        for (name, value) in &report.extras {
            println!("  {name}: {value:.1}");
        }
        println!();
        reports.push(report);
    }

    if let Some(path) = json_path {
        let mut file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_json(&mut file, &reports) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!("usage: perf [--quick] [--json <path>] [suite ...]");
    eprintln!(
        "suites: similarity, grid_size, matching, stp, stp_cache, substrates, chaos, runtime, tiles"
    );
}
