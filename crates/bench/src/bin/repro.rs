//! Regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! repro <experiment id | all> [--n N] [--seed S] [--full]
//! ```
//!
//! Experiment ids: fig4 … fig14, headline (see `DESIGN.md` §4 for the
//! per-figure index). `--full` runs the paper-density sweeps (slower);
//! the default is a single-core-friendly quick configuration.

use std::process::ExitCode;
use sts_eval::experiments::{self, ExperimentConfig};

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment id | all> [--n N] [--seed S] [--full]");
    eprintln!("experiments: {}", experiments::experiment_ids().join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(id) = args.first().cloned() else {
        return usage();
    };
    let mut cfg = ExperimentConfig::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => {
                cfg.full = true;
                i += 1;
            }
            "--n" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.n_objects = v;
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.seed = v;
                i += 2;
            }
            _ => return usage(),
        }
    }
    eprintln!(
        "# repro {} (n_objects={}, seed={}, full={})",
        id, cfg.n_objects, cfg.seed, cfg.full
    );
    let start = std::time::Instant::now();
    match experiments::run(&id, &cfg) {
        Some(tables) => {
            for t in &tables {
                println!("{}", t.render());
            }
            eprintln!("# done in {:.1}s", start.elapsed().as_secs_f64());
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}
