//! Machine-readable bench reports: the `BENCH_<suite>.json` files that
//! record the repo's performance trajectory.
//!
//! One JSON document per `perf --json` invocation, shaped for diffing
//! across commits: suites in execution order, entries keyed by the same
//! benchmark ids the human-readable output prints, plus each suite's
//! `extras` (derived scalars like pairs/s and chunk-latency quantiles
//! pulled from the telemetry registry). Serialization goes through the
//! `sts-obs` zero-dependency JSON helpers — no serde in the workspace.

use crate::perf::PerfReport;
use std::io::{self, Write};
use sts_obs::json::{write_json_f64, write_json_str};

/// Schema tag written into every report so downstream tooling can
/// detect format changes.
pub const BENCH_SCHEMA: &str = "sts-bench-v1";

/// Serializes `reports` as one pretty-enough JSON document:
///
/// ```json
/// {
///   "schema": "sts-bench-v1",
///   "suites": [
///     {
///       "suite": "runtime",
///       "entries": [
///         {"id": "strict_matrix", "median_ns": 1.5, "mean_ns": 1.6,
///          "min_ns": 1.4, "samples": 10, "iters_per_sample": 4}
///       ],
///       "extras": [{"name": "pairs_per_sec", "value": 1234.5}]
///     }
///   ]
/// }
/// ```
pub fn write_json<W: Write>(w: &mut W, reports: &[PerfReport]) -> io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    write_json_str(&mut out, BENCH_SCHEMA);
    out.push_str(",\n  \"suites\": [");
    for (si, report) in reports.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n      \"suite\": ");
        write_json_str(&mut out, report.suite);
        out.push_str(",\n      \"entries\": [");
        for (ei, (id, m)) in report.entries.iter().enumerate() {
            if ei > 0 {
                out.push(',');
            }
            out.push_str("\n        {\"id\": ");
            write_json_str(&mut out, id);
            out.push_str(", \"median_ns\": ");
            write_json_f64(&mut out, m.median_ns);
            out.push_str(", \"mean_ns\": ");
            write_json_f64(&mut out, m.mean_ns);
            out.push_str(", \"min_ns\": ");
            write_json_f64(&mut out, m.min_ns);
            out.push_str(&format!(
                ", \"samples\": {}, \"iters_per_sample\": {}}}",
                m.samples, m.iters_per_sample
            ));
        }
        if !report.entries.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n      \"extras\": [");
        for (xi, (name, value)) in report.extras.iter().enumerate() {
            if xi > 0 {
                out.push(',');
            }
            out.push_str("\n        {\"name\": ");
            write_json_str(&mut out, name);
            out.push_str(", \"value\": ");
            write_json_f64(&mut out, *value);
            out.push('}');
        }
        if !report.extras.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !reports.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    w.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{time, TimingConfig};
    use sts_obs::json::is_valid_json;

    #[test]
    fn bench_json_is_valid_and_carries_extras() {
        let m = time(&TimingConfig::smoke(), || 1_u32);
        let reports = vec![
            PerfReport {
                suite: "alpha",
                entries: vec![("one".to_string(), m), ("two \"q\"".to_string(), m)],
                extras: vec![("pairs_per_sec".to_string(), 123.5)],
            },
            PerfReport {
                suite: "empty",
                entries: Vec::new(),
                extras: Vec::new(),
            },
        ];
        let mut buf = Vec::new();
        write_json(&mut buf, &reports).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(is_valid_json(&text), "{text}");
        assert!(text.contains("\"schema\": \"sts-bench-v1\""));
        assert!(text.contains("\"suite\": \"alpha\""));
        assert!(text.contains("\"pairs_per_sec\""));
        assert!(text.contains("two \\\"q\\\""), "ids are escaped: {text}");
    }

    #[test]
    fn empty_report_list_is_valid_json() {
        let mut buf = Vec::new();
        write_json(&mut buf, &[]).unwrap();
        assert!(is_valid_json(&String::from_utf8(buf).unwrap()));
    }
}
