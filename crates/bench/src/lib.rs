#![warn(missing_docs)]
//! # sts-bench — benchmark harness
//!
//! Two entry points:
//!
//! * the `repro` binary (`cargo run -p sts-bench --release --bin repro
//!   -- <experiment id | all> [--n N] [--full] [--seed S]`) regenerates
//!   the series behind every evaluation figure of the paper (Figs.
//!   4–14 plus the headline-improvement aggregate) and prints them as
//!   text tables;
//! * the `perf` binary (`cargo run -p sts-bench --release --bin perf
//!   [-- --quick] [-- <suite>]`), built on the in-repo [`timing`]
//!   harness, times the measure kernels (`similarity`), the
//!   grid-size/running-time trade-off of Fig. 12 (`grid_size`), the
//!   matching task (`matching`), the dense-vs-sparse STP ablation
//!   (`stp`), the per-trajectory STP cache against the uncached oracle
//!   (`stp_cache`), the substrate primitives (`substrates`) and the
//!   dirty-data path — repair, lenient parsing, degraded batch —
//!   (`chaos`) and the supervision overhead (`runtime`). A smoke run of
//!   every suite hides behind `cargo test -p sts-bench -- --ignored`.
//!   `--json <path>` additionally writes the machine-readable
//!   [`report`] document (`BENCH_<name>.json` by convention).

pub mod perf;
pub mod report;
pub mod timing;

pub use sts_eval::experiments::{run, ExperimentConfig};
use sts_eval::scenario::ScenarioKind;

/// Shared fixture: a small deterministic mall scenario for benches.
pub fn bench_mall(n_objects: usize) -> sts_eval::Scenario {
    sts_eval::Scenario::build(sts_eval::ScenarioConfig {
        kind: ScenarioKind::Mall,
        n_objects,
        seed: 0xBE7C,
    })
}

/// Shared fixture: a small deterministic taxi scenario for benches.
pub fn bench_taxi(n_objects: usize) -> sts_eval::Scenario {
    sts_eval::Scenario::build(sts_eval::ScenarioConfig {
        kind: ScenarioKind::Taxi,
        n_objects,
        seed: 0xBE7C,
    })
}
