//! Minimal wall-clock timing harness — the in-repo replacement for the
//! Criterion dependency.
//!
//! The model is deliberately simple: a benchmark is a closure, a run is
//! `samples` batches of `iters` calls each, and the reported statistics
//! are per-call nanoseconds over the batch means. Batch size is
//! auto-calibrated so one batch takes roughly
//! [`TimingConfig::target_sample`], which keeps timer-read overhead
//! negligible for nanosecond-scale kernels while still finishing fast
//! for millisecond-scale tasks.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How a benchmark is sampled.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Number of timed batches.
    pub samples: u32,
    /// Calibration target for the duration of one batch.
    pub target_sample: Duration,
    /// Hard cap on the total timed duration; sampling stops early (but
    /// always after at least one batch) once it is exceeded.
    pub max_total: Duration,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            samples: 10,
            target_sample: Duration::from_millis(25),
            max_total: Duration::from_secs(3),
        }
    }
}

impl TimingConfig {
    /// A drastically shortened configuration for smoke tests: enough to
    /// prove the benchmark runs, useless for comparing numbers.
    pub fn smoke() -> Self {
        TimingConfig {
            samples: 2,
            target_sample: Duration::from_micros(500),
            max_total: Duration::from_millis(250),
        }
    }
}

/// Per-call timing statistics for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Calls per batch (after calibration).
    pub iters_per_sample: u64,
    /// Number of batches actually timed.
    pub samples: u32,
    /// Mean nanoseconds per call over all batches.
    pub mean_ns: f64,
    /// Median of the per-batch means, in nanoseconds per call.
    pub median_ns: f64,
    /// Fastest per-batch mean, in nanoseconds per call — the least
    /// noise-contaminated estimate.
    pub min_ns: f64,
}

impl Measurement {
    fn from_batches(iters: u64, batch_ns: &[f64]) -> Self {
        let per_call: Vec<f64> = batch_ns.iter().map(|&ns| ns / iters as f64).collect();
        let mut sorted = per_call.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Measurement {
            iters_per_sample: iters,
            samples: per_call.len() as u32,
            mean_ns: per_call.iter().sum::<f64>() / per_call.len() as f64,
            median_ns: median,
            min_ns: sorted[0],
        }
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {median} (min {min}, mean {mean}, {samples}×{iters} iters)",
            median = format_ns(self.median_ns),
            min = format_ns(self.min_ns),
            mean = format_ns(self.mean_ns),
            samples = self.samples,
            iters = self.iters_per_sample,
        )
    }
}

/// Times `f` under `config` and returns per-call statistics. The return
/// value of `f` is passed through [`black_box`] so the computation is
/// not optimized away.
pub fn time<T>(config: &TimingConfig, mut f: impl FnMut() -> T) -> Measurement {
    // Calibration: double the batch size until one batch reaches the
    // target duration (or a single call already exceeds it).
    let mut iters: u64 = 1;
    let mut calibration_ns;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        calibration_ns = start.elapsed().as_nanos() as f64;
        if calibration_ns >= config.target_sample.as_nanos() as f64 || iters >= (1 << 30) {
            break;
        }
        // Jump straight to the estimated target batch size once the
        // per-call cost is resolved above timer noise (~1 µs total).
        if calibration_ns > 1_000.0 {
            let per_call = calibration_ns / iters as f64;
            let goal = (config.target_sample.as_nanos() as f64 / per_call).ceil() as u64;
            iters = goal.clamp(iters + 1, iters.saturating_mul(128));
        } else {
            iters = iters.saturating_mul(4);
        }
    }

    let mut batch_ns = Vec::with_capacity(config.samples as usize);
    let run_start = Instant::now();
    for _ in 0..config.samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        batch_ns.push(start.elapsed().as_nanos() as f64);
        if run_start.elapsed() > config.max_total {
            break;
        }
    }
    if batch_ns.is_empty() {
        // max_total was exceeded during calibration; use that batch.
        batch_ns.push(calibration_ns);
    }
    Measurement::from_batches(iters, &batch_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let m = time(&TimingConfig::smoke(), || 2_u64.wrapping_mul(3));
        assert!(m.iters_per_sample >= 1);
        assert!(m.samples >= 1);
        assert!(m.min_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns.is_finite() && m.mean_ns.is_finite());
    }

    #[test]
    fn calibration_grows_batches_for_fast_closures() {
        let m = time(&TimingConfig::smoke(), || 1_u32);
        // A no-op closure must be batched many times per sample,
        // otherwise per-call figures are pure timer noise.
        assert!(m.iters_per_sample > 10, "iters = {}", m.iters_per_sample);
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(12_500_000.0), "12.50 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
