//! The performance suites formerly expressed as Criterion benches, now
//! plain functions over the in-repo [`timing`](crate::timing) harness.
//!
//! Each suite builds its fixture, times a handful of named closures and
//! returns a [`PerfReport`]. Run them all via the `perf` binary
//! (`cargo run -p sts-bench --release --bin perf`) or, as a smoke
//! check, `cargo test -p sts-bench -- --ignored perf_smoke`.

use crate::timing::{time, Measurement, TimingConfig};
use crate::{bench_mall, bench_taxi};
use sts_core::noise::GaussianNoise;
use sts_core::transition::SpeedKdeTransition;
use sts_core::{
    default_worker_path, CheckpointConfig, ExecMode, IsolateOptions, JobConfig, ShardOptions,
    StpCacheMode, StpEstimator, Sts, StsConfig, TileConfig, TILE_CELL_BYTES,
};
use sts_eval::matching::matching_ranks;
use sts_eval::measures::{make_measure, measure_set, MeasureKind};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::Xoshiro256pp;
use sts_robust::{standard_injectors, ByteMangler};
use sts_stats::{KalmanConfig, KalmanFilter2D, Kde, Kernel};
use sts_traj::repair::{repair, RepairConfig};
use sts_traj::{io, Trajectory};

/// Named timings from one suite.
pub struct PerfReport {
    /// The suite name (matches the old Criterion bench target).
    pub suite: &'static str,
    /// `(benchmark id, measurement)` pairs in execution order.
    pub entries: Vec<(String, Measurement)>,
    /// Derived scalars beyond raw timings — throughput and latency
    /// quantiles pulled from the telemetry registry (e.g. `pairs_per_sec`,
    /// `chunk_run_p99_ns`). Empty for suites that only report timings.
    pub extras: Vec<(String, f64)>,
}

/// All suites, in the order the old `cargo bench` ran them.
pub fn all_suites() -> Vec<(&'static str, fn(&TimingConfig) -> PerfReport)> {
    vec![
        ("similarity", similarity),
        ("grid_size", grid_size),
        ("matching", matching),
        ("stp", stp),
        ("stp_cache", stp_cache),
        ("substrates", substrates),
        ("chaos", chaos),
        ("runtime", runtime),
        ("tiles", tiles),
        ("shard", shard),
        ("serve", serve),
    ]
}

/// Per-pair similarity kernels: STS versus every baseline on one
/// mall-scale trajectory pair. The relative costs contextualize the
/// complexity analysis of paper §V-C.
pub fn similarity(config: &TimingConfig) -> PerfReport {
    let scenario = bench_mall(6);
    let a = scenario.pairs.d1[0].clone();
    let b = scenario.pairs.d2[0].clone();
    let corpus: Vec<_> = scenario.dataset.trajectories().to_vec();
    let mut entries = Vec::new();
    for kind in [
        MeasureKind::Sts,
        MeasureKind::Cats,
        MeasureKind::Sst,
        MeasureKind::Wgm,
        MeasureKind::Apm,
        MeasureKind::Edwp,
        MeasureKind::Kf,
        MeasureKind::Dtw,
        MeasureKind::Lcss,
        MeasureKind::Edr,
        MeasureKind::Erp,
        MeasureKind::Frechet,
    ] {
        let measure = make_measure(kind, &scenario, &corpus, scenario.scale.grid_size);
        let m = time(config, || measure.pair(&a, &b));
        entries.push((kind.name().to_string(), m));
    }
    PerfReport {
        suite: "similarity",
        entries,
        extras: Vec::new(),
    }
}

/// Fig. 12: STS similarity cost versus grid cell size ("a small grid
/// size means a larger number of grids, leading to a better probability
/// approximation but higher time cost", §VI-E).
pub fn grid_size(config: &TimingConfig) -> PerfReport {
    let mut entries = Vec::new();
    for (scenario, label) in [(bench_mall(4), "mall"), (bench_taxi(4), "taxi")] {
        let a = scenario.pairs.d1[0].clone();
        let b = scenario.pairs.d2[0].clone();
        for cell in scenario.scale.grid_sizes.clone() {
            let sts = Sts::new(
                StsConfig {
                    noise_sigma: scenario.scale.noise_sigma,
                    ..StsConfig::default()
                },
                scenario.grid(cell),
            );
            let m = time(config, || sts.similarity(&a, &b).unwrap());
            entries.push((format!("{label}/{cell}m"), m));
        }
    }
    PerfReport {
        suite: "grid_size",
        entries,
        extras: Vec::new(),
    }
}

/// The full trajectory-matching task (the workload behind Figs. 4–10):
/// an n × n similarity matrix plus ranking, for STS and the two
/// strongest baselines.
pub fn matching(config: &TimingConfig) -> PerfReport {
    let scenario = bench_mall(5);
    let measures = measure_set(
        &[MeasureKind::Sts, MeasureKind::Cats, MeasureKind::Sst],
        &scenario,
        &scenario.pairs,
    );
    let mut entries = Vec::new();
    for (name, measure) in &measures {
        let m = time(config, || matching_ranks(measure.as_ref(), &scenario.pairs));
        entries.push((name.to_string(), m));
    }
    PerfReport {
        suite: "matching",
        entries,
        extras: Vec::new(),
    }
}

/// Dense versus truncated S-T probability estimation — the ablation of
/// the sparse-computation design choice (`DESIGN.md` §5). The dense
/// path is the paper's faithful `O(|R|²)` computation (§V-C); the
/// truncated path is the default.
pub fn stp(config: &TimingConfig) -> PerfReport {
    let scenario = bench_mall(4);
    let grid = scenario.default_grid();
    let traj = scenario.pairs.d1[0].clone();
    let noise = GaussianNoise::new(scenario.scale.noise_sigma);
    let transition = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
        .unwrap()
        .with_position_uncertainty(grid.cell_size() / 2.0);
    let est = StpEstimator::new(&grid, &noise, &transition, &traj);
    // A mid-bridge timestamp (strictly between two observations).
    let t = (traj.get(0).t + traj.get(1).t) / 2.0;

    let entries = vec![
        ("sparse".to_string(), time(config, || est.stp(t))),
        ("dense".to_string(), time(config, || est.stp_dense(t))),
    ];
    PerfReport {
        suite: "stp",
        entries,
        extras: Vec::new(),
    }
}

/// The per-trajectory STP cache (DESIGN.md §3g): the uncached oracle
/// versus exact caching and lattice evaluation on matrix workloads.
/// Beyond raw timings, registry deltas expose how many STP evaluations
/// each scored pair costs under every mode — the `*_stp_evals_per_pair`
/// extras are the direct evidence that caching moved evaluation from
/// per-pair to per-trajectory, and the `*_speedup_*` extras put the
/// headline per-pair cost reduction in the report.
pub fn stp_cache(config: &TimingConfig) -> PerfReport {
    let make_sts = |scenario: &sts_eval::Scenario, mode: StpCacheMode| {
        Sts::new(
            StsConfig {
                noise_sigma: scenario.scale.noise_sigma,
                ..StsConfig::default()
            },
            scenario.default_grid(),
        )
        .with_cache_mode(mode)
    };
    let small = bench_mall(8);
    let small_trajs: Vec<Trajectory> = small.pairs.d1.clone();
    let medium = bench_mall(16);
    let medium_trajs: Vec<Trajectory> = medium.pairs.d1.clone();
    let large = bench_mall(32);
    let large_trajs: Vec<Trajectory> = large.pairs.d1.clone();

    let off_small = make_sts(&small, StpCacheMode::Off);
    let exact_small = make_sts(&small, StpCacheMode::Exact);
    let exact_medium = make_sts(&medium, StpCacheMode::Exact);
    let lattice_large = make_sts(&large, StpCacheMode::Lattice { dt: 20.0 });

    let entries = vec![
        (
            "uncached_matrix_8".to_string(),
            time(config, || {
                off_small
                    .similarity_matrix(&small_trajs, &small_trajs)
                    .unwrap()
            }),
        ),
        (
            "exact_matrix_8".to_string(),
            time(config, || {
                exact_small
                    .similarity_matrix(&small_trajs, &small_trajs)
                    .unwrap()
            }),
        ),
        (
            "exact_matrix_16".to_string(),
            time(config, || {
                exact_medium
                    .similarity_matrix(&medium_trajs, &medium_trajs)
                    .unwrap()
            }),
        ),
        (
            "lattice20_matrix_32".to_string(),
            time(config, || {
                lattice_large
                    .similarity_matrix(&large_trajs, &large_trajs)
                    .unwrap()
            }),
        ),
    ];

    // One dedicated run per mode bracketed by registry snapshots: the
    // counter deltas attribute STP evaluations to scored pairs without
    // contamination from the warm-up iterations above, and the wall
    // clock of the same run yields a per-pair cost for the speedup
    // ratios.
    let mut extras = Vec::new();
    let mut per_pair_secs = |label: &str, sts: &Sts, trajs: &[Trajectory]| -> f64 {
        let base = sts_obs::metrics::global().snapshot();
        let started = std::time::Instant::now();
        sts.similarity_matrix(trajs, trajs).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        let delta = sts_obs::metrics::global().snapshot().since(&base);
        let pairs = delta.counter("core.pairs.scored").unwrap_or(0).max(1);
        let evals = delta.counter("core.stp.evals").unwrap_or(0);
        extras.push((
            format!("{label}_stp_evals_per_pair"),
            evals as f64 / pairs as f64,
        ));
        if elapsed > 0.0 {
            extras.push((format!("{label}_pairs_per_sec"), pairs as f64 / elapsed));
        }
        elapsed / pairs as f64
    };
    let t_off = per_pair_secs("uncached_8", &off_small, &small_trajs);
    let t_exact = per_pair_secs("exact_8", &exact_small, &small_trajs);
    per_pair_secs("exact_16", &exact_medium, &medium_trajs);
    let t_lattice = per_pair_secs("lattice20_32", &lattice_large, &large_trajs);
    if t_exact > 0.0 {
        extras.push(("exact_8_speedup_per_pair".to_string(), t_off / t_exact));
    }
    if t_lattice > 0.0 {
        extras.push((
            "lattice20_32_speedup_per_pair_vs_uncached_8".to_string(),
            t_off / t_lattice,
        ));
    }

    PerfReport {
        suite: "stp_cache",
        entries,
        extras,
    }
}

/// The dirty-data path: repairing injector-corrupted streams, lenient
/// parsing of a byte-mangled file, and the degraded batch API versus
/// the strict matrix on the same clean batch (the `catch_unwind`
/// overhead a well-behaved workload pays for panic containment).
pub fn chaos(config: &TimingConfig) -> PerfReport {
    let scenario = bench_mall(5);
    let clean: Vec<Trajectory> = scenario.pairs.d1.clone();
    let battery = standard_injectors();
    let mut rng = Xoshiro256pp::seed_from_u64(0xBE7C);
    let corrupted: Vec<Vec<sts_traj::TrajPoint>> = clean
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut pts = t.points().to_vec();
            battery[i % battery.len()].inject(&mut pts, &mut rng);
            pts
        })
        .collect();
    let mut mangled = Vec::new();
    io::write_trajectories(&mut mangled, &clean).unwrap();
    ByteMangler::default().mangle(&mut mangled, &mut rng);

    let repair_cfg = RepairConfig::default();
    let survivors: Vec<Trajectory> = corrupted
        .iter()
        .flat_map(|pts| repair(pts, &repair_cfg).unwrap().trajectories)
        .collect();
    let sts = Sts::new(
        StsConfig {
            noise_sigma: scenario.scale.noise_sigma,
            ..StsConfig::default()
        },
        scenario.default_grid(),
    );

    let entries = vec![
        (
            "repair_corrupted_batch".to_string(),
            time(config, || {
                corrupted
                    .iter()
                    .map(|pts| repair(pts, &repair_cfg).unwrap().report.dropped_points())
                    .sum::<usize>()
            }),
        ),
        (
            "lenient_read_mangled".to_string(),
            time(config, || {
                io::read_trajectories_lenient(&mut mangled.as_slice())
                    .unwrap()
                    .records
            }),
        ),
        (
            "strict_matrix_clean".to_string(),
            time(config, || sts.similarity_matrix(&clean, &clean).unwrap()),
        ),
        (
            "degraded_matrix_clean".to_string(),
            time(config, || sts.similarity_matrix_degraded(&clean, &clean)),
        ),
        (
            "degraded_matrix_survivors".to_string(),
            time(config, || {
                sts.similarity_matrix_degraded(&survivors, &survivors)
            }),
        ),
    ];
    PerfReport {
        suite: "chaos",
        entries,
        extras: Vec::new(),
    }
}

/// Supervision overhead on a clean batch: the strict matrix versus a
/// fully supervised job (pair-chunk queue, budget/cancel checks,
/// per-cell retry containment) versus the same job flushing text
/// checkpoints — what a service pays for deadlines, retries and
/// resumability when nothing actually goes wrong.
pub fn runtime(config: &TimingConfig) -> PerfReport {
    let scenario = bench_mall(5);
    let clean: Vec<Trajectory> = scenario.pairs.d1.clone();
    let sts = Sts::new(
        StsConfig {
            noise_sigma: scenario.scale.noise_sigma,
            ..StsConfig::default()
        },
        scenario.default_grid(),
    );
    let ckpt = std::env::temp_dir().join(format!("sts-bench-runtime-{}.ckpt", std::process::id()));

    let entries = vec![
        (
            "strict_matrix".to_string(),
            time(config, || sts.similarity_matrix(&clean, &clean).unwrap()),
        ),
        (
            "supervised_matrix".to_string(),
            time(config, || {
                sts.similarity_matrix_supervised(&clean, &clean, &JobConfig::default())
                    .unwrap()
            }),
        ),
        (
            "supervised_matrix_checkpointed".to_string(),
            time(config, || {
                // Each iteration is a fresh job, not a resume.
                let _ = std::fs::remove_file(&ckpt);
                let cfg = JobConfig {
                    checkpoint: Some(CheckpointConfig {
                        path: ckpt.clone(),
                        flush_every_chunks: 4,
                    }),
                    ..JobConfig::default()
                };
                sts.similarity_matrix_supervised(&clean, &clean, &cfg)
                    .unwrap()
            }),
        ),
    ];
    let _ = std::fs::remove_file(&ckpt);

    // Subprocess execution of the same matrix, to keep the isolation
    // tax (spawn + preamble + frame codec) visible next to the
    // in-process timings. Skipped when the worker binary isn't built
    // alongside this bench (e.g. a bare `cargo run -p sts-bench`).
    let mut entries = entries;
    let worker = default_worker_path();
    if worker.is_file() {
        entries.push((
            "subprocess_matrix".to_string(),
            time(config, || {
                let cfg = JobConfig {
                    exec: ExecMode::Subprocess(IsolateOptions::default()),
                    ..JobConfig::default()
                };
                sts.similarity_matrix_supervised(&clean, &clean, &cfg)
                    .unwrap()
            }),
        ));
    } else {
        eprintln!(
            "perf: skipping runtime/subprocess_matrix ({} not built)",
            worker.display()
        );
    }

    // One dedicated supervised run bracketed by registry snapshots: the
    // delta yields throughput and chunk-latency quantiles untainted by
    // the warm-up iterations above.
    let base = sts_obs::metrics::global().snapshot();
    let started = std::time::Instant::now();
    sts.similarity_matrix_supervised(&clean, &clean, &JobConfig::default())
        .unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let delta = sts_obs::metrics::global().snapshot().since(&base);

    let mut extras = Vec::new();
    let pairs = delta.counter("core.pairs.scored").unwrap_or(0);
    if elapsed > 0.0 {
        extras.push(("pairs_per_sec".to_string(), pairs as f64 / elapsed));
    }
    for (metric, label) in [
        ("runtime.pool.chunk_run_ns", "chunk_run"),
        ("runtime.pool.chunk_wait_ns", "chunk_wait"),
    ] {
        if let Some(h) = delta.histogram(metric) {
            extras.push((format!("{label}_p50_ns"), h.quantile(0.50) as f64));
            extras.push((format!("{label}_p99_ns"), h.quantile(0.99) as f64));
        }
    }

    PerfReport {
        suite: "runtime",
        entries,
        extras,
    }
}

/// Out-of-core tiling: the full in-memory supervised matrix versus the
/// same job dealt into spilled tiles under a memory budget of 1/8 of
/// the matrix footprint, plus the tiled top-k reduction that never
/// materializes full rows. The extras record throughput and the
/// bounded-memory evidence (`max_resident_cells`, `peak_rss_bytes`)
/// quoted in README §"Out-of-core matrices".
pub fn tiles(config: &TimingConfig) -> PerfReport {
    let scenario = bench_mall(5);
    let clean: Vec<Trajectory> = scenario.pairs.d1.clone();
    let sts = Sts::new(
        StsConfig {
            noise_sigma: scenario.scale.noise_sigma,
            ..StsConfig::default()
        },
        scenario.default_grid(),
    );
    let dir = std::env::temp_dir().join(format!("sts-bench-tiles-{}", std::process::id()));
    let total_cells = clean.len() * clean.len();
    // 1/8 of the full matrix footprint: forces ≥ 8 spill/reload cycles.
    let budget_bytes = (total_cells / 8).max(1) * TILE_CELL_BYTES;
    let tiling = TileConfig::with_memory_budget(&dir, budget_bytes);
    let job = JobConfig::default();

    let entries = vec![
        (
            "in_memory_matrix".to_string(),
            time(config, || {
                sts.similarity_matrix_supervised(&clean, &clean, &job)
                    .unwrap()
            }),
        ),
        (
            "tiled_matrix".to_string(),
            time(config, || {
                sts.similarity_matrix_tiled(&clean, &clean, &job, &tiling)
                    .unwrap()
            }),
        ),
        (
            "tiled_topk_5".to_string(),
            time(config, || {
                sts.top_k_matrix_tiled(&clean, &clean, 5, &job, &tiling)
                    .unwrap()
            }),
        ),
    ];

    // One dedicated tiled run bracketed by registry snapshots for
    // throughput, plus the report's own tiling stats for the
    // bounded-memory extras.
    let base = sts_obs::metrics::global().snapshot();
    let started = std::time::Instant::now();
    let (_, report) = sts
        .similarity_matrix_tiled(&clean, &clean, &job, &tiling)
        .unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let delta = sts_obs::metrics::global().snapshot().since(&base);
    let _ = std::fs::remove_dir_all(&dir);

    let mut extras = vec![("matrix_cells".to_string(), total_cells as f64)];
    let pairs = delta.counter("core.pairs.scored").unwrap_or(0);
    if elapsed > 0.0 {
        extras.push(("pairs_per_sec".to_string(), pairs as f64 / elapsed));
    }
    extras.push(("tile_pairs".to_string(), tiling.tile_pairs as f64));
    if let Some(t) = report.stats.tiles {
        extras.push(("tiles_total".to_string(), t.tiles_total as f64));
        extras.push(("tiles_spilled".to_string(), t.tiles_spilled as f64));
        extras.push((
            "max_resident_cells".to_string(),
            t.max_resident_cells as f64,
        ));
        if let Some(rss) = t.peak_rss_bytes {
            extras.push(("peak_rss_bytes".to_string(), rss as f64));
        }
    }

    PerfReport {
        suite: "tiles",
        entries,
        extras,
    }
}

/// Sharded tile execution: the same tiled matrix dealt to 1-worker and
/// 4-worker `sts-worker serve-tcp` fleets next to the in-process tiled
/// baseline. The spread between `tiled_in_process` and
/// `sharded_matrix_1w` is the full distribution tax (fleet spawn,
/// per-worker corpus preparation, frame codec both ways); the spread
/// between 1 and 4 workers is what parallel tile dealing buys back.
/// Extras record the coordinator's lease accounting — on a healthy
/// loopback fleet, `leases_expired` must be 0. Sharded entries are
/// skipped when the worker binary isn't built alongside this bench
/// (e.g. a bare `cargo run -p sts-bench`).
pub fn shard(config: &TimingConfig) -> PerfReport {
    // Larger than the tiles fixture: with only a handful of pairs the
    // constant fleet cost (spawn + per-worker corpus preparation)
    // swamps the compute being parallelized.
    let scenario = bench_mall(12);
    let clean: Vec<Trajectory> = scenario.pairs.d1.clone();
    let sts = Sts::new(
        StsConfig {
            noise_sigma: scenario.scale.noise_sigma,
            ..StsConfig::default()
        },
        scenario.default_grid(),
    );
    let dir = std::env::temp_dir().join(format!("sts-bench-shard-{}", std::process::id()));
    let total_cells = clean.len() * clean.len();
    let budget_bytes = (total_cells / 8).max(1) * TILE_CELL_BYTES;
    let tiling = TileConfig::with_memory_budget(&dir, budget_bytes);

    let mut entries = vec![(
        "tiled_in_process".to_string(),
        time(config, || {
            sts.similarity_matrix_tiled(&clean, &clean, &JobConfig::default(), &tiling)
                .unwrap()
        }),
    )];

    let mut extras = vec![
        ("matrix_cells".to_string(), total_cells as f64),
        ("tile_pairs".to_string(), tiling.tile_pairs as f64),
    ];
    let worker = default_worker_path();
    if worker.is_file() {
        let sharded_cfg = |workers: usize| JobConfig {
            exec: ExecMode::Sharded(ShardOptions {
                workers,
                ..ShardOptions::default()
            }),
            ..JobConfig::default()
        };
        for workers in [1usize, 4] {
            let cfg = sharded_cfg(workers);
            entries.push((
                format!("sharded_matrix_{workers}w"),
                time(config, || {
                    sts.similarity_matrix_tiled(&clean, &clean, &cfg, &tiling)
                        .unwrap()
                }),
            ));
        }

        // One dedicated 4-worker run for throughput and the lease
        // ledger, untainted by the warm-up iterations above.
        let started = std::time::Instant::now();
        let (_, report) = sts
            .similarity_matrix_tiled(&clean, &clean, &sharded_cfg(4), &tiling)
            .unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            extras.push(("pairs_per_sec".to_string(), total_cells as f64 / elapsed));
        }
        if let Some(s) = report.stats.shard {
            extras.push(("workers_spawned".to_string(), s.workers_spawned as f64));
            extras.push(("tiles_leased".to_string(), s.tiles_leased as f64));
            extras.push(("leases_expired".to_string(), s.leases_expired as f64));
            extras.push((
                "tiles_local_fallback".to_string(),
                s.tiles_local_fallback as f64,
            ));
        }
    } else {
        eprintln!(
            "perf: skipping shard/sharded_matrix_* ({} not built)",
            worker.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    PerfReport {
        suite: "shard",
        entries,
        extras,
    }
}

/// The streaming co-location service: ack'd ingest and windowed-query
/// round-trips against a live `sts-serve` instance over loopback TCP,
/// plus the durability-path extras quoted in README §"Online serving"
/// — ack'd ingest throughput, query latency quantiles measured
/// client-side, and the WAL-replay recovery time for the whole
/// ingested history.
pub fn serve(config: &TimingConfig) -> PerfReport {
    use sts_serve::{Ping, ServeClient, ServeOptions, Server};
    const OBJECTS: u64 = 16;
    let dir = std::env::temp_dir().join(format!("sts-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let h = Server::start(
        ServeOptions::new(&dir),
        std::sync::Arc::new(sts_runtime::FsStorage),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = ServeClient::connect(h.addr()).unwrap();
    // Seq-indexed walk over a fixed object fleet: time advances with
    // seq, so every generated ping is fresh and applies.
    let ping = |seq: u64| {
        let obj = seq % OBJECTS;
        Ping {
            seq,
            obj,
            t: seq as f64 / OBJECTS as f64,
            x: 20.0 + (obj as f64 * 3.7 + seq as f64 * 0.01) % 60.0,
            y: 20.0 + (obj as f64 * 5.3 + seq as f64 * 0.007) % 60.0,
        }
    };
    // Warm every object past the cold-model threshold.
    let mut seq = 0u64;
    for _ in 0..4 * OBJECTS {
        seq += 1;
        c.ingest_until_acked(&ping(seq)).unwrap();
    }
    c.flush().unwrap();
    let t_hi = seq as f64 / OBJECTS as f64;

    let mut next = seq;
    let entries = vec![
        (
            "ingest_acked".to_string(),
            time(config, || {
                next += 1;
                c.ingest_until_acked(&ping(next)).unwrap()
            }),
        ),
        (
            "coloc_window_7".to_string(),
            time(config, || c.colocate_raw(0, 1, 0.0, t_hi, 7).unwrap()),
        ),
        (
            "topk_16_obj".to_string(),
            time(config, || c.topk_raw(0, 0.0, t_hi, 5, 4).unwrap()),
        ),
        (
            "hello_roundtrip".to_string(),
            time(config, || c.hello().unwrap()),
        ),
    ];
    seq = next;

    let mut extras = Vec::new();
    // Ack'd ingest throughput: a dedicated pipelined burst (send all,
    // drain all acks), made durable before the clock stops.
    let burst: Vec<Ping> = (1..=1024).map(|i| ping(seq + i)).collect();
    let started = std::time::Instant::now();
    let (ok, _busy) = c.ingest_pipelined(&burst).unwrap();
    c.flush().unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        extras.push(("ingest_records_per_sec".to_string(), ok as f64 / elapsed));
    }
    // Client-observed query latency quantiles over individual
    // round-trips (the `time` entries above report batch means, which
    // hide the tail).
    let mut lat_ns: Vec<f64> = (0..200)
        .map(|i| {
            let started = std::time::Instant::now();
            c.colocate_raw(i % OBJECTS, (i + 1) % OBJECTS, 0.0, t_hi, 7)
                .unwrap();
            started.elapsed().as_nanos() as f64
        })
        .collect();
    lat_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    extras.push(("query_p50_ns".to_string(), lat_ns[lat_ns.len() / 2]));
    extras.push(("query_p99_ns".to_string(), lat_ns[lat_ns.len() * 99 / 100]));
    drop(c);
    h.shutdown();

    // Recovery time: reopen the directory and replay the full WAL
    // history written above (no snapshot ever ran, so this is the
    // worst-case replay for this ingest volume).
    let started = std::time::Instant::now();
    let h2 = Server::start(
        ServeOptions::new(&dir),
        std::sync::Arc::new(sts_runtime::FsStorage),
        "127.0.0.1:0",
    )
    .unwrap();
    extras.push((
        "recovery_replay_ms".to_string(),
        started.elapsed().as_secs_f64() * 1e3,
    ));
    extras.push((
        "recovery_replayed_records".to_string(),
        h2.stats().get("recovered_records").unwrap_or(0) as f64,
    ));
    h2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    PerfReport {
        suite: "serve",
        entries,
        extras,
    }
}

/// Substrate primitives: the KDE speed model (Eq. 6–7), the grid range
/// query behind the truncation, and the Kalman smoother of the KF
/// baseline.
pub fn substrates(config: &TimingConfig) -> PerfReport {
    let samples: Vec<f64> = (0..200).map(|i| 1.0 + (i % 17) as f64 * 0.05).collect();
    let kde = Kde::new(samples, Kernel::Gaussian).unwrap();
    let grid = Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(10_000.0, 10_000.0)),
        100.0,
    )
    .unwrap();
    let obs: Vec<(Point, f64)> = (0..100)
        .map(|i| (Point::new(i as f64 * 2.0, (i % 7) as f64), i as f64))
        .collect();
    let kf = KalmanFilter2D::new(KalmanConfig::default());

    let entries = vec![
        (
            "kde_scaled_density_200".to_string(),
            time(config, || kde.scaled_density(1.3)),
        ),
        (
            "grid_cells_within_500m".to_string(),
            time(config, || {
                grid.cells_within(Point::new(5000.0, 5000.0), 500.0)
            }),
        ),
        (
            "kalman_smooth_100".to_string(),
            time(config, || kf.smooth(&obs)),
        ),
    ];
    PerfReport {
        suite: "substrates",
        entries,
        extras: Vec::new(),
    }
}
