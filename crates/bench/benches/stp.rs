//! Dense versus truncated S-T probability estimation — the ablation of
//! the sparse-computation design choice (`DESIGN.md` §5). The dense
//! path is the paper's faithful `O(|R|²)` computation (§V-C); the
//! truncated path is the default.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_bench::bench_mall;
use sts_core::noise::GaussianNoise;
use sts_core::transition::SpeedKdeTransition;
use sts_core::StpEstimator;
use sts_stats::Kernel;

fn stp_dense_vs_sparse(c: &mut Criterion) {
    let scenario = bench_mall(4);
    let grid = scenario.default_grid();
    let traj = scenario.pairs.d1[0].clone();
    let noise = GaussianNoise::new(scenario.scale.noise_sigma);
    let transition = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian)
        .unwrap()
        .with_position_uncertainty(grid.cell_size() / 2.0);
    let est = StpEstimator::new(&grid, &noise, &transition, &traj);
    // A mid-bridge timestamp (strictly between two observations).
    let t = (traj.get(0).t + traj.get(1).t) / 2.0;

    let mut group = c.benchmark_group("stp");
    group.sample_size(20);
    group.bench_function("sparse", |bch| bch.iter(|| black_box(est.stp(black_box(t)))));
    group.bench_function("dense", |bch| {
        bch.iter(|| black_box(est.stp_dense(black_box(t))))
    });
    group.finish();
}

criterion_group!(benches, stp_dense_vs_sparse);
criterion_main!(benches);
