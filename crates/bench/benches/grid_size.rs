//! Fig. 12 as a Criterion bench: STS similarity cost versus grid cell
//! size ("a small grid size means a larger number of grids, leading to
//! a better probability approximation but higher time cost", §VI-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sts_bench::{bench_mall, bench_taxi};
use sts_core::{Sts, StsConfig};

fn grid_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_size");
    group.sample_size(10);
    for (scenario, label) in [(bench_mall(4), "mall"), (bench_taxi(4), "taxi")] {
        let a = scenario.pairs.d1[0].clone();
        let b = scenario.pairs.d2[0].clone();
        for cell in scenario.scale.grid_sizes {
            let sts = Sts::new(
                StsConfig {
                    noise_sigma: scenario.scale.noise_sigma,
                    ..StsConfig::default()
                },
                scenario.grid(cell),
            );
            group.bench_with_input(
                BenchmarkId::new(label, format!("{cell}m")),
                &cell,
                |bch, _| bch.iter(|| black_box(sts.similarity(&a, &b).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, grid_size_sweep);
criterion_main!(benches);
