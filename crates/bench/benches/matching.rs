//! The full trajectory-matching task (the workload behind Figs. 4–10):
//! an n × n similarity matrix plus ranking, for STS and the two
//! strongest baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_bench::bench_mall;
use sts_eval::matching::matching_ranks;
use sts_eval::measures::{measure_set, MeasureKind};

fn matching_task(c: &mut Criterion) {
    let scenario = bench_mall(5);
    let measures = measure_set(
        &[MeasureKind::Sts, MeasureKind::Cats, MeasureKind::Sst],
        &scenario,
        &scenario.pairs,
    );
    let mut group = c.benchmark_group("matching_5x5");
    group.sample_size(10);
    for (name, measure) in &measures {
        group.bench_function(*name, |bch| {
            bch.iter(|| black_box(matching_ranks(measure.as_ref(), &scenario.pairs)))
        });
    }
    group.finish();
}

criterion_group!(benches, matching_task);
criterion_main!(benches);
