//! Substrate primitives: the KDE speed model (Eq. 6–7), the grid range
//! query behind the truncation, and the Kalman smoother of the KF
//! baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_geo::{BoundingBox, Grid, Point};
use sts_stats::{KalmanConfig, KalmanFilter2D, Kde, Kernel};

fn kde_bench(c: &mut Criterion) {
    let samples: Vec<f64> = (0..200).map(|i| 1.0 + (i % 17) as f64 * 0.05).collect();
    let kde = Kde::new(samples, Kernel::Gaussian).unwrap();
    c.bench_function("kde_scaled_density_200", |b| {
        b.iter(|| black_box(kde.scaled_density(black_box(1.3))))
    });
}

fn grid_bench(c: &mut Criterion) {
    let grid = Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(10_000.0, 10_000.0)),
        100.0,
    )
    .unwrap();
    c.bench_function("grid_cells_within_500m", |b| {
        b.iter(|| black_box(grid.cells_within(black_box(Point::new(5000.0, 5000.0)), 500.0)))
    });
}

fn kalman_bench(c: &mut Criterion) {
    let obs: Vec<(Point, f64)> = (0..100)
        .map(|i| (Point::new(i as f64 * 2.0, (i % 7) as f64), i as f64))
        .collect();
    let kf = KalmanFilter2D::new(KalmanConfig::default());
    c.bench_function("kalman_smooth_100", |b| {
        b.iter(|| black_box(kf.smooth(black_box(&obs))))
    });
}

criterion_group!(benches, kde_bench, grid_bench, kalman_bench);
criterion_main!(benches);
