//! Per-pair similarity kernels: STS versus every baseline on one
//! mall-scale trajectory pair. The relative costs contextualize the
//! complexity analysis of paper §V-C.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_bench::bench_mall;
use sts_eval::measures::{make_measure, MeasureKind};

fn similarity_kernels(c: &mut Criterion) {
    let scenario = bench_mall(6);
    let a = scenario.pairs.d1[0].clone();
    let b = scenario.pairs.d2[0].clone();
    let corpus: Vec<_> = scenario.dataset.trajectories().to_vec();
    let mut group = c.benchmark_group("similarity_pair");
    group.sample_size(10);
    for kind in [
        MeasureKind::Sts,
        MeasureKind::Cats,
        MeasureKind::Sst,
        MeasureKind::Wgm,
        MeasureKind::Apm,
        MeasureKind::Edwp,
        MeasureKind::Kf,
        MeasureKind::Dtw,
        MeasureKind::Lcss,
        MeasureKind::Edr,
        MeasureKind::Erp,
        MeasureKind::Frechet,
    ] {
        let measure = make_measure(kind, &scenario, &corpus, scenario.scale.grid_size);
        group.bench_function(kind.name(), |bch| {
            bch.iter(|| black_box(measure.pair(black_box(&a), black_box(&b))))
        });
    }
    group.finish();
}

criterion_group!(benches, similarity_kernels);
criterion_main!(benches);
