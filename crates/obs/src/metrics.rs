//! The metrics registry: lock-free counters, gauges and fixed-bucket
//! histograms, registered by static name.
//!
//! Design constraints, in order:
//!
//! 1. **cheap enough to leave on** — recording is a handful of relaxed
//!    atomic operations, no locks, no allocation; a process-wide kill
//!    switch ([`set_metrics_enabled`], env `STS_METRICS=0`) reduces it
//!    to one relaxed load and a branch;
//! 2. **zero dependencies** — plain `std::sync::atomic` plus a `Mutex`
//!    that is only touched at *registration* (once per call site, via
//!    the `static_counter!`-family macros), never on the hot path;
//! 3. **stable output** — a [`Snapshot`] is ordered by name and
//!    serializes to JSON-lines text via [`Snapshot::to_jsonl`], so two
//!    runs of the same job diff cleanly.
//!
//! Histograms use fixed power-of-two buckets (64 of them, covering the
//! full `u64` range), which makes recording branch-free — the bucket of
//! `v` is its bit length — and makes two histograms mergeable and
//! subtractable bucket-by-bucket. Quantiles are therefore approximate:
//! a reported p99 is the *upper bound* of the bucket holding the 99th
//! percentile, i.e. within 2× of the true value. That resolution is
//! plenty for the latency-shaped questions the registry answers
//! ("did chunk wait time blow up?"), and it never needs per-sample
//! storage.

use crate::json::{write_json_f64, write_json_str};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide recording switch. Defaults to **on** (recording is a
/// few relaxed atomics); [`crate::init_from_env`] turns it off when
/// `STS_METRICS` is `0`/`off`/`false`.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric recording enabled?
#[inline]
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off, process-wide. Instruments keep
/// their accumulated values; disabling only stops new recordings.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` events (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if metrics_enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative; no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if metrics_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts values whose bit
/// length is `i`, i.e. value 0 lands in bucket 0 and bucket `i ≥ 1`
/// spans `[2^(i-1), 2^i)`. 64 buckets cover every `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram of `u64` samples (latencies in ns, sizes in
/// pairs/cells/bytes). Recording is one relaxed `fetch_add` into the
/// bucket picked by the sample's bit length, plus count/sum updates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index of sample `v`: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (used as the quantile
/// estimate for samples that landed in it).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample (no-op while metrics are disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if metrics_enabled() {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of one histogram, subtractable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow — totals, not proofs).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The approximate `q`-quantile (`q` in `[0, 1]`): the upper bound
    /// of the bucket containing the `⌈q·count⌉`-th smallest sample.
    /// Returns 0 for an empty histogram. Resolution is one power-of-two
    /// bucket, i.e. the estimate is within 2× of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// This snapshot minus `base`, bucket-by-bucket (saturating — a
    /// mismatched base yields zeros, not wraparound garbage).
    pub fn since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(base.buckets[i])),
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
        }
    }
}

/// One named instrument, as held by a [`Registry`].
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments. One process-wide instance (see
/// [`counter`]/[`gauge`]/[`histogram`]) serves all instrumentation;
/// tests construct private registries to stay isolated.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<&'static str, Instrument>>,
}

/// Panic message for a name registered twice with different kinds —
/// always a programming error (names are static string literals).
const KIND_CLASH: &str = "metric name already registered with a different instrument kind";

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("{KIND_CLASH}: {name}"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("{KIND_CLASH}: {name}"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("{KIND_CLASH}: {name}"),
        }
    }

    /// A point-in-time copy of every registered instrument, ordered by
    /// name (the map is a `BTreeMap`, so ordering is inherent).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.instruments.lock().unwrap();
        let mut snap = Snapshot::default();
        for (&name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => snap.counters.push((name.to_string(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.to_string(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((name.to_string(), h.snapshot())),
            }
        }
        snap
    }
}

/// The process-wide registry behind [`counter`]/[`gauge`]/[`histogram`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The global counter named `name` (see [`Registry::counter`]).
/// Hot call sites should cache the handle via [`crate::static_counter!`].
pub fn counter(name: &'static str) -> Arc<Counter> {
    global().counter(name)
}

/// The global gauge named `name` (see [`Registry::gauge`]).
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    global().gauge(name)
}

/// The global histogram named `name` (see [`Registry::histogram`]).
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    global().histogram(name)
}

/// The global counter named `name`, resolved once per call site and
/// cached in a function-local static — the idiom for hot paths.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// The global gauge named `name`, cached per call site.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// The global histogram named `name`, cached per call site.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// A point-in-time copy of a registry's instruments, ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The counter total named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge value named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram state named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// This snapshot minus `base`: counters and histograms subtract
    /// (an instrument absent from `base` keeps its full value), gauges
    /// keep their current reading (a gauge is instantaneous — deltas
    /// are meaningless). The result is what happened *between* the two
    /// snapshots, which is how per-job telemetry is carved out of the
    /// process-wide registry.
    pub fn since(&self, base: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(base.counter(n).unwrap_or(0))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| {
                    let d = match base.histogram(n) {
                        Some(b) => h.since(b),
                        None => h.clone(),
                    };
                    (n.clone(), d)
                })
                .collect(),
        }
    }

    /// Drops instruments whose value is zero / empty — the usual
    /// pre-serialization cleanup for a job delta, so the output names
    /// only what the job actually did.
    pub fn without_zeros(mut self) -> Snapshot {
        self.counters.retain(|&(_, v)| v != 0);
        self.gauges.retain(|&(_, v)| v != 0);
        self.histograms.retain(|(_, h)| h.count != 0);
        self
    }

    /// Folds `other` into this snapshot — the fleet-merge operation
    /// behind multi-process telemetry. Name collisions resolve by
    /// instrument kind:
    ///
    /// * **counters** add (two processes each scoring N pairs merge to
    ///   2N);
    /// * **histograms** add bucket-wise exactly — both sides share the
    ///   same power-of-two bucket boundaries, so merging snapshots is
    ///   bit-identical to having recorded every sample into one
    ///   histogram;
    /// * **gauges** take `other`'s reading (a gauge is instantaneous;
    ///   the later-merged reading is the fresher one).
    ///
    /// Names present on only one side are kept as-is. The result stays
    /// name-ordered, so the accessor and serialization contracts hold.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (n, v) in &other.counters {
            *counters.entry(n.clone()).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, i64> = self.gauges.drain(..).collect();
        for (n, v) in &other.gauges {
            gauges.insert(n.clone(), *v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (n, h) in &other.histograms {
            match histograms.entry(n.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    for (b, add) in mine.buckets.iter_mut().zip(h.buckets.iter()) {
                        *b += add;
                    }
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
            }
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// A copy with `{key="value"}` appended to every instrument name —
    /// how a worker's shipped snapshot is attributed before merging
    /// into the fleet view (`core.pairs.scored{worker="c3"}` next to
    /// the unlabeled fleet sum). Name ordering is preserved: the suffix
    /// is identical for every name, so relative order cannot change.
    pub fn with_label(&self, key: &str, value: &str) -> Snapshot {
        let tag = |n: &String| format!("{n}{{{key}={value:?}}}");
        Snapshot {
            counters: self.counters.iter().map(|(n, v)| (tag(n), *v)).collect(),
            gauges: self.gauges.iter().map(|(n, v)| (tag(n), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (tag(n), h.clone()))
                .collect(),
        }
    }

    /// Encodes the snapshot as one whitespace-separated wire record —
    /// the payload a worker attaches to its result frames. Instruments
    /// whose names contain whitespace are skipped (registry names are
    /// static dotted identifiers; this guards hand-built snapshots).
    ///
    /// ```text
    /// c <name> <total> | g <name> <value> | h <name> <count> <sum> <nb> (<idx> <count>)*
    /// ```
    ///
    /// Histogram buckets travel sparsely as `(index, count)` pairs.
    pub fn encode_wire(&self) -> String {
        let mut out = String::new();
        let ok = |n: &str| !n.contains(char::is_whitespace);
        for (n, v) in self.counters.iter().filter(|(n, _)| ok(n)) {
            out.push_str(&format!(" c {n} {v}"));
        }
        for (n, v) in self.gauges.iter().filter(|(n, _)| ok(n)) {
            out.push_str(&format!(" g {n} {v}"));
        }
        for (n, h) in self.histograms.iter().filter(|(n, _)| ok(n)) {
            let filled: Vec<(usize, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != 0)
                .map(|(i, &c)| (i, c))
                .collect();
            out.push_str(&format!(" h {n} {} {} {}", h.count, h.sum, filled.len()));
            for (i, c) in filled {
                out.push_str(&format!(" {i} {c}"));
            }
        }
        out.trim_start().to_string()
    }

    /// Decodes an [`encode_wire`](Snapshot::encode_wire) record.
    /// `None` on any malformed token — the caller treats the frame as
    /// a protocol violation, not a partial snapshot.
    pub fn decode_wire(payload: &str) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        let mut fields = payload.split_whitespace();
        while let Some(kind) = fields.next() {
            let name = fields.next()?.to_string();
            match kind {
                "c" => {
                    let v: u64 = fields.next()?.parse().ok()?;
                    snap.counters.push((name, v));
                }
                "g" => {
                    let v: i64 = fields.next()?.parse().ok()?;
                    snap.gauges.push((name, v));
                }
                "h" => {
                    let count: u64 = fields.next()?.parse().ok()?;
                    let sum: u64 = fields.next()?.parse().ok()?;
                    let nb: usize = fields.next()?.parse().ok()?;
                    let mut h = HistogramSnapshot {
                        buckets: [0; HISTOGRAM_BUCKETS],
                        count,
                        sum,
                    };
                    for _ in 0..nb {
                        let i: usize = fields.next()?.parse().ok()?;
                        let c: u64 = fields.next()?.parse().ok()?;
                        if i >= HISTOGRAM_BUCKETS {
                            return None;
                        }
                        h.buckets[i] = c;
                    }
                    snap.histograms.push((name, h));
                }
                _ => return None,
            }
        }
        // Wire order is already name-sorted per kind (snapshots are),
        // but decoding must not trust the peer: restore the invariant.
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Some(snap)
    }

    /// Serializes the snapshot as JSON lines, one instrument per line,
    /// in name order (the format is documented in `DESIGN.md` §3e):
    ///
    /// ```text
    /// {"type":"counter","name":"...","value":123}
    /// {"type":"gauge","name":"...","value":-4}
    /// {"type":"histogram","name":"...","count":9,"sum":…,"mean":…,"p50":…,"p90":…,"p99":…,"buckets":[[upper,count],…]}
    /// ```
    ///
    /// Histogram `buckets` lists only non-empty buckets as
    /// `[upper bound, count]` pairs.
    pub fn to_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::new();
        for (name, v) in &self.counters {
            line.clear();
            line.push_str("{\"type\":\"counter\",\"name\":");
            write_json_str(&mut line, name);
            line.push_str(&format!(",\"value\":{v}}}"));
            writeln!(w, "{line}")?;
        }
        for (name, v) in &self.gauges {
            line.clear();
            line.push_str("{\"type\":\"gauge\",\"name\":");
            write_json_str(&mut line, name);
            line.push_str(&format!(",\"value\":{v}}}"));
            writeln!(w, "{line}")?;
        }
        for (name, h) in &self.histograms {
            line.clear();
            line.push_str("{\"type\":\"histogram\",\"name\":");
            write_json_str(&mut line, name);
            line.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"mean\":",
                h.count, h.sum
            ));
            write_json_f64(&mut line, h.mean());
            line.push_str(&format!(
                ",\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99)
            ));
            let mut first = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    line.push(',');
                }
                first = false;
                line.push_str(&format!("[{},{}]", bucket_upper(i), c));
            }
            line.push_str("]}");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// The JSONL text as a `String` (see [`Snapshot::to_jsonl`]).
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        self.to_jsonl(&mut buf).expect("writing to a Vec");
        String::from_utf8(buf).expect("JSONL output is UTF-8")
    }
}

/// The telemetry section attached to a job report: the delta of the
/// global registry over the job's lifetime. A thin wrapper so the
/// report type can grow fields (span summaries, per-stage breakdowns)
/// without touching every consumer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// What the job recorded: global-registry delta between job start
    /// and job end, zero-valued instruments dropped. In a process
    /// running concurrent jobs the delta includes their overlap — the
    /// registry is process-wide by design.
    pub metrics: Snapshot,
}

impl Telemetry {
    /// Serializes the section as JSON lines (see [`Snapshot::to_jsonl`]).
    pub fn to_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.metrics.to_jsonl(w)
    }
}

impl std::fmt::Display for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "telemetry: {} counter(s), {} gauge(s), {} histogram(s)",
            self.metrics.counters.len(),
            self.metrics.gauges.len(),
            self.metrics.histograms.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;
    use std::sync::MutexGuard;

    /// Serializes tests that record metrics with tests that toggle the
    /// process-wide enabled flag (cargo runs tests concurrently).
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let _guard = serial();
        let r = Registry::new();
        let c = r.counter("test.count");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("test.depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        // Same name returns the same instrument.
        assert_eq!(r.counter("test.count").get(), 5);
    }

    #[test]
    #[should_panic(expected = "different instrument kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("same.name");
        r.gauge("same.name");
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = serial();
        let r = Registry::new();
        let c = r.counter("test.off");
        let h = r.histogram("test.off_hist");
        set_metrics_enabled(false);
        c.add(100);
        h.record(100);
        set_metrics_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.add(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _guard = serial();
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram");
        for v in [0u64, 1, 2, 3, 900, 1000, 1100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 3 + 1 + 2 + 900 + 1000 + 1100 + 1_000_000);
        // 0 lands in bucket 0; 1 in [1,2); 900..1100 in [512,2048).
        assert_eq!(s.quantile(0.0), 0);
        // p50 = 4th smallest = 3 -> bucket [2,4) upper bound 3.
        assert_eq!(s.quantile(0.5), 3);
        // p99 = 8th = 1_000_000 -> within its power-of-two bucket.
        let p99 = s.quantile(0.99);
        assert!(
            (1_000_000..2_097_152).contains(&p99),
            "p99 {p99} should be the bucket upper bound of 1e6"
        );
        assert!(s.quantile(1.0) >= 1_000_000);
        assert!((s.mean() - s.sum as f64 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let _guard = serial();
        let r = Registry::new();
        let c = r.counter("d.count");
        let h = r.histogram("d.hist");
        c.add(10);
        h.record(5);
        let base = r.snapshot();
        c.add(7);
        h.record(9);
        h.record(9);
        let delta = r.snapshot().since(&base);
        assert_eq!(delta.counter("d.count"), Some(7));
        let hd = delta.histogram("d.hist").unwrap();
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 18);
        // An instrument born after the base keeps its full value.
        r.counter("d.late").add(3);
        let delta2 = r.snapshot().since(&base);
        assert_eq!(delta2.counter("d.late"), Some(3));
    }

    #[test]
    fn snapshot_jsonl_is_valid_and_stable() {
        let _guard = serial();
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.gauge").set(-4);
        let h = r.histogram("c.hist");
        h.record(100);
        h.record(3000);
        let text = r.snapshot().to_jsonl_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(is_valid_json(line), "unparseable: {line}");
        }
        // Counters first, then gauges, then histograms; name-ordered
        // within each kind — and byte-identical across snapshots.
        assert!(lines[0].contains("\"b.count\""), "{}", lines[0]);
        assert!(lines[1].contains("\"a.gauge\""), "{}", lines[1]);
        assert!(lines[2].contains("\"c.hist\""), "{}", lines[2]);
        assert!(lines[2].contains("\"count\":2"), "{}", lines[2]);
        assert_eq!(text, r.snapshot().to_jsonl_string());
    }

    #[test]
    fn without_zeros_drops_untouched_instruments() {
        let _guard = serial();
        let r = Registry::new();
        r.counter("z.used").add(1);
        r.counter("z.unused");
        r.histogram("z.empty_hist");
        let snap = r.snapshot().without_zeros();
        assert_eq!(snap.counters.len(), 1);
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn merge_is_bucket_wise_exact() {
        let _guard = serial();
        // Recording every sample into one histogram must equal
        // recording them split across two and merging the snapshots —
        // both sides share the power-of-two bucket boundaries.
        let samples = [0u64, 1, 2, 3, 5, 900, 1000, 1100, 1 << 40];
        let whole = Histogram::default();
        let (left, right) = (Histogram::default(), Histogram::default());
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { &left } else { &right }.record(v);
        }
        let mut a = Snapshot {
            histograms: vec![("m.hist".into(), left.snapshot())],
            ..Snapshot::default()
        };
        let b = Snapshot {
            histograms: vec![("m.hist".into(), right.snapshot())],
            ..Snapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.histogram("m.hist").unwrap(), &whole.snapshot());
    }

    #[test]
    fn merge_resolves_collisions_by_kind() {
        let mut a = Snapshot {
            counters: vec![("pairs".into(), 100), ("x.only_a".into(), 1)],
            gauges: vec![("depth".into(), 5)],
            ..Snapshot::default()
        };
        let b = Snapshot {
            counters: vec![("pairs".into(), 28), ("x.only_b".into(), 2)],
            gauges: vec![("depth".into(), 9), ("other".into(), -1)],
            ..Snapshot::default()
        };
        a.merge(&b);
        // Counters add; gauges take the merged-in (fresher) reading;
        // one-sided names survive; name order holds.
        assert_eq!(a.counter("pairs"), Some(128));
        assert_eq!(a.counter("x.only_a"), Some(1));
        assert_eq!(a.counter("x.only_b"), Some(2));
        assert_eq!(a.gauge("depth"), Some(9));
        assert_eq!(a.gauge("other"), Some(-1));
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["pairs", "x.only_a", "x.only_b"]);
    }

    #[test]
    fn merge_composes_with_since_deltas() {
        let _guard = serial();
        // The fleet-merge use: two registries' job deltas, merged,
        // equal the sum of the work each did during the job.
        let (ra, rb) = (Registry::new(), Registry::new());
        ra.counter("w.pairs").add(50); // pre-job noise
        let (base_a, base_b) = (ra.snapshot(), rb.snapshot());
        ra.counter("w.pairs").add(30);
        rb.counter("w.pairs").add(12);
        rb.histogram("w.lat").record(7);
        let mut merged = ra.snapshot().since(&base_a);
        merged.merge(&rb.snapshot().since(&base_b));
        assert_eq!(merged.counter("w.pairs"), Some(42));
        assert_eq!(merged.histogram("w.lat").unwrap().count, 1);
    }

    #[test]
    fn with_label_tags_every_name() {
        let snap = Snapshot {
            counters: vec![("pairs".into(), 3)],
            gauges: vec![("depth".into(), 1)],
            histograms: vec![("lat".into(), Histogram::default().snapshot())],
        };
        let tagged = snap.with_label("worker", "c2");
        assert_eq!(tagged.counter("pairs{worker=\"c2\"}"), Some(3));
        assert_eq!(tagged.gauge("depth{worker=\"c2\"}"), Some(1));
        assert!(tagged.histogram("lat{worker=\"c2\"}").is_some());
        // Labeled and unlabeled names never collide on merge.
        let mut both = snap.clone();
        both.merge(&tagged);
        assert_eq!(both.counter("pairs"), Some(3));
        assert_eq!(both.counter("pairs{worker=\"c2\"}"), Some(3));
    }

    #[test]
    fn wire_codec_round_trips() {
        let _guard = serial();
        let r = Registry::new();
        r.counter("w.pairs").add(256);
        r.gauge("w.depth").set(-3);
        let h = r.histogram("w.lat");
        for v in [1u64, 1, 900, 1 << 33] {
            h.record(v);
        }
        let snap = r.snapshot();
        let wire = snap.encode_wire();
        assert!(!wire.contains('\n'), "must fit one frame: {wire}");
        let back = Snapshot::decode_wire(&wire).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        // An empty snapshot round-trips through an empty payload.
        assert_eq!(Snapshot::decode_wire("").unwrap(), Snapshot::default());
    }

    #[test]
    fn wire_decode_rejects_malformed_payloads() {
        for bad in [
            "c w.pairs",          // missing value
            "q w.pairs 1",        // unknown kind
            "c w.pairs 1x",       // unparseable number
            "h w.lat 1 1 2 0 1",  // fewer bucket pairs than promised
            "h w.lat 1 1 1 99 1", // bucket index out of range
            "g w.depth",          // truncated
        ] {
            assert!(Snapshot::decode_wire(bad).is_none(), "accepted: {bad}");
        }
    }
}
