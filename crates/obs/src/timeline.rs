//! Tile-lifecycle timeline reconstruction from exported trace JSONL.
//!
//! The sharded coordinator and its workers each export span/event
//! records through [`crate::trace::JsonlSubscriber`]; with trace
//! propagation the coordinator already folds shipped worker records
//! into its own stream, so one JSONL file (or several, concatenated)
//! describes the whole fleet. This module turns that flat record
//! stream back into the thing an operator actually asks about: **what
//! happened to each tile** — when it was leased, dealt to a worker,
//! heartbeat, committed (or expired / fell back to local compute) —
//! and which tiles were stragglers.
//!
//! The lifecycle vocabulary is the coordinator's `shard.tile.*` event
//! family, each carrying the global tile index as its value:
//!
//! | event                 | meaning                                    |
//! |-----------------------|--------------------------------------------|
//! | `shard.tile.lease`    | tile leased to a worker slot               |
//! | `shard.tile.deal`     | chunk request written to the worker        |
//! | `shard.tile.hb`       | worker heartbeat (value-carrying progress) |
//! | `shard.tile.commit`   | epoch-checked commit accepted              |
//! | `shard.tile.expire`   | lease expired, tile requeued               |
//! | `shard.tile.fallback` | computed locally after fleet degradation   |
//!
//! The module also writes the reconstructed stream as chrome-trace
//! `trace_event` JSON (load it in `chrome://tracing` / Perfetto), and
//! checks span-tree integrity (`orphan_spans`) — the acceptance probe
//! for cross-process parenting.

use crate::json::{is_valid_json, write_json_f64, write_json_str};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// A span parsed back from JSONL — [`crate::trace::SpanRecord`] with an
/// owned name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSpan {
    /// Span id (remapped worker ids included).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Recording thread id (workers are remapped into a distinct range).
    pub thread: u64,
    /// Start, ns in the exporting coordinator's trace clock.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

/// An event parsed back from JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Event name.
    pub name: String,
    /// Enclosing span id (0 = none).
    pub span: u64,
    /// Recording thread id.
    pub thread: u64,
    /// Time, ns in the exporting coordinator's trace clock.
    pub t_ns: u64,
    /// Numeric payload (tile index for the `shard.tile.*` family).
    pub value: f64,
}

/// A parsed trace log: spans + events + a count of lines that were not
/// recognizable records (blank lines and JSONL from other writers are
/// skipped, not fatal — timelines are a diagnostic tool).
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    /// Parsed spans, input order.
    pub spans: Vec<OwnedSpan>,
    /// Parsed events, input order.
    pub events: Vec<OwnedEvent>,
    /// Non-empty lines that were not valid span/event records.
    pub skipped: usize,
}

impl TraceLog {
    /// Parses JSONL text, appending to this log; call once per input
    /// file to merge coordinator + standalone-worker exports.
    pub fn extend_from_str(&mut self, text: &str) {
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !is_valid_json(line) {
                self.skipped += 1;
                continue;
            }
            if line.contains("\"type\":\"span\"") {
                if let Some(s) = parse_span_line(line) {
                    self.spans.push(s);
                    continue;
                }
            } else if line.contains("\"type\":\"event\"") {
                if let Some(e) = parse_event_line(line) {
                    self.events.push(e);
                    continue;
                }
            }
            self.skipped += 1;
        }
    }

    /// Span ids whose parent is neither 0 nor a span present in the
    /// log. On a complete fleet export this must be empty: every
    /// shipped worker span was re-parented under a coordinator span
    /// before export, so an orphan means records were lost or the
    /// remap is broken.
    pub fn orphan_spans(&self) -> Vec<u64> {
        let known: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .filter(|s| s.parent != 0 && !known.contains(&s.parent))
            .map(|s| s.id)
            .collect()
    }
}

/// Parses one file's worth of JSONL into a fresh log.
pub fn parse_jsonl(text: &str) -> TraceLog {
    let mut log = TraceLog::default();
    log.extend_from_str(text);
    log
}

/// Why a trace file could not be loaded into a usable [`TraceLog`].
///
/// [`parse_jsonl`] itself stays lenient (skip-and-count) because
/// merged streams legitimately contain foreign lines; this error type
/// is for the *file* boundary, where "no file", "nothing parseable"
/// and "cut off mid-write" deserve a hard, typed failure instead of a
/// silently empty report.
#[derive(Debug)]
pub enum TimelineError {
    /// The file could not be read at all.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file was read but contained not a single span or event
    /// record — an empty export, or one truncated down to garbage.
    NoRecords {
        /// The offending path.
        path: String,
        /// Non-empty lines that were present but unparseable.
        skipped: usize,
    },
    /// The file parsed, but its final line is an incomplete record —
    /// the classic shape of an export killed mid-write. The intact
    /// prefix is discarded on purpose: a timeline silently missing its
    /// tail inverts straggler analysis.
    Truncated {
        /// The offending path.
        path: String,
        /// Records that did parse before the cut.
        records: usize,
    },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::Io { path, source } => {
                write!(f, "cannot read trace file {path}: {source}")
            }
            TimelineError::NoRecords { path, skipped } => write!(
                f,
                "trace file {path} holds no span/event records \
                 ({skipped} unparseable line(s)) — empty or truncated export"
            ),
            TimelineError::Truncated { path, records } => write!(
                f,
                "trace file {path} is truncated mid-record after \
                 {records} record(s) — export was cut off while writing"
            ),
        }
    }
}

impl std::error::Error for TimelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimelineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Loads one trace JSONL file, failing with a typed [`TimelineError`]
/// when the file is missing, unreadable, empty of records, or
/// truncated mid-record — the strict entry point `perf --timeline`
/// uses, in contrast to the lenient [`parse_jsonl`].
pub fn load_trace(path: &std::path::Path) -> Result<TraceLog, TimelineError> {
    let display = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|source| TimelineError::Io {
        path: display.clone(),
        source,
    })?;
    let log = parse_jsonl(&text);
    let records = log.spans.len() + log.events.len();
    if records == 0 {
        return Err(TimelineError::NoRecords {
            path: display,
            skipped: log.skipped,
        });
    }
    // A file killed mid-write ends in a partial line: no trailing
    // newline AND that last fragment failed to parse as a record.
    let last_is_partial = !text.ends_with('\n')
        && text.lines().next_back().is_some_and(|l| {
            !l.trim().is_empty()
                && parse_jsonl(l).spans.is_empty()
                && parse_jsonl(l).events.is_empty()
        });
    if last_is_partial {
        return Err(TimelineError::Truncated {
            path: display,
            records,
        });
    }
    Ok(log)
}

/// Extracts the u64 value following `"key":` in a flat JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the f64 (or `null` → NaN) following `"key":`.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    if rest.starts_with("null") {
        return Some(f64::NAN);
    }
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"key":"` (escape-aware).
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let cp = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(cp)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

fn parse_span_line(line: &str) -> Option<OwnedSpan> {
    Some(OwnedSpan {
        id: field_u64(line, "id")?,
        parent: field_u64(line, "parent")?,
        name: field_str(line, "name")?,
        thread: field_u64(line, "thread")?,
        start_ns: field_u64(line, "start_ns")?,
        dur_ns: field_u64(line, "dur_ns")?,
    })
}

fn parse_event_line(line: &str) -> Option<OwnedEvent> {
    Some(OwnedEvent {
        name: field_str(line, "name")?,
        span: field_u64(line, "span")?,
        thread: field_u64(line, "thread")?,
        t_ns: field_u64(line, "t_ns")?,
        value: field_f64(line, "value")?,
    })
}

/// One tile's reconstructed lifecycle. Repeated phases (a tile can be
/// leased, expired and re-leased several times under chaos) keep every
/// occurrence, in time order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TileLifecycle {
    /// Global tile index.
    pub tile: u64,
    /// `shard.tile.lease` timestamps.
    pub lease_ns: Vec<u64>,
    /// `shard.tile.deal` timestamps.
    pub deal_ns: Vec<u64>,
    /// `shard.tile.hb` timestamps.
    pub hb_ns: Vec<u64>,
    /// `shard.tile.expire` timestamps.
    pub expire_ns: Vec<u64>,
    /// `shard.tile.commit` timestamp, if the tile committed.
    pub commit_ns: Option<u64>,
    /// `shard.tile.fallback` timestamp, if computed locally.
    pub fallback_ns: Option<u64>,
}

impl TileLifecycle {
    /// When work on the tile first started (first lease, or the
    /// fallback instant for tiles never leased).
    pub fn start_ns(&self) -> Option<u64> {
        self.lease_ns.first().copied().or(self.fallback_ns)
    }

    /// When the tile reached a terminal state (commit or fallback).
    pub fn end_ns(&self) -> Option<u64> {
        self.commit_ns.or(self.fallback_ns)
    }

    /// Wall time from first lease to terminal state.
    pub fn duration_ns(&self) -> Option<u64> {
        Some(self.end_ns()?.saturating_sub(self.start_ns()?))
    }

    /// Did the tile reach a terminal state?
    pub fn complete(&self) -> bool {
        self.end_ns().is_some()
    }
}

/// Folds a log's `shard.tile.*` events into per-tile lifecycles,
/// ordered by tile index. Events with non-finite values (a `null`ed
/// payload) are ignored.
pub fn build_timeline(log: &TraceLog) -> Vec<TileLifecycle> {
    let mut tiles: BTreeMap<u64, TileLifecycle> = BTreeMap::new();
    let mut sorted: Vec<&OwnedEvent> = log
        .events
        .iter()
        .filter(|e| e.name.starts_with("shard.tile.") && e.value.is_finite() && e.value >= 0.0)
        .collect();
    sorted.sort_by_key(|e| e.t_ns);
    for e in sorted {
        let tile = e.value as u64;
        let entry = tiles.entry(tile).or_insert_with(|| TileLifecycle {
            tile,
            ..TileLifecycle::default()
        });
        match e.name.as_str() {
            "shard.tile.lease" => entry.lease_ns.push(e.t_ns),
            "shard.tile.deal" => entry.deal_ns.push(e.t_ns),
            "shard.tile.hb" => entry.hb_ns.push(e.t_ns),
            "shard.tile.expire" => entry.expire_ns.push(e.t_ns),
            "shard.tile.commit" => entry.commit_ns = Some(e.t_ns),
            "shard.tile.fallback" => entry.fallback_ns = Some(e.t_ns),
            _ => {}
        }
    }
    tiles.into_values().collect()
}

/// Tiles whose lease→terminal duration exceeds the `pct`-th percentile
/// of all complete tiles' durations — the straggler report, as
/// `(tile, duration_ns)` pairs, slowest first. `pct` is clamped to
/// `[0, 100]`; with fewer than two complete tiles nothing can be a
/// straggler.
pub fn stragglers(tiles: &[TileLifecycle], pct: f64) -> Vec<(u64, u64)> {
    let mut durations: Vec<u64> = tiles
        .iter()
        .filter_map(TileLifecycle::duration_ns)
        .collect();
    if durations.len() < 2 {
        return Vec::new();
    }
    durations.sort_unstable();
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * (durations.len() - 1) as f64).round() as usize;
    let threshold = durations[rank.min(durations.len() - 1)];
    let mut out: Vec<(u64, u64)> = tiles
        .iter()
        .filter_map(|t| Some((t.tile, t.duration_ns()?)))
        .filter(|&(_, d)| d > threshold)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1));
    out
}

/// Writes the log as one chrome-trace JSON object
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` or
/// Perfetto. Spans become complete (`"ph":"X"`) events, point events
/// become instants (`"ph":"i"`); timestamps convert from ns to the
/// format's µs.
pub fn write_chrome_trace(log: &TraceLog, out: &mut dyn Write) -> io::Result<()> {
    out.write_all(b"{\"traceEvents\":[")?;
    let mut first = true;
    let sep = |out: &mut dyn Write, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            out.write_all(b",\n")
        }
    };
    for s in &log.spans {
        sep(out, &mut first)?;
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":");
        write_json_str(&mut line, &s.name);
        line.push_str(&format!(
            ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            s.thread,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.id,
            s.parent
        ));
        out.write_all(line.as_bytes())?;
    }
    for e in &log.events {
        sep(out, &mut first)?;
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":");
        write_json_str(&mut line, &e.name);
        line.push_str(&format!(
            ",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"value\":",
            e.thread,
            e.t_ns as f64 / 1e3
        ));
        write_json_f64(&mut line, e.value);
        line.push_str("}}");
        out.write_all(line.as_bytes())?;
    }
    out.write_all(b"]}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_line(name: &str, t_ns: u64, value: f64) -> String {
        format!(
            "{{\"type\":\"event\",\"name\":\"{name}\",\"span\":0,\"thread\":1,\"t_ns\":{t_ns},\"value\":{value}}}"
        )
    }

    #[test]
    fn parses_exported_record_shapes() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"job.shard\",\"id\":7,\"parent\":0,",
            "\"thread\":1,\"start_ns\":100,\"dur_ns\":50}\n",
            "{\"type\":\"event\",\"name\":\"shard.tile.lease\",\"span\":7,",
            "\"thread\":1,\"t_ns\":120,\"value\":3}\n",
            "not json at all\n",
            "{\"type\":\"other\",\"name\":\"x\"}\n",
        );
        let log = parse_jsonl(text);
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.skipped, 2);
        assert_eq!(log.spans[0].name, "job.shard");
        assert_eq!(log.spans[0].start_ns, 100);
        assert_eq!(log.events[0].value, 3.0);
    }

    #[test]
    fn lifecycle_folds_events_per_tile_in_time_order() {
        let mut text = String::new();
        // Tile 0: lease → deal → hb → expire → lease → deal → commit,
        // deliberately shuffled in input order.
        for (name, t) in [
            ("shard.tile.commit", 700u64),
            ("shard.tile.lease", 100),
            ("shard.tile.expire", 400),
            ("shard.tile.deal", 150),
            ("shard.tile.lease", 500),
            ("shard.tile.hb", 300),
            ("shard.tile.deal", 550),
        ] {
            text.push_str(&event_line(name, t, 0.0));
            text.push('\n');
        }
        // Tile 1 never leased, computed locally.
        text.push_str(&event_line("shard.tile.fallback", 900, 1.0));
        let tiles = build_timeline(&parse_jsonl(&text));
        assert_eq!(tiles.len(), 2);
        let t0 = &tiles[0];
        assert_eq!(t0.tile, 0);
        assert_eq!(t0.lease_ns, vec![100, 500]);
        assert_eq!(t0.deal_ns, vec![150, 550]);
        assert_eq!(t0.expire_ns, vec![400]);
        assert_eq!(t0.commit_ns, Some(700));
        assert_eq!(t0.duration_ns(), Some(600));
        assert!(t0.complete());
        let t1 = &tiles[1];
        assert_eq!(t1.tile, 1);
        assert!(t1.lease_ns.is_empty());
        assert_eq!(t1.end_ns(), Some(900));
        assert_eq!(t1.duration_ns(), Some(0));
    }

    #[test]
    fn stragglers_flag_only_tiles_beyond_the_percentile() {
        let mut text = String::new();
        // Nine 100ns tiles and one 10_000ns tile.
        for tile in 0..10u64 {
            let start = tile * 20_000;
            let dur = if tile == 7 { 10_000 } else { 100 };
            text.push_str(&event_line("shard.tile.lease", start, tile as f64));
            text.push('\n');
            text.push_str(&event_line("shard.tile.commit", start + dur, tile as f64));
            text.push('\n');
        }
        let tiles = build_timeline(&parse_jsonl(&text));
        let slow = stragglers(&tiles, 90.0);
        assert_eq!(slow, vec![(7, 10_000)]);
        // Everything is ≤ the 100th percentile.
        assert!(stragglers(&tiles, 100.0).is_empty());
        // A single tile can't be its own straggler.
        assert!(stragglers(&tiles[..1], 50.0).is_empty());
    }

    #[test]
    fn orphans_are_spans_with_unknown_parents() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"root\",\"id\":1,\"parent\":0,",
            "\"thread\":1,\"start_ns\":0,\"dur_ns\":10}\n",
            "{\"type\":\"span\",\"name\":\"child\",\"id\":2,\"parent\":1,",
            "\"thread\":1,\"start_ns\":1,\"dur_ns\":5}\n",
            "{\"type\":\"span\",\"name\":\"lost\",\"id\":9,\"parent\":42,",
            "\"thread\":2,\"start_ns\":2,\"dur_ns\":3}\n",
        );
        assert_eq!(parse_jsonl(text).orphan_spans(), vec![9]);
    }

    #[test]
    fn load_trace_fails_typed_on_missing_empty_and_truncated_files() {
        let dir = std::env::temp_dir().join(format!("sts-timeline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file → Io.
        let err = load_trace(&dir.join("nope.jsonl")).unwrap_err();
        assert!(matches!(err, TimelineError::Io { .. }), "{err}");

        // Empty file → NoRecords with zero skipped.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let err = load_trace(&empty).unwrap_err();
        assert!(
            matches!(err, TimelineError::NoRecords { skipped: 0, .. }),
            "{err}"
        );

        // All-garbage file → NoRecords counting the junk.
        let junk = dir.join("junk.jsonl");
        std::fs::write(&junk, "hello\nworld\n").unwrap();
        let err = load_trace(&junk).unwrap_err();
        assert!(
            matches!(err, TimelineError::NoRecords { skipped: 2, .. }),
            "{err}"
        );

        // Good record followed by a mid-write cut → Truncated.
        let good = event_line("shard.tile.lease", 10, 0.0);
        let cut = dir.join("cut.jsonl");
        std::fs::write(&cut, format!("{good}\n{}", &good[..good.len() / 2])).unwrap();
        let err = load_trace(&cut).unwrap_err();
        assert!(
            matches!(err, TimelineError::Truncated { records: 1, .. }),
            "{err}"
        );

        // Intact file → Ok.
        let ok = dir.join("ok.jsonl");
        std::fs::write(&ok, format!("{good}\n")).unwrap();
        let log = load_trace(&ok).unwrap();
        assert_eq!(log.events.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chrome_trace_output_is_valid_json() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"job.shard\",\"id\":1,\"parent\":0,",
            "\"thread\":1,\"start_ns\":1500,\"dur_ns\":2500}\n",
            "{\"type\":\"event\",\"name\":\"shard.tile.commit\",\"span\":1,",
            "\"thread\":1,\"t_ns\":3000,\"value\":0}\n",
        );
        let log = parse_jsonl(text);
        let mut out = Vec::new();
        write_chrome_trace(&log, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(is_valid_json(s.trim()), "{s}");
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ts\":1.5"));
    }
}
