//! Process-level resource introspection.
//!
//! The out-of-core tiled engine claims bounded memory; this module is
//! how the claim is *measured* rather than asserted. On Linux the
//! kernel tracks the high-water mark of resident memory (`VmHWM` in
//! `/proc/self/status`); elsewhere the probe degrades to `None` and
//! callers fall back to their own accounting (the engine's
//! `max_resident_cells` counter, which is platform-independent).

/// The process's peak resident set size in bytes (`VmHWM`), when the
/// platform exposes it. `None` on non-Linux platforms or when
/// `/proc/self/status` cannot be read or parsed.
///
/// Note this is a *high-water mark*: it never decreases over the
/// process lifetime, and it covers the whole process (code, corpus,
/// allocator slack) — comparisons are only meaningful against the same
/// process's earlier value or a sibling process with the same setup.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Samples [`peak_rss_bytes`] into the `process.peak_rss_bytes` gauge
/// and returns it. Call at the end of memory-sensitive phases (the
/// tiled merge, bench suites) so the high-water mark lands in
/// telemetry snapshots.
pub fn record_peak_rss() -> Option<u64> {
    let v = peak_rss_bytes();
    if let Some(bytes) = v {
        crate::static_gauge!("process.peak_rss_bytes")
            .set(i64::try_from(bytes).unwrap_or(i64::MAX));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_where_supported() {
        match peak_rss_bytes() {
            // On Linux the probe must produce something sane: more
            // than a page, less than a petabyte.
            Some(bytes) => {
                assert!(bytes > 4096, "{bytes}");
                assert!(bytes < (1 << 50), "{bytes}");
            }
            // Elsewhere the documented fallback is None.
            None => assert!(!cfg!(target_os = "linux"), "Linux must report VmHWM"),
        }
    }

    #[test]
    fn record_sets_the_gauge() {
        let v = record_peak_rss();
        if let Some(bytes) = v {
            let g = crate::metrics::global()
                .snapshot()
                .gauge("process.peak_rss_bytes")
                .unwrap_or(0);
            assert!(g > 0, "gauge recorded");
            assert!(g as u64 <= bytes.max(i64::MAX as u64));
        }
    }
}
