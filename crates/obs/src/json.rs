//! Zero-dependency JSON helpers: string escaping, float formatting and
//! a minimal validating parser.
//!
//! The telemetry layer emits JSON-lines text (one object per line) for
//! metric snapshots, spans and bench reports. Serde is off the table —
//! the workspace builds offline with zero external crates — and the
//! subset of JSON we *emit* is tiny: flat objects of strings, numbers,
//! booleans and arrays thereof. The writer half lives with the callers
//! (each knows its own shape); this module supplies the two parts that
//! are easy to get subtly wrong — escaping and number formatting — plus
//! a small recursive-descent validator so tests can assert "this line
//! is parseable JSON" without an external parser.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with the quotes).
///
/// Escapes the two mandatory characters (`"` and `\`), the C0 control
/// range as `\u00XX`, and the common shorthands (`\n`, `\r`, `\t`).
/// Everything else — including non-ASCII — is passed through verbatim;
/// JSON strings are Unicode and the output stays valid UTF-8 because
/// the input is a Rust `&str`.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. JSON has no `NaN`/`inf`; non-finite
/// values are emitted as `null` (the conventional lossy mapping) so a
/// degenerate metric never produces an unparseable line.
pub fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Is `s` one complete, valid JSON value (with optional surrounding
/// whitespace)? A deliberately strict recursive-descent check — used by
/// tests to assert that emitted JSONL lines parse — not a full parser:
/// it validates structure and returns no value.
pub fn is_valid_json(s: &str) -> bool {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    if !parse_value(b, &mut pos, 0) {
        return false;
    }
    skip_ws(b, &mut pos);
    pos == b.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Depth cap: telemetry lines are flat; anything 64 levels deep is a
/// bug, not data, and recursing further risks the test's own stack.
const MAX_DEPTH: usize = 64;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    if depth > MAX_DEPTH {
        return false;
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        _ => false,
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos, depth + 1) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos, depth + 1) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false, // raw control character
            _ => *pos += 1,
        }
    }
    false // unterminated
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return false;
    }
    // JSON forbids leading zeros ("01"), but accepts "0" and "0.5".
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_the_required_characters() {
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001f""#);
        assert!(is_valid_json(&out));
    }

    #[test]
    fn non_finite_floats_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            write_json_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        write_json_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }

    #[test]
    fn validator_accepts_valid_json() {
        for s in [
            "{}",
            "[]",
            r#"{"a":1,"b":[1,2.5,-3e2],"c":"x\ny","d":null,"e":true}"#,
            "  [ { } , [ ] , 0 ] ",
            "\"just a string\"",
            "-0.5e-10",
        ] {
            assert!(is_valid_json(s), "should parse: {s}");
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for s in [
            "",
            "{",
            "{'a':1}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,]",
            "01",
            "1.",
            "1e",
            "nul",
            r#""unterminated"#,
            "\"raw\ncontrol\"",
            "{} trailing",
            "NaN",
        ] {
            assert!(!is_valid_json(s), "should reject: {s}");
        }
    }

    #[test]
    fn rust_float_display_is_valid_json() {
        // The Snapshot/bench writers print f64 via `Display`; every
        // shortest-round-trip form must be parseable.
        for v in [0.0, -0.0, 1.5, 1e300, 1e-300, f64::MAX, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_json_f64(&mut out, v);
            assert!(is_valid_json(&out), "{v} -> {out}");
        }
    }
}
