//! # sts-obs — std-only telemetry for the STS pipeline
//!
//! The observability layer for the STS reproduction: a lock-free
//! [`metrics`] registry (counters, gauges, fixed-bucket histograms), a
//! lightweight [`trace`] layer (spans, events, pluggable subscribers)
//! and the zero-dependency [`json`] helpers both serialize through.
//! Like every crate in the workspace it builds offline with no external
//! dependencies.
//!
//! The layer is designed to be **left on**: recording a metric is a few
//! relaxed atomics, opening a span with tracing disabled is one relaxed
//! load. The instrumented crates (`sts-core`, `sts-runtime`, `sts-traj`,
//! `sts-robust`) call into the global registry unconditionally; the two
//! process-wide switches decide whether anything is actually captured:
//!
//! * **`STS_METRICS`** — set to `0`, `off` or `false` to disable metric
//!   recording (instruments stay registered, values freeze);
//! * **`STS_TRACE`** — set to `jsonl`, `stderr` or `1` to stream trace
//!   records to stderr, or to any other non-empty value to treat it as
//!   a file path. Unset or empty means tracing stays off.
//!
//! Binaries and examples opt in by calling [`init_from_env`] once at
//! startup; libraries never touch the environment.
//!
//! ```
//! use sts_obs::{static_counter, static_histogram, trace};
//!
//! fn score_chunk(pairs: u64) {
//!     let _span = trace::span("doc.score_chunk");
//!     static_counter!("doc.pairs.scored").add(pairs);
//!     static_histogram!("doc.chunk.pairs").record(pairs);
//! }
//! score_chunk(64);
//! assert!(sts_obs::metrics::global().snapshot().counter("doc.pairs.scored").unwrap() >= 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod process;
pub mod timeline;
pub mod trace;

pub use metrics::{
    metrics_enabled, set_metrics_enabled, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot, Telemetry,
};
pub use process::{peak_rss_bytes, record_peak_rss};
pub use timeline::{
    build_timeline, load_trace, parse_jsonl, stragglers, write_chrome_trace, TileLifecycle,
    TimelineError, TraceLog,
};
pub use trace::{
    clear_subscriber, current_span_id, emit_event, emit_span, event, intern_name, set_subscriber,
    span, span_with_parent, tracing_enabled, ClockMap, EventRecord, FanoutSubscriber,
    JsonlSubscriber, NullSubscriber, RingRecorder, Span, SpanRecord, Subscriber,
};

use std::sync::Arc;

/// Configures telemetry from the environment — call once at binary
/// startup (libraries must not).
///
/// * `STS_METRICS=0|off|false` disables metric recording.
/// * `STS_TRACE=jsonl|stderr|1` installs a [`JsonlSubscriber`] writing
///   to stderr; any other non-empty value is taken as a file path to
///   write trace JSONL to. A path that cannot be created falls back to
///   stderr with a warning — telemetry must never abort the job.
///
/// Returns `true` if a trace subscriber was installed.
pub fn init_from_env() -> bool {
    init_from_env_suffixed(None)
}

/// [`init_from_env`] for processes that may share their parent's
/// environment — a file-path `STS_TRACE` gets `.<suffix>` appended.
///
/// [`JsonlSubscriber::to_file`] truncates, so a worker spawned by a
/// coordinator that exports `STS_TRACE=<path>` would otherwise clobber
/// the coordinator's trace mid-write. With a suffix (workers pass
/// their pid) every process owns its own file; the `jsonl`/`stderr`
/// modes are per-process already and stay untouched.
pub fn init_from_env_suffixed(suffix: Option<&str>) -> bool {
    if let Ok(v) = std::env::var("STS_METRICS") {
        if matches!(v.trim(), "0" | "off" | "false" | "OFF" | "FALSE") {
            set_metrics_enabled(false);
        }
    }
    let Ok(mode) = std::env::var("STS_TRACE") else {
        return false;
    };
    let mode = mode.trim();
    if mode.is_empty() || matches!(mode, "0" | "off" | "false") {
        return false;
    }
    let sub: Arc<dyn Subscriber> = match mode {
        "jsonl" | "stderr" | "1" => Arc::new(JsonlSubscriber::to_stderr()),
        path => {
            let path = match suffix {
                Some(sfx) => format!("{path}.{sfx}"),
                None => path.to_string(),
            };
            match JsonlSubscriber::to_file(std::path::Path::new(&path)) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("sts-obs: cannot open STS_TRACE={path}: {e}; tracing to stderr");
                    Arc::new(JsonlSubscriber::to_stderr())
                }
            }
        }
    };
    set_subscriber(sub);
    true
}
