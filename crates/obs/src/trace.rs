//! Lightweight structured tracing: spans, events and pluggable
//! subscribers.
//!
//! A **span** is a named region of work with monotonic start/duration
//! timing, a per-process unique id and a parent (tracked through a
//! thread-local stack, so nesting works across call layers without
//! threading a context argument through the pipeline). An **event** is
//! a point-in-time observation with an optional numeric value,
//! attributed to the current span.
//!
//! The hot-path contract mirrors the metrics registry: when tracing is
//! disabled (the default), [`span`] and [`event`] cost one relaxed
//! atomic load and a branch — no clock read, no thread-local access,
//! no allocation. Enabling tracing means installing a [`Subscriber`]:
//!
//! * [`NullSubscriber`] — receives and drops everything; used by the
//!   overhead-guard tests to price the record-building machinery alone;
//! * [`RingRecorder`] — keeps the last N records in memory, for tests
//!   and post-mortem digging;
//! * [`JsonlSubscriber`] — writes each record as one JSON line to a
//!   file or stderr; what `STS_TRACE` installs (see
//!   [`crate::init_from_env`]).
//!
//! Span records are delivered on **close** (so the duration is known),
//! from the closing thread; subscribers must be `Send + Sync` and do
//! their own locking. Record delivery order is completion order per
//! thread, interleaved arbitrarily across threads — consumers sort by
//! `start_ns` when they need timeline order.

use crate::json::write_json_str;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A closed span, as delivered to a [`Subscriber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (1-based; ids are never reused).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Static span name (e.g. `"job.run"`).
    pub name: &'static str,
    /// Small per-process thread id (not the OS tid) — stable within a
    /// run, suitable for grouping records by worker.
    pub thread: u64,
    /// Start time, nanoseconds since the process's trace epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// A point-in-time event, as delivered to a [`Subscriber`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Static event name (e.g. `"job.checkpoint_flush"`).
    pub name: &'static str,
    /// Id of the span the event occurred in, or 0 outside any span.
    pub span: u64,
    /// Small per-process thread id (see [`SpanRecord::thread`]).
    pub thread: u64,
    /// Event time, nanoseconds since the process's trace epoch.
    pub t_ns: u64,
    /// The event's numeric payload (count, size, seconds — the name
    /// defines the unit).
    pub value: f64,
}

/// Receives closed spans and events. Implementations are responsible
/// for their own synchronization; delivery happens on the recording
/// thread.
pub trait Subscriber: Send + Sync {
    /// A span closed.
    fn on_span(&self, span: &SpanRecord);
    /// An event fired.
    fn on_event(&self, event: &EventRecord);
}

/// Fast-path switch: `true` iff a subscriber is installed.
static TRACE_ON: AtomicBool = AtomicBool::new(false);
/// The installed subscriber (locked only when tracing is enabled).
static SUBSCRIBER: Mutex<Option<Arc<dyn Subscriber>>> = Mutex::new(None);
/// Span id allocator (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Thread id allocator for [`thread_id`].
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost open span on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Is a subscriber installed?
#[inline]
pub fn tracing_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Installs `sub` as the process-wide subscriber and enables tracing.
/// Returns the previously installed subscriber, if any.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    let prev = SUBSCRIBER.lock().unwrap().replace(sub);
    TRACE_ON.store(true, Ordering::Relaxed);
    prev
}

/// Removes the subscriber and disables tracing. Returns the subscriber
/// that was installed, if any.
pub fn clear_subscriber() -> Option<Arc<dyn Subscriber>> {
    TRACE_ON.store(false, Ordering::Relaxed);
    SUBSCRIBER.lock().unwrap().take()
}

/// The current subscriber handle (None when tracing is disabled).
fn subscriber() -> Option<Arc<dyn Subscriber>> {
    SUBSCRIBER.lock().unwrap().clone()
}

/// Nanoseconds since the process's trace epoch (the first call).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// This thread's small per-process id (1-based, assigned on first use).
pub fn thread_id() -> u64 {
    thread_local! {
        static ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// An open span; closing (dropping) it delivers a [`SpanRecord`] to the
/// subscriber. Created by [`span`]. Inert — a zero-cost token — when
/// tracing was disabled at creation time.
#[must_use = "a span measures the scope it is bound to; dropping it immediately closes it"]
pub struct Span {
    /// `None` when tracing was off at creation (the inert form).
    armed: Option<ArmedSpan>,
}

struct ArmedSpan {
    id: u64,
    parent: u64,
    /// What this thread's span stack held before us — restored on drop.
    /// Differs from `parent` only for cross-thread spans.
    prev: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
}

/// Opens a span named `name`. When tracing is disabled this is one
/// relaxed load and returns an inert guard; when enabled it reads the
/// clock, allocates an id and pushes itself on the thread's span stack.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_impl(name, None)
}

/// Opens a span with an explicit `parent` id instead of this thread's
/// innermost open span. The span stack is thread-local, so work handed
/// to another thread (a pool worker, a watcher) starts a fresh root
/// there; passing the dealing span's [`Span::id`] stitches the pieces
/// back into one tree. Parent 0 (an inert span's id) means "root", so
/// forwarding an id is always safe whether or not tracing was on when
/// it was taken.
#[inline]
pub fn span_with_parent(name: &'static str, parent: u64) -> Span {
    span_impl(name, Some(parent))
}

#[inline]
fn span_impl(name: &'static str, explicit_parent: Option<u64>) -> Span {
    if !tracing_enabled() {
        return Span { armed: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT_SPAN.with(|c| c.replace(id));
    Span {
        armed: Some(ArmedSpan {
            id,
            parent: explicit_parent.unwrap_or(prev),
            prev,
            name,
            start: Instant::now(),
            start_ns: now_ns(),
        }),
    }
}

impl Span {
    /// The span's id (0 for an inert span) — what [`EventRecord::span`]
    /// refers to.
    pub fn id(&self) -> u64 {
        self.armed.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        CURRENT_SPAN.with(|c| c.set(armed.prev));
        let record = SpanRecord {
            id: armed.id,
            parent: armed.parent,
            name: armed.name,
            thread: thread_id(),
            start_ns: armed.start_ns,
            dur_ns: u64::try_from(armed.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        if let Some(sub) = subscriber() {
            sub.on_span(&record);
        }
    }
}

/// Fires an event named `name` with numeric payload `value`, attributed
/// to the innermost open span on this thread. One relaxed load when
/// tracing is disabled.
#[inline]
pub fn event(name: &'static str, value: f64) {
    if !tracing_enabled() {
        return;
    }
    let record = EventRecord {
        name,
        span: CURRENT_SPAN.with(|c| c.get()),
        thread: thread_id(),
        t_ns: now_ns(),
        value,
    };
    if let Some(sub) = subscriber() {
        sub.on_event(&record);
    }
}

/// The innermost open span id on this thread (0 = none) — what a
/// coordinator forwards to a remote worker as the parent for its span
/// tree. Same semantics as [`Span::id`] on the enclosing span.
#[inline]
pub fn current_span_id() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// Delivers a pre-built span record to the installed subscriber, if
/// any. This is the re-emission door for spans that were recorded in
/// *another process* (a shipped worker span buffer): the coordinator
/// remaps ids/clocks and replays them here so one subscriber sees the
/// whole fleet. No-op when tracing is disabled.
pub fn emit_span(record: &SpanRecord) {
    if !tracing_enabled() {
        return;
    }
    if let Some(sub) = subscriber() {
        sub.on_span(record);
    }
}

/// [`emit_span`]'s counterpart for events.
pub fn emit_event(record: &EventRecord) {
    if !tracing_enabled() {
        return;
    }
    if let Some(sub) = subscriber() {
        sub.on_event(record);
    }
}

/// Interns a runtime string as a `&'static str` — span/event names in
/// records are static, but names arriving over the wire are not.
/// Interned names live for the process lifetime; the table holds one
/// entry per *distinct* name, and span vocabularies are small static
/// sets, so the leak is bounded.
pub fn intern_name(name: &str) -> &'static str {
    static TABLE: Mutex<Option<std::collections::BTreeSet<&'static str>>> = Mutex::new(None);
    let mut table = TABLE.lock().unwrap();
    let table = table.get_or_insert_with(Default::default);
    if let Some(existing) = table.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// Maps another process's monotonic-ns trace clock onto this one.
///
/// Each process's [`now_ns`] counts from its own arbitrary epoch (the
/// first call in that process), so raw worker timestamps are
/// meaningless coordinator-side. The wire handshake has the worker
/// report its current `now_ns` reading; the coordinator pairs it with
/// its own reading at receipt, and the difference maps every
/// subsequent worker timestamp into coordinator time. The mapping
/// absorbs the network latency of the handshake leg (worker spans can
/// appear up to one round-trip early); on loopback that skew is
/// microseconds — fine for timelines, not for auditing causality.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockMap {
    /// Added to remote timestamps to land in local trace time.
    pub offset_ns: i64,
}

impl ClockMap {
    /// A mapping from a remote clock reading paired with the local
    /// reading taken when it arrived.
    pub fn from_exchange(remote_now_ns: u64, local_now_ns: u64) -> ClockMap {
        ClockMap {
            offset_ns: i64::try_from(local_now_ns)
                .unwrap_or(i64::MAX)
                .saturating_sub(i64::try_from(remote_now_ns).unwrap_or(i64::MAX)),
        }
    }

    /// A remote timestamp in local trace time (saturating at 0).
    pub fn to_local(&self, remote_ns: u64) -> u64 {
        let shifted = i64::try_from(remote_ns)
            .unwrap_or(i64::MAX)
            .saturating_add(self.offset_ns);
        u64::try_from(shifted).unwrap_or(0)
    }
}

/// Fans records out to several subscribers — e.g. a [`RingRecorder`]
/// for in-test assertions *and* a [`JsonlSubscriber`] for timeline
/// export, simultaneously.
pub struct FanoutSubscriber {
    subs: Vec<Arc<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// A fanout over `subs`, delivered in order.
    pub fn new(subs: Vec<Arc<dyn Subscriber>>) -> Self {
        FanoutSubscriber { subs }
    }
}

impl Subscriber for FanoutSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        for sub in &self.subs {
            sub.on_span(span);
        }
    }

    fn on_event(&self, event: &EventRecord) {
        for sub in &self.subs {
            sub.on_event(event);
        }
    }
}

/// A subscriber that receives and discards everything — the cost
/// baseline for the overhead-guard tests (record building + dispatch,
/// no I/O).
#[derive(Debug, Default)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn on_span(&self, _span: &SpanRecord) {}
    fn on_event(&self, _event: &EventRecord) {}
}

/// Keeps the most recent records in memory, dropping the oldest past
/// the capacity — the black-box flight recorder for tests and
/// post-mortems.
#[derive(Debug)]
pub struct RingRecorder {
    spans: Mutex<VecDeque<SpanRecord>>,
    events: Mutex<VecDeque<EventRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` spans and `capacity`
    /// events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            spans: Mutex::new(VecDeque::new()),
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears both rings (the dropped count is kept).
    pub fn clear(&self) {
        self.spans.lock().unwrap().clear();
        self.events.lock().unwrap().clear();
    }
}

impl Subscriber for RingRecorder {
    fn on_span(&self, span: &SpanRecord) {
        let mut ring = self.spans.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span.clone());
    }

    fn on_event(&self, event: &EventRecord) {
        let mut ring = self.events.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event.clone());
    }
}

/// Writes each record as one JSON line:
///
/// ```text
/// {"type":"span","name":"job.run","id":7,"parent":0,"thread":1,"start_ns":123,"dur_ns":456}
/// {"type":"event","name":"job.checkpoint_flush","span":7,"thread":1,"t_ns":200,"value":3}
/// ```
///
/// Output is buffered and flushed after every record — tracing is a
/// diagnostic mode, and a crash must not eat the records leading up to
/// it. Write errors are counted, not propagated (telemetry must never
/// take the pipeline down).
pub struct JsonlSubscriber {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    write_errors: AtomicU64,
}

impl JsonlSubscriber {
    /// Writes records to `w`.
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        JsonlSubscriber {
            out: Mutex::new(BufWriter::new(w)),
            write_errors: AtomicU64::new(0),
        }
    }

    /// Writes records to standard error.
    pub fn to_stderr() -> Self {
        Self::new(Box::new(io::stderr()))
    }

    /// Writes records to the file at `path` (created or truncated).
    pub fn to_file(path: &Path) -> io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }

    /// Records that failed to write.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap();
        let result = writeln!(out, "{line}").and_then(|()| out.flush());
        if result.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"span\",\"name\":");
        write_json_str(&mut line, span.name);
        line.push_str(&format!(
            ",\"id\":{},\"parent\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            span.id, span.parent, span.thread, span.start_ns, span.dur_ns
        ));
        self.write_line(&line);
    }

    fn on_event(&self, event: &EventRecord) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"event\",\"name\":");
        write_json_str(&mut line, event.name);
        line.push_str(&format!(
            ",\"span\":{},\"thread\":{},\"t_ns\":{},\"value\":",
            event.span, event.thread, event.t_ns
        ));
        crate::json::write_json_f64(&mut line, event.value);
        line.push('}');
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;
    use std::sync::MutexGuard;

    /// The subscriber slot is process-global; tests that install one
    /// must not interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_yields_inert_spans() {
        let _guard = serial();
        clear_subscriber();
        let s = span("never.recorded");
        assert_eq!(s.id(), 0);
        drop(s);
        event("never.recorded", 1.0);
        // Nothing to assert beyond "did not panic / did not allocate a
        // subscriber" — the recorder tests prove the enabled path.
        assert!(!tracing_enabled());
    }

    #[test]
    fn ring_recorder_captures_nesting_and_threads() {
        let _guard = serial();
        let ring = Arc::new(RingRecorder::new(64));
        set_subscriber(ring.clone());
        {
            let outer = span("outer");
            event("tick", 2.5);
            {
                let _inner = span("inner");
                event("tock", 7.0);
            }
            assert!(outer.id() > 0);
        }
        clear_subscriber();

        let spans = ring.spans();
        assert_eq!(spans.len(), 2, "{spans:?}");
        // Spans close inner-first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.dur_ns <= outer.dur_ns.max(1));

        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span, outer.id, "tick fired in the outer span");
        assert_eq!(events[1].span, inner.id, "tock fired in the inner span");
        assert_eq!(events[0].value, 2.5);
    }

    #[test]
    fn explicit_parent_stitches_across_threads() {
        let _guard = serial();
        let ring = Arc::new(RingRecorder::new(64));
        set_subscriber(ring.clone());
        {
            let dealer = span("dealer");
            let dealer_id = dealer.id();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let handed = span_with_parent("handed", dealer_id);
                    {
                        // Nested spans on the worker stack under it.
                        let _local = span("local");
                    }
                    drop(handed);
                    // The worker stack is restored: a fresh span here
                    // is a root again, not a child of `handed`.
                    let _after = span("after");
                });
            });
        }
        clear_subscriber();

        let spans = ring.spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap().clone();
        let (dealer, handed, local, after) = (
            by_name("dealer"),
            by_name("handed"),
            by_name("local"),
            by_name("after"),
        );
        assert_eq!(handed.parent, dealer.id);
        assert_ne!(handed.thread, dealer.thread);
        assert_eq!(local.parent, handed.id);
        assert_eq!(after.parent, 0, "{spans:?}");
    }

    #[test]
    fn ring_recorder_evicts_oldest() {
        let _guard = serial();
        let ring = Arc::new(RingRecorder::new(2));
        set_subscriber(ring.clone());
        for _ in 0..5 {
            let _s = span("evicted");
        }
        clear_subscriber();
        assert_eq!(ring.spans().len(), 2);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn parallel_spans_get_distinct_threads_and_roots() {
        let _guard = serial();
        let ring = Arc::new(RingRecorder::new(64));
        set_subscriber(ring.clone());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = span("worker");
                });
            }
        });
        clear_subscriber();
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.parent == 0));
        assert_ne!(spans[0].thread, spans[1].thread);
        assert_ne!(spans[0].id, spans[1].id);
    }

    #[test]
    fn jsonl_subscriber_emits_parseable_lines() {
        let _guard = serial();
        let path = std::env::temp_dir().join(format!("sts-obs-trace-{}.jsonl", std::process::id()));
        let sub = Arc::new(JsonlSubscriber::to_file(&path).unwrap());
        set_subscriber(sub.clone());
        {
            let _s = span("stage.one");
            event("progress", 0.5);
        }
        clear_subscriber();
        assert_eq!(sub.write_errors(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        for line in &lines {
            assert!(is_valid_json(line), "unparseable: {line}");
        }
        assert!(lines[0].contains("\"type\":\"event\""), "{}", lines[0]);
        assert!(lines[1].contains("\"type\":\"span\""), "{}", lines[1]);
        assert!(lines[1].contains("\"name\":\"stage.one\""), "{}", lines[1]);
    }

    #[test]
    fn clock_map_shifts_remote_timestamps() {
        // Worker clock started 1000ns "after" ours: remote 50 ↔ local 1050.
        let map = ClockMap::from_exchange(50, 1050);
        assert_eq!(map.offset_ns, 1000);
        assert_eq!(map.to_local(50), 1050);
        assert_eq!(map.to_local(0), 1000);
        // Negative offsets clamp at zero rather than wrapping.
        let map = ClockMap::from_exchange(5000, 10);
        assert_eq!(map.to_local(0), 0);
        assert_eq!(map.to_local(6000), 1010);
    }

    #[test]
    fn intern_name_dedups_to_one_static() {
        let a = intern_name("shard.tile.lease");
        let b = intern_name(&String::from("shard.tile.lease"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "shard.tile.lease");
    }

    #[test]
    fn fanout_and_emit_replay_remote_records() {
        let _guard = serial();
        let ring_a = Arc::new(RingRecorder::new(8));
        let ring_b = Arc::new(RingRecorder::new(8));
        set_subscriber(Arc::new(FanoutSubscriber::new(vec![
            ring_a.clone(),
            ring_b.clone(),
        ])));
        let shipped = SpanRecord {
            id: (3 << 32) | 7,
            parent: 2,
            name: intern_name("worker.chunk"),
            thread: 99,
            start_ns: 123,
            dur_ns: 456,
        };
        emit_span(&shipped);
        emit_event(&EventRecord {
            name: intern_name("worker.tile"),
            span: shipped.id,
            thread: 99,
            t_ns: 150,
            value: 4.0,
        });
        clear_subscriber();
        for ring in [&ring_a, &ring_b] {
            assert_eq!(ring.spans(), vec![shipped.clone()]);
            assert_eq!(ring.events().len(), 1);
            assert_eq!(ring.events()[0].span, shipped.id);
        }
        // Disabled tracing makes emit a no-op, like span()/event().
        emit_span(&shipped);
        assert!(ring_a.spans().len() == 1);
    }

    #[test]
    fn null_subscriber_discards_everything() {
        let _guard = serial();
        set_subscriber(Arc::new(NullSubscriber));
        assert!(tracing_enabled());
        let _s = span("into.the.void");
        event("gone", 1.0);
        let prev = clear_subscriber();
        assert!(prev.is_some());
        assert!(!tracing_enabled());
    }
}
