//! Per-object incremental state and the windowed query engine.
//!
//! The invariant everything else leans on: **the served state is a
//! pure function of the applied ping sequence**. Every container
//! iterates deterministically (`BTreeMap`, rings), every derived
//! quantity (speed samples, the cached KDE) is recomputed from the
//! same inputs in the same order, and all floats persist bit-exactly —
//! so replaying the WAL after a SIGKILL reconstructs a state whose
//! query answers are byte-identical to the uninterrupted run.
//!
//! Per object, the state is deliberately small and bounded:
//!
//! * a **tail ring** of the last `ring_capacity` accepted pings — the
//!   live tail of the trajectory, the paper's sporadic-sampling regime
//!   served incrementally;
//! * a **speed-sample ring** feeding the KDE transition model of
//!   Eq. 4/5 ([`sts_core::SpeedKdeTransition`]), updated with one
//!   division per accepted ping and rebuilt into a model lazily;
//! * the cached rebuilt model, versioned so the shedding ladder can
//!   *defer* the rebuild (answer from the stale model, flagged) without
//!   ever changing what a fresh rebuild would produce.
//!
//! Queries evaluate the paper's machinery unchanged: a
//! [`StpEstimator`] per object over the tail trajectory and Eq. 8/9
//! co-location probability, averaged over evenly spaced timestamps in
//! the query window.

use crate::{f64_from_hex, f64_to_hex, ServeStats};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};
use sts_core::{colocation_probability, GaussianNoise, SpeedKdeTransition, StpEstimator};
use sts_geo::{BoundingBox, Grid, Point};
use sts_stats::Kernel;
use sts_traj::{TrajPoint, Trajectory};

/// One timestamped location report for one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ping {
    /// Client-assigned, globally increasing ingest sequence number —
    /// the idempotency key for resends and duplicated frames.
    pub seq: u64,
    /// Object (user / vehicle / device) id.
    pub obj: u64,
    /// Observation time (seconds, arbitrary epoch).
    pub t: f64,
    /// Observed x, in grid meters.
    pub x: f64,
    /// Observed y, in grid meters.
    pub y: f64,
}

impl Ping {
    /// The WAL / wire record body: `p <seq> <obj> <t> <x> <y>` with
    /// bit-exact hex floats.
    pub fn encode(&self) -> String {
        format!(
            "p {} {} {} {} {}",
            self.seq,
            self.obj,
            f64_to_hex(self.t),
            f64_to_hex(self.x),
            f64_to_hex(self.y)
        )
    }

    /// Parses [`Ping::encode`]'s output.
    pub fn decode(line: &str) -> Option<Ping> {
        let mut it = line.split_whitespace();
        if it.next()? != "p" {
            return None;
        }
        let ping = Ping {
            seq: it.next()?.parse().ok()?,
            obj: it.next()?.parse().ok()?,
            t: f64_from_hex(it.next()?)?,
            x: f64_from_hex(it.next()?)?,
            y: f64_from_hex(it.next()?)?,
        };
        if it.next().is_some() {
            return None;
        }
        Some(ping)
    }
}

/// Geometry + model configuration of the served state. Must be
/// identical across restarts of the same data directory (it is not
/// persisted — the operator owns it, like a schema).
#[derive(Debug, Clone)]
pub struct StateConfig {
    /// Grid area minimum corner.
    pub area_min: (f64, f64),
    /// Grid area maximum corner.
    pub area_max: (f64, f64),
    /// Grid cell size (meters).
    pub cell_size: f64,
    /// Location-noise sigma for the observation model (meters).
    pub noise_sigma: f64,
    /// KDE kernel for the speed transition model.
    pub kernel: Kernel,
    /// Tail-ring capacity per object (pings kept).
    pub ring_capacity: usize,
    /// Speed-sample ring capacity per object.
    pub speed_capacity: usize,
}

impl Default for StateConfig {
    fn default() -> Self {
        StateConfig {
            area_min: (0.0, 0.0),
            area_max: (100.0, 100.0),
            cell_size: 5.0,
            noise_sigma: 2.0,
            kernel: Kernel::Gaussian,
            ring_capacity: 32,
            speed_capacity: 32,
        }
    }
}

/// Verdict of applying one ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyVerdict {
    /// Applied to the served state (and owed to the WAL).
    Applied,
    /// Sequence number already consumed — a resend or duplicate.
    DupSeq,
    /// Time not strictly after the object's last accepted ping (or not
    /// finite); the seq is consumed but the state unchanged.
    StaleTime,
}

/// Freshness of a query answer, carried in the reply header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staleness {
    /// Every model involved was rebuilt to the current state version.
    Fresh,
    /// At least one object answered from a stale cached speed model
    /// (refresh deferred by the shedding ladder).
    Stale,
}

impl Staleness {
    /// The wire token.
    pub fn token(self) -> &'static str {
        match self {
            Staleness::Fresh => "fresh",
            Staleness::Stale => "stale",
        }
    }
}

/// A query answer plus its degradation markers.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome<T> {
    /// The answer.
    pub value: T,
    /// Whether any stale cached model contributed.
    pub staleness: Staleness,
    /// Whether the deadline budget cut the evaluation short (top-k
    /// only: remaining candidates were skipped).
    pub deadline_hit: bool,
}

#[derive(Debug, Default)]
struct ObjectState {
    /// Tail of the trajectory: (t, x, y), oldest first, bounded.
    ring: VecDeque<(f64, f64, f64)>,
    /// Recent speed samples, oldest first, bounded.
    speeds: VecDeque<f64>,
    /// Pings applied to this object over its lifetime.
    applied: u64,
    /// Bumped once per applied ping; cache validity token.
    version: u64,
    /// Lazily rebuilt speed model: (version it was built at, model).
    cache: Option<(u64, SpeedKdeTransition)>,
}

impl ObjectState {
    fn last_t(&self) -> Option<f64> {
        self.ring.back().map(|&(t, _, _)| t)
    }

    /// The tail trajectory, or `None` while the object is cold
    /// (fewer than 2 pings: no speed evidence, no meaningful STP).
    fn trajectory(&self) -> Option<Trajectory> {
        if self.ring.len() < 2 || self.speeds.is_empty() {
            return None;
        }
        let pts: Vec<TrajPoint> = self
            .ring
            .iter()
            .map(|&(t, x, y)| TrajPoint::from_xy(x, y, t))
            .collect();
        Trajectory::new(pts).ok()
    }
}

/// The served state: every object's incremental tail + the query
/// engine. Single-writer (the ingest thread) behind the server's
/// mutex; queries take the same lock.
#[derive(Debug)]
pub struct ServeState {
    cfg: StateConfig,
    grid: Grid,
    noise: GaussianNoise,
    objects: BTreeMap<u64, ObjectState>,
    /// Highest ingest seq ever consumed (applied or refused stale).
    max_seq: u64,
}

impl ServeState {
    /// A fresh, empty state.
    ///
    /// # Panics
    /// If the grid configuration is invalid (degenerate area or
    /// non-positive cell size) — a config error, not a data error.
    pub fn new(cfg: StateConfig) -> Self {
        let area = BoundingBox::new(
            Point::new(cfg.area_min.0, cfg.area_min.1),
            Point::new(cfg.area_max.0, cfg.area_max.1),
        );
        let grid = Grid::new(area, cfg.cell_size).expect("valid serve grid config");
        let noise = GaussianNoise::new(cfg.noise_sigma);
        ServeState {
            cfg,
            grid,
            noise,
            objects: BTreeMap::new(),
            max_seq: 0,
        }
    }

    /// The state configuration.
    pub fn config(&self) -> &StateConfig {
        &self.cfg
    }

    /// Highest ingest seq consumed so far.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// Objects currently tracked, in id order.
    pub fn object_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    /// Total pings applied across all objects.
    pub fn total_applied(&self) -> u64 {
        self.objects.values().map(|o| o.applied).sum()
    }

    /// Applies one ping. Pure in the sequence of accepted calls: the
    /// same ping sequence always produces the same state, which is the
    /// whole recovery argument.
    pub fn apply(&mut self, p: &Ping) -> ApplyVerdict {
        if p.seq <= self.max_seq {
            return ApplyVerdict::DupSeq;
        }
        self.max_seq = p.seq;
        if !(p.t.is_finite() && p.x.is_finite() && p.y.is_finite()) {
            return ApplyVerdict::StaleTime;
        }
        let obj = self.objects.entry(p.obj).or_default();
        if let Some(last_t) = obj.last_t() {
            if p.t <= last_t {
                return ApplyVerdict::StaleTime;
            }
            let &(lt, lx, ly) = obj.ring.back().expect("non-empty ring has a back");
            let dist = ((p.x - lx).powi(2) + (p.y - ly).powi(2)).sqrt();
            let speed = dist / (p.t - lt);
            if speed.is_finite() {
                if obj.speeds.len() == self.cfg.speed_capacity {
                    obj.speeds.pop_front();
                }
                obj.speeds.push_back(speed);
            }
        }
        if obj.ring.len() == self.cfg.ring_capacity {
            obj.ring.pop_front();
        }
        obj.ring.push_back((p.t, p.x, p.y));
        obj.applied += 1;
        obj.version += 1;
        ApplyVerdict::Applied
    }

    /// Ensures `obj`'s speed model cache is usable, rebuilding it
    /// unless `allow_stale` and a previous build exists. Returns
    /// whether the object will answer from a stale model, or `None`
    /// when the object is cold (no model possible).
    fn ensure_model(&mut self, obj: u64, allow_stale: bool, stats: &ServeStats) -> Option<bool> {
        let cell = self.grid.cell_size();
        let kernel = self.cfg.kernel;
        let o = self.objects.get_mut(&obj)?;
        if o.ring.len() < 2 || o.speeds.is_empty() {
            return None;
        }
        match &o.cache {
            Some((v, _)) if *v == o.version => Some(false),
            Some(_) if allow_stale => {
                stats.refresh_deferred(1);
                Some(true)
            }
            _ => {
                let model = SpeedKdeTransition::from_speed_samples(
                    o.speeds.iter().copied().collect(),
                    kernel,
                )
                .ok()?
                .with_position_uncertainty(cell / 2.0);
                o.cache = Some((o.version, model));
                Some(false)
            }
        }
    }

    /// Mean co-location probability (Eq. 8/9) of `a` and `b` over
    /// `steps` evenly spaced timestamps in `[t0, t1]`. Cold or unknown
    /// objects score exactly `0.0`.
    pub fn windowed_colocation(
        &mut self,
        a: u64,
        b: u64,
        t0: f64,
        t1: f64,
        steps: usize,
        allow_stale: bool,
        stats: &ServeStats,
    ) -> QueryOutcome<f64> {
        stats.queries(1);
        let stale_a = self.ensure_model(a, allow_stale, stats);
        let stale_b = self.ensure_model(b, allow_stale, stats);
        let staleness = if stale_a == Some(true) || stale_b == Some(true) {
            stats.queries_stale(1);
            Staleness::Stale
        } else {
            Staleness::Fresh
        };
        let value = match (stale_a, stale_b) {
            (Some(_), Some(_)) => self
                .pair_score(a, b, t0, t1, steps)
                .expect("ensure_model guarantees both objects are warm"),
            _ => 0.0,
        };
        QueryOutcome {
            value,
            staleness,
            deadline_hit: false,
        }
    }

    /// The immutable scoring pass: both objects must have valid caches.
    fn pair_score(&self, a: u64, b: u64, t0: f64, t1: f64, steps: usize) -> Option<f64> {
        let oa = self.objects.get(&a)?;
        let ob = self.objects.get(&b)?;
        let traj_a = oa.trajectory()?;
        let traj_b = ob.trajectory()?;
        let model_a = &oa.cache.as_ref()?.1;
        let model_b = &ob.cache.as_ref()?.1;
        let est_a = StpEstimator::new(&self.grid, &self.noise, model_a, &traj_a);
        let est_b = StpEstimator::new(&self.grid, &self.noise, model_b, &traj_b);
        let steps = steps.max(1);
        let mut sum = 0.0;
        for i in 0..steps {
            let t = if steps == 1 {
                t0
            } else {
                t0 + (t1 - t0) * (i as f64) / ((steps - 1) as f64)
            };
            sum += colocation_probability(&est_a, &est_b, t);
        }
        Some(sum / steps as f64)
    }

    /// Top-`k` objects by windowed co-location with `obj`, scored over
    /// `steps` timestamps in `[t0, t1]`. Ties break by object id
    /// ascending (deterministic). `budget` bounds wall time: once
    /// exceeded, remaining candidates are skipped and the outcome is
    /// flagged `deadline_hit`.
    #[allow(clippy::too_many_arguments)]
    pub fn topk(
        &mut self,
        obj: u64,
        t0: f64,
        t1: f64,
        steps: usize,
        k: usize,
        allow_stale: bool,
        budget: Duration,
        stats: &ServeStats,
    ) -> QueryOutcome<Vec<(u64, f64)>> {
        stats.queries(1);
        let start = Instant::now();
        let mut any_stale = self.ensure_model(obj, allow_stale, stats) == Some(true);
        let candidates: Vec<u64> = self.objects.keys().copied().filter(|&o| o != obj).collect();
        let mut scored: Vec<(u64, f64)> = Vec::with_capacity(candidates.len());
        let mut deadline_hit = false;
        for cand in candidates {
            if start.elapsed() > budget {
                deadline_hit = true;
                stats.queries_deadline(1);
                break;
            }
            match self.ensure_model(cand, allow_stale, stats) {
                None => continue,
                Some(stale) => any_stale |= stale,
            }
            if let Some(score) = self.pair_score(obj, cand, t0, t1, steps) {
                scored.push((cand, score));
            }
        }
        scored.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        scored.truncate(k);
        let staleness = if any_stale {
            stats.queries_stale(1);
            Staleness::Stale
        } else {
            Staleness::Fresh
        };
        QueryOutcome {
            value: scored,
            staleness,
            deadline_hit,
        }
    }

    /// Serializes the full state for a snapshot: line-oriented, floats
    /// as hex bits, so decode→encode is the identity.
    pub(crate) fn encode_snapshot_body(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stssnap 1 {} {}\n",
            self.max_seq,
            self.objects.len()
        ));
        for (id, o) in &self.objects {
            out.push_str(&format!("o {} {} {}", id, o.applied, o.ring.len()));
            for &(t, x, y) in &o.ring {
                out.push_str(&format!(
                    " {} {} {}",
                    f64_to_hex(t),
                    f64_to_hex(x),
                    f64_to_hex(y)
                ));
            }
            out.push_str(&format!(" {}", o.speeds.len()));
            for &v in &o.speeds {
                out.push_str(&format!(" {}", f64_to_hex(v)));
            }
            out.push('\n');
        }
        out
    }

    /// Rebuilds a state from a verified snapshot body (everything
    /// between the header check and the trailer). Caches start cold —
    /// they are rebuilt lazily and deterministically from the rings.
    pub(crate) fn decode_snapshot_body(cfg: StateConfig, body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let header = lines.next().ok_or("empty snapshot body")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("stssnap") || it.next() != Some("1") {
            return Err(format!("bad snapshot header {header:?}"));
        }
        let max_seq: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad snapshot max_seq")?;
        let count: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad snapshot object count")?;
        let mut state = ServeState::new(cfg);
        state.max_seq = max_seq;
        for _ in 0..count {
            let line = lines.next().ok_or("snapshot object count overruns body")?;
            let mut it = line.split_whitespace();
            if it.next() != Some("o") {
                return Err(format!("bad object line {line:?}"));
            }
            let id: u64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad object id")?;
            let applied: u64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad applied count")?;
            let ring_n: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad ring length")?;
            if ring_n > state.cfg.ring_capacity {
                return Err(format!("ring length {ring_n} exceeds capacity"));
            }
            let mut o = ObjectState {
                applied,
                version: applied,
                ..ObjectState::default()
            };
            for _ in 0..ring_n {
                let t = it.next().and_then(f64_from_hex).ok_or("bad ring t")?;
                let x = it.next().and_then(f64_from_hex).ok_or("bad ring x")?;
                let y = it.next().and_then(f64_from_hex).ok_or("bad ring y")?;
                o.ring.push_back((t, x, y));
            }
            let speed_n: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad speed length")?;
            if speed_n > state.cfg.speed_capacity {
                return Err(format!("speed length {speed_n} exceeds capacity"));
            }
            for _ in 0..speed_n {
                o.speeds
                    .push_back(it.next().and_then(f64_from_hex).ok_or("bad speed sample")?);
            }
            if it.next().is_some() {
                return Err(format!("trailing fields on object line {line:?}"));
            }
            state.objects.insert(id, o);
        }
        if lines.next().is_some() {
            return Err("snapshot body longer than object count".to_string());
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ServeStats {
        ServeStats::default()
    }

    fn ping(seq: u64, obj: u64, t: f64, x: f64, y: f64) -> Ping {
        Ping { seq, obj, t, x, y }
    }

    /// A deterministic two-object walk: both drift along y = x, object
    /// 1 offset by `gap`.
    fn walked_state(n: u64, gap: f64) -> ServeState {
        let mut s = ServeState::new(StateConfig::default());
        let st = stats();
        let mut seq = 0;
        for i in 0..n {
            let t = i as f64;
            for obj in 0..2u64 {
                seq += 1;
                let off = if obj == 1 { gap } else { 0.0 };
                let p = ping(seq, obj, t + 0.5 * obj as f64, 10.0 + t + off, 10.0 + t);
                assert_eq!(s.apply(&p), ApplyVerdict::Applied, "{p:?}");
                let _ = st;
            }
        }
        s
    }

    #[test]
    fn ping_encode_decode_round_trips_bit_exactly() {
        let p = ping(7, 3, 1.25, -0.0, f64::NAN);
        let d = Ping::decode(&p.encode()).unwrap();
        assert_eq!(d.seq, 7);
        assert_eq!(d.obj, 3);
        assert_eq!(d.t.to_bits(), p.t.to_bits());
        assert_eq!(d.x.to_bits(), p.x.to_bits());
        assert_eq!(d.y.to_bits(), p.y.to_bits());
        assert_eq!(Ping::decode("p 1 2 deadbeef"), None);
        assert_eq!(Ping::decode("q 1 2"), None);
    }

    #[test]
    fn apply_filters_dup_seq_and_stale_time() {
        let mut s = ServeState::new(StateConfig::default());
        assert_eq!(s.apply(&ping(1, 0, 0.0, 1.0, 1.0)), ApplyVerdict::Applied);
        assert_eq!(s.apply(&ping(1, 0, 9.0, 1.0, 1.0)), ApplyVerdict::DupSeq);
        assert_eq!(s.apply(&ping(2, 0, 0.0, 2.0, 2.0)), ApplyVerdict::StaleTime);
        // Seq 2 was consumed even though refused.
        assert_eq!(s.apply(&ping(2, 0, 5.0, 2.0, 2.0)), ApplyVerdict::DupSeq);
        assert_eq!(s.apply(&ping(3, 0, 5.0, 2.0, 2.0)), ApplyVerdict::Applied);
        assert_eq!(
            s.apply(&ping(4, 0, f64::NAN, 2.0, 2.0)),
            ApplyVerdict::StaleTime
        );
        assert_eq!(s.max_seq(), 4);
        assert_eq!(s.total_applied(), 2);
    }

    #[test]
    fn rings_stay_bounded() {
        let cfg = StateConfig {
            ring_capacity: 4,
            speed_capacity: 3,
            ..StateConfig::default()
        };
        let mut s = ServeState::new(cfg);
        for i in 0..50u64 {
            s.apply(&ping(i + 1, 0, i as f64, (i % 90) as f64, 1.0));
        }
        let o = s.objects.get(&0).unwrap();
        assert_eq!(o.ring.len(), 4);
        assert_eq!(o.speeds.len(), 3);
        assert_eq!(o.applied, 50);
    }

    #[test]
    fn colocation_is_deterministic_and_orders_sensibly() {
        let st = stats();
        // Close pair scores higher than a far pair, and repeated
        // evaluation is bit-identical.
        let mut near = walked_state(12, 1.0);
        let mut far = walked_state(12, 60.0);
        let qn = near.windowed_colocation(0, 1, 4.0, 9.0, 5, false, &st);
        let qn2 = near.windowed_colocation(0, 1, 4.0, 9.0, 5, false, &st);
        let qf = far.windowed_colocation(0, 1, 4.0, 9.0, 5, false, &st);
        assert_eq!(qn.value.to_bits(), qn2.value.to_bits());
        assert_eq!(qn.staleness, Staleness::Fresh);
        assert!(qn.value > qf.value, "{} vs {}", qn.value, qf.value);
        assert!(qn.value > 0.0);
        // Unknown object: exact zero.
        let q = near.windowed_colocation(0, 99, 4.0, 9.0, 5, false, &st);
        assert_eq!(q.value, 0.0);
    }

    #[test]
    fn stale_marker_fires_only_when_refresh_is_deferred() {
        let st = stats();
        let mut s = walked_state(10, 1.0);
        // Warm the caches.
        let q = s.windowed_colocation(0, 1, 4.0, 8.0, 3, false, &st);
        assert_eq!(q.staleness, Staleness::Fresh);
        // New pings dirty the caches.
        s.apply(&ping(1000, 0, 50.0, 60.0, 60.0));
        s.apply(&ping(1001, 1, 50.0, 61.0, 60.0));
        // Shedding: allow_stale answers from the old model, flagged.
        let stale = s.windowed_colocation(0, 1, 4.0, 8.0, 3, true, &st);
        assert_eq!(stale.staleness, Staleness::Stale);
        assert!(st.get("refresh_deferred").unwrap() >= 2);
        // Fresh query rebuilds and differs in marker.
        let fresh = s.windowed_colocation(0, 1, 4.0, 8.0, 3, false, &st);
        assert_eq!(fresh.staleness, Staleness::Fresh);
    }

    #[test]
    fn topk_ranks_deterministically_with_id_tiebreak() {
        let st = stats();
        let mut s = ServeState::new(StateConfig::default());
        let mut seq = 0;
        // Object 0 walks; 1 shadows it closely; 2 is far; 3 is cold
        // (one ping).
        for i in 0..10u64 {
            let t = i as f64;
            for (obj, off) in [(0u64, 0.0), (1, 1.0), (2, 70.0)] {
                seq += 1;
                s.apply(&ping(seq, obj, t, 10.0 + t + off, 20.0 + off / 2.0));
            }
        }
        seq += 1;
        s.apply(&ping(seq, 3, 0.0, 10.0, 20.0));
        let q = s.topk(0, 3.0, 8.0, 4, 2, false, Duration::from_secs(30), &st);
        assert!(!q.deadline_hit);
        assert_eq!(q.value.len(), 2);
        assert_eq!(q.value[0].0, 1, "shadow ranks first: {:?}", q.value);
        assert!(q.value[0].1 > q.value[1].1);
        let q2 = s.topk(0, 3.0, 8.0, 4, 2, false, Duration::from_secs(30), &st);
        assert_eq!(q, q2, "top-k must be deterministic");
    }

    #[test]
    fn topk_deadline_cuts_short_and_is_flagged() {
        let st = stats();
        let mut s = walked_state(10, 1.0);
        let q = s.topk(0, 4.0, 8.0, 3, 5, false, Duration::from_secs(0), &st);
        assert!(q.deadline_hit);
        assert!(q.value.len() <= 1);
        assert_eq!(st.get("queries_deadline"), Some(1));
    }

    #[test]
    fn snapshot_body_round_trips_bit_exactly() {
        let s = walked_state(20, 3.0);
        let body = s.encode_snapshot_body();
        let back = ServeState::decode_snapshot_body(StateConfig::default(), &body).unwrap();
        assert_eq!(back.encode_snapshot_body(), body);
        assert_eq!(back.max_seq(), s.max_seq());
        assert_eq!(back.total_applied(), s.total_applied());
        // And the restored state answers queries identically.
        let st = stats();
        let mut a = s;
        let mut b = back;
        let qa = a.windowed_colocation(0, 1, 5.0, 15.0, 7, false, &st);
        let qb = b.windowed_colocation(0, 1, 5.0, 15.0, 7, false, &st);
        assert_eq!(qa.value.to_bits(), qb.value.to_bits());
    }

    #[test]
    fn snapshot_decode_rejects_structural_corruption() {
        let s = walked_state(5, 1.0);
        let body = s.encode_snapshot_body();
        for bad in [
            "stssnap 2 0 0\n",             // wrong version
            "stssnap 1 5 2\no 1 1 0 0\n",  // count overruns body
            &body.replace("o 0", "x 0"),   // bad object tag
            &format!("{body}o 9 1 0 0\n"), // body longer than count
        ] {
            assert!(
                ServeState::decode_snapshot_body(StateConfig::default(), bad).is_err(),
                "{bad:?} must not decode"
            );
        }
    }

    #[test]
    fn replay_equals_direct_application() {
        // The recovery argument in miniature: applying pings 1..n, or
        // snapshotting at n/2 and replaying the rest, yields
        // bit-identical answers.
        let st = stats();
        let mut pings = Vec::new();
        let mut seq = 0;
        for i in 0..16u64 {
            for obj in 0..3u64 {
                seq += 1;
                pings.push(ping(
                    seq,
                    obj,
                    i as f64 + 0.1 * obj as f64,
                    5.0 + i as f64 + obj as f64,
                    30.0 - obj as f64,
                ));
            }
        }
        let mut direct = ServeState::new(StateConfig::default());
        for p in &pings {
            direct.apply(p);
        }
        let mut half = ServeState::new(StateConfig::default());
        for p in &pings[..24] {
            half.apply(p);
        }
        let body = half.encode_snapshot_body();
        let mut recovered =
            ServeState::decode_snapshot_body(StateConfig::default(), &body).unwrap();
        // Replay everything with overlap: dedup must discard the first
        // 24 and apply the rest.
        for p in &pings {
            recovered.apply(p);
        }
        let qa = direct.windowed_colocation(0, 1, 2.0, 14.0, 9, false, &st);
        let qb = recovered.windowed_colocation(0, 1, 2.0, 14.0, 9, false, &st);
        assert_eq!(qa.value.to_bits(), qb.value.to_bits());
        let ta = direct.topk(0, 2.0, 14.0, 5, 3, false, Duration::from_secs(30), &st);
        let tb = recovered.topk(0, 2.0, 14.0, 5, 3, false, Duration::from_secs(30), &st);
        assert_eq!(ta, tb);
    }
}
