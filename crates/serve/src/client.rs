//! The resilient client: resend-until-acked ingest over the frame
//! protocol.
//!
//! The client side of the durability contract is deliberately dumb:
//! every ping carries a client-assigned seq, every send is retried
//! until a matching `ok` arrives (timeouts, `busy` backpressure and
//! `err garbage` all just mean "send it again"), and after a reconnect
//! the `ready <durable>` hello reply says exactly which seqs must be
//! resent. Resends are idempotent server-side (seq dedup), so the
//! client never has to reason about which failure mode ate a frame —
//! which is what makes the chaos suites able to inject drops, dups,
//! corruption and crashes and still demand byte-identical answers.

use crate::state::{Ping, Staleness};
use crate::{f64_from_hex, f64_to_hex, ServeStats};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use sts_isolate::protocol::ProtocolError;
use sts_isolate::transport::{is_timeout, FrameConn, NetInjector};

/// How an [`ServeClient::ingest_until_acked`] call got its ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AckOutcome {
    /// `busy` backpressure replies absorbed before the ack.
    pub busy_retries: u32,
    /// Times the ping was re-sent (timeouts, garbage, busy).
    pub resends: u32,
}

/// A framed client connection with retry-based ingest.
pub struct ServeClient {
    conn: FrameConn,
    /// Pause before resending after a `busy` frame.
    pub busy_backoff: Duration,
    /// Give up after this many resends of one ping.
    pub max_resends: u32,
}

impl ServeClient {
    /// Connects with no fault injection and a 300 ms read deadline
    /// (long enough for a loaded test server, short enough to drive
    /// the resend loop under drop faults).
    pub fn connect(addr: SocketAddr) -> io::Result<ServeClient> {
        ServeClient::connect_with_injector(addr, None)
    }

    /// Connects with a chaos injector at the connection seam — the
    /// chaos suite's entry point.
    pub fn connect_with_injector(
        addr: SocketAddr,
        injector: Option<Arc<dyn NetInjector>>,
    ) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let conn = FrameConn::with_injector(stream, injector)?;
        conn.set_read_deadline(Some(Duration::from_millis(300)))?;
        Ok(ServeClient {
            conn,
            busy_backoff: Duration::from_millis(2),
            max_resends: 400,
        })
    }

    /// Caps inbound reply frames (builder style).
    pub fn with_frame_cap(mut self, cap: usize) -> ServeClient {
        self.conn = self.conn.with_frame_cap(cap);
        self
    }

    /// Re-arms the read deadline.
    pub fn set_read_deadline(&self, deadline: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_deadline(deadline)
    }

    /// Sends one frame and returns the next reply (no retries) — the
    /// raw escape hatch for protocol tests.
    pub fn roundtrip(&mut self, frame: &str) -> Result<String, ProtocolError> {
        self.conn.send(frame)?;
        self.conn.recv()
    }

    /// `hello` → the server's durable seq horizon: everything above it
    /// must be resent after a reconnect.
    pub fn hello(&mut self) -> Result<u64, ProtocolError> {
        self.conn.send("hello")?;
        loop {
            let reply = self.conn.recv()?;
            if let Some(rest) = reply.strip_prefix("ready ") {
                return rest.parse().map_err(|_| unexpected(&reply));
            }
            // Stray replies from earlier pipelined traffic: skip.
        }
    }

    /// Sends `p` and retries until the server acks that exact seq.
    /// Timeouts, `busy` frames and garbage replies all trigger a
    /// resend — safe because ingest is idempotent per seq.
    pub fn ingest_until_acked(&mut self, p: &Ping) -> Result<AckOutcome, ProtocolError> {
        let frame = p.encode();
        let mut out = AckOutcome::default();
        self.conn.send(&frame)?;
        loop {
            if out.resends > self.max_resends {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("ping seq {} never acked", p.seq),
                )));
            }
            match self.conn.recv() {
                Ok(reply) => {
                    let mut it = reply.split_whitespace();
                    let head = it.next().unwrap_or("");
                    let seq = it.next().and_then(|s| s.parse::<u64>().ok());
                    match (head, seq) {
                        ("ok", Some(s)) if s == p.seq => return Ok(out),
                        // An ack or busy for an *older* frame — a
                        // duplicate fault's second reply, or a resend
                        // that raced its own ack. Skip it.
                        ("ok", Some(_)) | ("busy", Some(_)) if seq != Some(p.seq) => {}
                        ("busy", _) => {
                            out.busy_retries += 1;
                            out.resends += 1;
                            std::thread::sleep(self.busy_backoff);
                            self.conn.send(&frame)?;
                        }
                        _ => {
                            // `err garbage` (our frame was mangled on
                            // the wire) or anything unrecognized:
                            // resend and keep listening.
                            out.resends += 1;
                            self.conn.send(&frame)?;
                        }
                    }
                }
                // Reply lost or delayed past the deadline: resend.
                Err(ref e) if is_timeout(e) => {
                    out.resends += 1;
                    self.conn.send(&frame)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fire-and-collect flood: sends every ping without waiting, then
    /// drains one reply per ping. Returns `(acked, busy)` counts —
    /// the overload test's instrument. No retries: a `busy` ping is
    /// *meant* to stay shed here.
    pub fn ingest_pipelined(&mut self, pings: &[Ping]) -> Result<(u64, u64), ProtocolError> {
        for p in pings {
            self.conn.send(&p.encode())?;
        }
        let (mut ok, mut busy) = (0u64, 0u64);
        for _ in 0..pings.len() {
            // A loaded server may stall behind its ingest delay; be
            // patient per reply but bounded overall.
            let reply = self.recv_patiently(Duration::from_secs(10))?;
            if reply.starts_with("ok ") {
                ok += 1;
            } else if reply.starts_with("busy ") {
                busy += 1;
            } else {
                return Err(unexpected(&reply));
            }
        }
        Ok((ok, busy))
    }

    fn recv_patiently(&mut self, total: Duration) -> Result<String, ProtocolError> {
        let deadline = std::time::Instant::now() + total;
        loop {
            match self.conn.recv() {
                Ok(reply) => return Ok(reply),
                Err(ref e) if is_timeout(e) && std::time::Instant::now() < deadline => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Forces a WAL group commit; returns the durable seq horizon.
    pub fn flush(&mut self) -> Result<u64, ProtocolError> {
        self.conn.send("flush")?;
        loop {
            let reply = self.recv_patiently(Duration::from_secs(30))?;
            if let Some(rest) = reply.strip_prefix("flushed ") {
                return rest.parse().map_err(|_| unexpected(&reply));
            }
            if reply.starts_with("err ") {
                return Err(unexpected(&reply));
            }
            // Stray ingest acks from pipelined traffic: skip.
        }
    }

    /// Forces a snapshot + WAL truncation; returns the covered seq.
    pub fn snapshot(&mut self) -> Result<u64, ProtocolError> {
        self.conn.send("snapshot")?;
        loop {
            let reply = self.recv_patiently(Duration::from_secs(30))?;
            if let Some(rest) = reply.strip_prefix("snapped ") {
                return rest.parse().map_err(|_| unexpected(&reply));
            }
            if reply.starts_with("err ") {
                return Err(unexpected(&reply));
            }
        }
    }

    /// Windowed co-location query; returns the raw reply frame (the
    /// unit of the byte-identical recovery comparison).
    pub fn colocate_raw(
        &mut self,
        a: u64,
        b: u64,
        t0: f64,
        t1: f64,
        steps: usize,
    ) -> Result<String, ProtocolError> {
        self.conn.send(&format!(
            "coloc {a} {b} {} {} {steps}",
            f64_to_hex(t0),
            f64_to_hex(t1)
        ))?;
        loop {
            let reply = self.recv_patiently(Duration::from_secs(30))?;
            if reply.starts_with("coloc ") || reply.starts_with("err ") {
                return Ok(reply);
            }
        }
    }

    /// Parsed [`ServeClient::colocate_raw`].
    pub fn colocate(
        &mut self,
        a: u64,
        b: u64,
        t0: f64,
        t1: f64,
        steps: usize,
    ) -> Result<(Staleness, f64), ProtocolError> {
        let reply = self.colocate_raw(a, b, t0, t1, steps)?;
        let mut it = reply.split_whitespace();
        let parsed = (|| {
            if it.next()? != "coloc" {
                return None;
            }
            let staleness = match it.next()? {
                "fresh" => Staleness::Fresh,
                "stale" => Staleness::Stale,
                _ => return None,
            };
            Some((staleness, f64_from_hex(it.next()?)?))
        })();
        parsed.ok_or_else(|| unexpected(&reply))
    }

    /// Top-k query; returns the raw reply frame.
    pub fn topk_raw(
        &mut self,
        obj: u64,
        t0: f64,
        t1: f64,
        steps: usize,
        k: usize,
    ) -> Result<String, ProtocolError> {
        self.conn.send(&format!(
            "topk {obj} {} {} {steps} {k}",
            f64_to_hex(t0),
            f64_to_hex(t1)
        ))?;
        loop {
            let reply = self.recv_patiently(Duration::from_secs(30))?;
            if reply.starts_with("topk ") || reply.starts_with("err ") {
                return Ok(reply);
            }
        }
    }

    /// Parsed [`ServeClient::topk_raw`]: `(staleness, deadline_hit,
    /// ranked (object, score) pairs)`.
    #[allow(clippy::type_complexity)]
    pub fn topk(
        &mut self,
        obj: u64,
        t0: f64,
        t1: f64,
        steps: usize,
        k: usize,
    ) -> Result<(Staleness, bool, Vec<(u64, f64)>), ProtocolError> {
        let reply = self.topk_raw(obj, t0, t1, steps, k)?;
        let mut it = reply.split_whitespace();
        let parsed = (|| {
            if it.next()? != "topk" {
                return None;
            }
            let staleness = match it.next()? {
                "fresh" => Staleness::Fresh,
                "stale" => Staleness::Stale,
                _ => return None,
            };
            let deadline = match it.next()? {
                "ok" => false,
                "deadline" => true,
                _ => return None,
            };
            let n: usize = it.next()?.parse().ok()?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let id: u64 = it.next()?.parse().ok()?;
                out.push((id, f64_from_hex(it.next()?)?));
            }
            it.next().is_none().then_some((staleness, deadline, out))
        })();
        parsed.ok_or_else(|| unexpected(&reply))
    }

    /// The server's counter dump.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ProtocolError> {
        self.conn.send("stats")?;
        loop {
            let reply = self.recv_patiently(Duration::from_secs(30))?;
            if reply.starts_with("stats") {
                return ServeStats::parse(&reply).ok_or_else(|| unexpected(&reply));
            }
        }
    }

    /// One counter by name.
    pub fn stats_get(&mut self, name: &str) -> Result<u64, ProtocolError> {
        let stats = self.stats()?;
        stats
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| unexpected(&format!("no counter {name}")))
    }

    /// Asks the server to stop (replies `bye`).
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        self.conn.send("shutdown")?;
        let reply = self.recv_patiently(Duration::from_secs(30))?;
        if reply == "bye" {
            Ok(())
        } else {
            Err(unexpected(&reply))
        }
    }
}

fn unexpected(reply: &str) -> ProtocolError {
    ProtocolError::Garbage {
        message: format!("unexpected reply {reply:?}"),
    }
}
