//! `sts-serve` — the long-running co-location service (ROADMAP item 2).
//!
//! Everything else in the workspace is batch: load trajectories,
//! compute a matrix, exit. This crate is the *online* shape of the
//! paper's query — pings arrive one at a time (sporadically sampled,
//! location-noised, exactly the paper's data regime), and clients ask
//! "how strongly did a and b co-locate over window `[t0, t1]`" or
//! "which objects co-located most with x" *while ingest continues*.
//!
//! The headline is robustness, not throughput:
//!
//! * **Durability** — every applied ping is appended to a segmented
//!   WAL ([`wal`]) group-committed through the [`Storage`] atomic-write
//!   discipline, with periodic fingerprint-verified snapshots
//!   ([`snapshot`]) that truncate the log. A SIGKILL at any instant
//!   recovers to a state whose query answers are **byte-identical** to
//!   an uninterrupted run, because the served state is a pure function
//!   of the applied ping sequence and recovery replays exactly that
//!   sequence (`tests/serve_crash.rs` proves it with real SIGKILLs).
//! * **Bounded memory** — the ingest queue is a bounded channel,
//!   per-object state lives in fixed-capacity rings, and frame reads
//!   are capped per endpoint; overload surfaces as explicit `busy`
//!   backpressure frames and counted shed decisions, never as OOM or a
//!   silent drop.
//! * **Graceful degradation** — the shedding ladder drops the
//!   cheapest thing first: speed-KDE refreshes are deferred (queries
//!   answer from the stale cached model, flagged `stale` in the reply
//!   header), then ingest is refused with `busy`. Slow or wedged
//!   clients hit a read deadline and are disconnected; mangled frames
//!   surface as typed errors and leave the server standing.
//!
//! The wire protocol is the `sts-isolate` frame codec (length-prefixed
//! text lines) over TCP or stdio; all floats cross the wire and the
//! disk as exact IEEE-754 bit patterns (hex), so "byte-identical" is a
//! meaningful comparison, not a tolerance.

pub mod client;
pub mod server;
pub mod snapshot;
pub mod state;
pub mod wal;

pub use client::{AckOutcome, ServeClient};
pub use server::{ServeOptions, Server, ServerHandle};
pub use state::{Ping, QueryOutcome, ServeState, Staleness, StateConfig};
pub use wal::Wal;

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exact `f64` → wire text: 16 lowercase hex digits of the bit
/// pattern. The inverse of [`f64_from_hex`]; round-trips every value
/// including `-0.0` and NaN payloads.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Exact wire text → `f64`. `None` for anything that is not exactly
/// 16 hex digits.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// A serving-side failure, typed so callers can tell persistent
/// storage trouble from protocol noise.
#[derive(Debug)]
pub enum ServeError {
    /// A durable write kept failing after bounded retries.
    Storage {
        /// What was being written.
        what: &'static str,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last underlying error.
        source: io::Error,
    },
    /// Persisted bytes failed structural or fingerprint verification.
    Corrupt {
        /// What artifact was corrupt.
        what: &'static str,
        /// Why it failed verification.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Storage {
                what,
                attempts,
                source,
            } => write!(
                f,
                "{what}: durable write failed after {attempts} attempt(s): {source}"
            ),
            ServeError::Corrupt { what, detail } => write!(f, "{what}: corrupt: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

macro_rules! stat_counters {
    ($($(#[$doc:meta])* $name:ident => $obs:literal,)+) => {
        /// Per-server counters, mirrored into the global `sts-obs`
        /// registry. Tests reconcile injected-fault ledgers against
        /// these *exactly*, which is why they are per-server atomics
        /// (the global registry is shared across parallel tests) —
        /// the obs mirror is for operators, the struct for proofs.
        #[derive(Debug, Default)]
        pub struct ServeStats {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        impl ServeStats {
            $(
                /// Bumps the counter and its obs mirror.
                pub fn $name(&self, n: u64) {
                    self.$name.fetch_add(n, Ordering::SeqCst);
                    sts_obs::static_counter!($obs).add(n);
                }
            )+

            /// One reply frame body: `stats <name> <value> ...`, in
            /// declaration order — the machine-readable counter dump
            /// the chaos suites reconcile against.
            pub fn render(&self) -> String {
                let mut out = String::from("stats");
                $(
                    out.push(' ');
                    out.push_str(stringify!($name));
                    out.push(' ');
                    out.push_str(&self.$name.load(Ordering::SeqCst).to_string());
                )+
                out
            }

            /// Parses a [`ServeStats::render`] frame into name/value
            /// pairs (the client side of the dump).
            pub fn parse(frame: &str) -> Option<Vec<(String, u64)>> {
                let mut it = frame.split_whitespace();
                if it.next()? != "stats" {
                    return None;
                }
                let mut out = Vec::new();
                while let Some(name) = it.next() {
                    out.push((name.to_string(), it.next()?.parse().ok()?));
                }
                Some(out)
            }
        }
    };
}

stat_counters! {
    /// Pings applied to the served state.
    ingest_applied => "serve.ingest.applied",
    /// Pings refused because their seq was already consumed (resent or
    /// duplicated frames).
    ingest_dup => "serve.ingest.dup",
    /// Pings refused by the per-object time-monotonicity filter.
    ingest_old => "serve.ingest.old",
    /// Garbage frames received (line noise, corrupt injections).
    ingest_garbage => "serve.ingest.garbage",
    /// Frames refused by the endpoint byte cap.
    frames_too_large => "serve.ingest.frame_too_large",
    /// Pings refused with a `busy` backpressure frame (queue full).
    shed_busy => "serve.shed.busy",
    /// Queries answered from a stale cached speed model because the
    /// shedding ladder deferred the refresh.
    refresh_deferred => "serve.shed.refresh_deferred",
    /// Queries answered.
    queries => "serve.query.total",
    /// Queries whose reply carried the `stale` marker.
    queries_stale => "serve.query.stale",
    /// Queries cut short by their deadline budget.
    queries_deadline => "serve.query.deadline",
    /// WAL group commits that reached verified-durable.
    wal_commits => "serve.wal.commits",
    /// WAL writes that reported success but failed read-back
    /// verification (torn / bit-flipped) and were retried.
    wal_verify_failed => "serve.wal.verify_failed",
    /// WAL writes that failed outright (ENOSPC, stale-tmp crash) and
    /// were retried.
    wal_append_errors => "serve.wal.append_errors",
    /// WAL segments sealed full.
    wal_segments_sealed => "serve.wal.segments_sealed",
    /// WAL segment files deleted by post-snapshot truncation.
    wal_truncated => "serve.wal.truncated",
    /// Snapshots written and verified durable.
    snapshots => "serve.snapshot.written",
    /// Snapshot writes that failed read-back verification.
    snapshot_verify_failed => "serve.snapshot.verify_failed",
    /// Snapshot writes that failed outright and were retried.
    snapshot_write_errors => "serve.snapshot.write_errors",
    /// Corrupt snapshots quarantined aside during recovery.
    snapshot_quarantined => "serve.snapshot.quarantined",
    /// WAL records replayed into state during recovery.
    recovered_records => "serve.recover.records",
    /// Connections accepted.
    conns => "serve.conns.accepted",
    /// Connections refused by admission control.
    conns_rejected => "serve.conns.rejected",
    /// Connections closed by the read deadline (slow clients,
    /// slowloris, wedges).
    slow_clients => "serve.conns.slow_closed",
    /// High-water mark of the ingest queue depth (a gauge stored as a
    /// monotonic max).
    queue_depth_max => "serve.queue.depth_max",
}

impl ServeStats {
    /// Records an observed queue depth, keeping the high-water mark.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth_max.fetch_max(depth, Ordering::SeqCst);
        sts_obs::static_gauge!("serve.queue.depth").set(depth as i64);
    }

    /// Reads one counter by its field name (as rendered).
    pub fn get(&self, name: &str) -> Option<u64> {
        Self::parse(&self.render())?
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_hex_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::MIN_POSITIVE,
            -123.456e-78,
        ] {
            let hex = f64_to_hex(v);
            assert_eq!(hex.len(), 16);
            let back = f64_from_hex(&hex).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {hex}");
        }
        assert_eq!(f64_from_hex("xyz"), None);
        assert_eq!(f64_from_hex("0"), None);
        assert_eq!(f64_from_hex("00000000000000000"), None, "17 digits");
    }

    #[test]
    fn stats_render_parse_round_trips() {
        let s = ServeStats::default();
        s.ingest_applied(3);
        s.shed_busy(2);
        s.observe_queue_depth(7);
        s.observe_queue_depth(4);
        let parsed = ServeStats::parse(&s.render()).unwrap();
        let get = |n: &str| parsed.iter().find(|(k, _)| k == n).unwrap().1;
        assert_eq!(get("ingest_applied"), 3);
        assert_eq!(get("shed_busy"), 2);
        assert_eq!(get("queue_depth_max"), 7, "high-water, not last");
        assert_eq!(s.get("ingest_applied"), Some(3));
        assert_eq!(ServeStats::parse("nonsense"), None);
    }
}
