//! Fingerprint-verified snapshots with quarantine-and-fall-back
//! recovery.
//!
//! A snapshot is the full served state ([`ServeState`]) serialized
//! bit-exactly (floats as hex bit patterns) into `snap-<seq>.snap`,
//! wrapped in the same header/digest/trailer armor as a WAL segment
//! and written through the same write → read-back-verify → retry loop.
//! Once a snapshot is verified durable, every WAL record it covers is
//! redundant and the log is truncated — that pair is the only thing
//! bounding recovery-replay time and disk usage on a long-running
//! server.
//!
//! Recovery scans snapshots newest-first: a snapshot that fails
//! structural or digest verification is **quarantined aside**
//! (`.corrupt`, keep the evidence) and the next-older one is tried,
//! degrading gracefully to an empty state plus full WAL replay. The
//! byte-identical-recovery invariant never depends on the snapshot
//! being recent — only on `state ∘ replay` being a pure function,
//! which `state::tests::replay_equals_direct_application` pins.

use crate::state::{ServeState, StateConfig};
use crate::{ServeError, ServeStats};
use std::path::{Path, PathBuf};
use sts_runtime::{Fnv1a, Storage};

const MAX_WRITE_ATTEMPTS: u32 = 64;

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq}.snap"))
}

fn digest_body(body: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(body.as_bytes());
    h.finish()
}

/// Serializes `state` into the on-disk snapshot format.
fn encode(state: &ServeState) -> String {
    let body = state.encode_snapshot_body();
    format!("{body}end {:016x}\n", digest_body(&body))
}

/// Verifies armor and decodes the state. `Err` explains why the bytes
/// are untrustworthy.
fn decode(cfg: StateConfig, bytes: &[u8]) -> Result<ServeState, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("not UTF-8: {e}"))?;
    let Some(trailer_at) = text.trim_end_matches('\n').rfind('\n') else {
        return Err("no trailer line".to_string());
    };
    let (body, trailer) = text.split_at(trailer_at + 1);
    let mut t = trailer.split_whitespace();
    if t.next() != Some("end") {
        return Err(format!("bad trailer {trailer:?} (truncated snapshot)"));
    }
    let want = t
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("bad trailer digest")?;
    let got = digest_body(body);
    if got != want {
        return Err(format!(
            "digest mismatch: trailer {want:016x}, body {got:016x}"
        ));
    }
    ServeState::decode_snapshot_body(cfg, body)
}

/// Writes a verified-durable snapshot of `state`, then deletes all
/// older snapshots. Returns the sequence number it covers.
pub fn write_snapshot(
    storage: &dyn Storage,
    dir: &Path,
    state: &ServeState,
    stats: &ServeStats,
) -> Result<u64, ServeError> {
    storage
        .create_dir_all(dir)
        .map_err(|e| ServeError::Storage {
            what: "snapshot dir",
            attempts: 1,
            source: e,
        })?;
    let seq = state.max_seq();
    let path = snap_path(dir, seq);
    let bytes = encode(state).into_bytes();
    let mut last_err: Option<std::io::Error> = None;
    let mut ok = false;
    for _ in 1..=MAX_WRITE_ATTEMPTS {
        match storage.write_atomic(&path, &bytes) {
            Err(e) => {
                stats.snapshot_write_errors(1);
                last_err = Some(e);
                continue;
            }
            Ok(()) => {}
        }
        match storage.read(&path) {
            Ok(back) if back == bytes => {
                ok = true;
                break;
            }
            Ok(_) => {
                stats.snapshot_verify_failed(1);
                last_err = Some(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "snapshot read-back mismatch",
                ));
            }
            Err(e) => {
                stats.snapshot_verify_failed(1);
                last_err = Some(e);
            }
        }
    }
    if !ok {
        return Err(ServeError::Storage {
            what: "snapshot",
            attempts: MAX_WRITE_ATTEMPTS,
            source: last_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::Other, "unknown snapshot failure")
            }),
        });
    }
    stats.snapshots(1);
    // Older snapshots are now strictly redundant. Failure to delete is
    // harmless (recovery scans newest-first), so best effort.
    if let Ok(listed) = storage.list(dir) {
        for p in listed {
            if let Some((s, _)) = parse_snap_name(&p) {
                if s < seq {
                    let _ = storage.remove(&p);
                }
            }
        }
    }
    Ok(seq)
}

fn parse_snap_name(path: &Path) -> Option<(u64, PathBuf)> {
    let name = path.file_name()?.to_str()?;
    let seq = name
        .strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()?;
    Some((seq, path.to_path_buf()))
}

/// Loads the newest snapshot that verifies, quarantining corrupt ones
/// aside. `None` means "start empty" (no snapshot survives).
pub fn load_latest(
    storage: &dyn Storage,
    dir: &Path,
    cfg: &StateConfig,
    stats: &ServeStats,
) -> Option<ServeState> {
    let mut snaps: Vec<(u64, PathBuf)> = storage
        .list(dir)
        .ok()?
        .iter()
        .filter_map(|p| parse_snap_name(p))
        .collect();
    snaps.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    for (_, path) in snaps {
        let bytes = match storage.read(&path) {
            Ok(b) => b,
            Err(e) => {
                quarantine(storage, &path, stats, &format!("unreadable: {e}"));
                continue;
            }
        };
        match decode(cfg.clone(), &bytes) {
            Ok(state) => return Some(state),
            Err(why) => quarantine(storage, &path, stats, &why),
        }
    }
    None
}

fn quarantine(storage: &dyn Storage, path: &Path, stats: &ServeStats, why: &str) {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    let moved = storage.rename(path, &PathBuf::from(name)).is_ok();
    stats.snapshot_quarantined(1);
    sts_obs::event("serve.snapshot.quarantine", 1.0);
    eprintln!(
        "sts-serve: quarantined snapshot {} ({why}; moved={moved})",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Ping;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sts-serve-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn walked(n: u64) -> ServeState {
        let mut s = ServeState::new(StateConfig::default());
        for i in 0..n {
            s.apply(&Ping {
                seq: i + 1,
                obj: i % 3,
                t: i as f64,
                x: 10.0 + i as f64 / 2.0,
                y: 20.0,
            });
        }
        s
    }

    #[test]
    fn snapshot_round_trips_and_prunes_older() {
        let dir = tmp_dir("roundtrip");
        let storage = sts_runtime::FsStorage;
        let stats = ServeStats::default();
        let s10 = walked(10);
        let seq = write_snapshot(&storage, &dir, &s10, &stats).unwrap();
        assert_eq!(seq, 10);
        let s25 = walked(25);
        write_snapshot(&storage, &dir, &s25, &stats).unwrap();
        assert!(!snap_path(&dir, 10).exists(), "older snapshot pruned");
        let loaded = load_latest(&storage, &dir, &StateConfig::default(), &stats).unwrap();
        assert_eq!(loaded.max_seq(), 25);
        assert_eq!(loaded.encode_snapshot_body(), s25.encode_snapshot_body());
        assert_eq!(stats.get("snapshots"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_and_quarantines() {
        let dir = tmp_dir("fallback");
        let storage = sts_runtime::FsStorage;
        let stats = ServeStats::default();
        write_snapshot(&storage, &dir, &walked(10), &stats).unwrap();
        // Hand-write a "newer" corrupt snapshot (pruning normally
        // removes older ones, so plant the corruption directly).
        let bogus = snap_path(&dir, 99);
        std::fs::write(
            &bogus,
            b"stssnap 1 99 1\no 0 1 1 junk\nend 0000000000000000\n",
        )
        .unwrap();
        let loaded = load_latest(&storage, &dir, &StateConfig::default(), &stats).unwrap();
        assert_eq!(loaded.max_seq(), 10, "fell back to the verified one");
        assert!(!bogus.exists());
        assert!(dir.join("snap-99.snap.corrupt").exists());
        assert_eq!(stats.get("snapshot_quarantined"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_tampered_snapshots_fail_decode() {
        let s = walked(8);
        let full = encode(&s);
        assert!(decode(StateConfig::default(), full.as_bytes()).is_ok());
        let cut = &full[..full.len() - 3];
        assert!(decode(StateConfig::default(), cut.as_bytes()).is_err());
        let tampered = full.replacen('o', "0", 1);
        assert!(decode(StateConfig::default(), tampered.as_bytes())
            .unwrap_err()
            .contains("digest"));
        assert!(decode(StateConfig::default(), b"").is_err());
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmp_dir("empty");
        let stats = ServeStats::default();
        assert!(load_latest(
            &sts_runtime::FsStorage,
            &dir,
            &StateConfig::default(),
            &stats
        )
        .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
