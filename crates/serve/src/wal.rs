//! Segmented write-ahead log for the ingest path.
//!
//! Design: the WAL is a directory of **whole-file-atomic segments**
//! (`seg-<idx>.log`) written through the [`Storage`] discipline from
//! the checkpoint layer (tmp → fsync → rename → dir-fsync). There is
//! no appending-in-place: each group commit rewrites the *active*
//! segment in full, which keeps every byte on disk covered by one
//! atomic rename — a SIGKILL can lose the in-flight commit (whose
//! pings the client has not been acked for and will resend) but can
//! never tear a record in half. Segments are bounded
//! (`segment_records`), so the rewrite cost is bounded too; a full
//! segment is sealed and a new one started.
//!
//! Every segment carries a header (`walseg <idx> <count>`) and a
//! trailer (`end <count> <fnv64-hex>`) whose FNV-1a digest covers the
//! record bytes, and every commit is **read back and byte-compared**
//! before the records are considered durable — the only defense that
//! catches a torn or bit-flipped write that reported success
//! (`FaultyStorage` injects exactly those). Failed or unverifiable
//! writes are retried with exact accounting: `wal_verify_failed` for
//! read-back mismatches, `wal_append_errors` for outright I/O errors,
//! which the chaos suite reconciles against the injected-fault ledger.
//!
//! After a verified snapshot covers everything, [`Wal::truncate_all`]
//! deletes every segment and starts fresh. Recovery
//! ([`Wal::open`]) scans segments in index order, verifies each,
//! quarantines corrupt ones aside as `.corrupt` (keep the evidence,
//! keep serving) and returns the surviving records for replay.

use crate::{ServeError, ServeStats};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use sts_runtime::{Fnv1a, Storage};

/// Cap on write→verify retries per commit before declaring storage
/// unusable. Chaos plans inject faults far more sparsely than this.
const MAX_COMMIT_ATTEMPTS: u32 = 64;

fn seg_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("seg-{idx}.log"))
}

fn digest_records(records: &[String]) -> u64 {
    let mut h = Fnv1a::new();
    for r in records {
        h.write(r.as_bytes());
        h.write(b"\n");
    }
    h.finish()
}

fn encode_segment(idx: u64, records: &[String]) -> String {
    let mut out = format!("walseg {idx} {}\n", records.len());
    for r in records {
        out.push_str(r);
        out.push('\n');
    }
    out.push_str(&format!(
        "end {} {:016x}\n",
        records.len(),
        digest_records(records)
    ));
    out
}

/// Parses and verifies one segment file. `Err` carries the reason the
/// segment is untrustworthy.
fn decode_segment(idx: u64, bytes: &[u8]) -> Result<Vec<String>, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("not UTF-8: {e}"))?;
    let mut lines: Vec<&str> = text.lines().collect();
    if lines.len() < 2 {
        return Err(format!("only {} line(s)", lines.len()));
    }
    let trailer = lines.pop().expect("len checked");
    let header = lines.remove(0);
    let mut h = header.split_whitespace();
    if h.next() != Some("walseg") {
        return Err(format!("bad header {header:?}"));
    }
    let hidx: u64 = h
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("bad header index")?;
    let hcount: usize = h
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("bad header count")?;
    if hidx != idx {
        return Err(format!("header index {hidx} != filename index {idx}"));
    }
    if hcount != lines.len() {
        return Err(format!(
            "header count {hcount} != {} record(s)",
            lines.len()
        ));
    }
    let mut t = trailer.split_whitespace();
    if t.next() != Some("end") {
        return Err(format!("bad trailer {trailer:?} (truncated segment)"));
    }
    let tcount: usize = t
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("bad trailer count")?;
    let tdigest = t
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("bad trailer digest")?;
    if tcount != lines.len() {
        return Err(format!(
            "trailer count {tcount} != {} record(s)",
            lines.len()
        ));
    }
    let records: Vec<String> = lines.into_iter().map(str::to_string).collect();
    let actual = digest_records(&records);
    if actual != tdigest {
        return Err(format!(
            "digest mismatch: trailer {tdigest:016x}, records {actual:016x}"
        ));
    }
    Ok(records)
}

/// The ingest thread's write-ahead log. Single-writer by construction
/// (owned by the ingest thread, never shared).
pub struct Wal {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    stats: Arc<ServeStats>,
    /// Records committed into the active segment (already durable).
    records: Vec<String>,
    /// Records appended since the last commit (owed to disk; the
    /// clients that sent them have not been acked).
    pending: Vec<String>,
    /// Index of the active segment.
    seg_index: u64,
    /// Seal the active segment once it holds this many records.
    segment_records: usize,
}

impl Wal {
    /// Opens (or creates) the WAL under `dir`, verifying every
    /// existing segment. Returns the log plus all records recovered
    /// from verified segments, in write order, for replay. Corrupt
    /// segments are quarantined aside as `<name>.corrupt` and their
    /// records skipped — the snapshot + resend path covers the loss.
    pub fn open(
        storage: Arc<dyn Storage>,
        dir: &Path,
        segment_records: usize,
        stats: Arc<ServeStats>,
    ) -> Result<(Wal, Vec<String>), ServeError> {
        assert!(segment_records > 0, "segment_records must be positive");
        storage
            .create_dir_all(dir)
            .map_err(|e| ServeError::Storage {
                what: "wal dir",
                attempts: 1,
                source: e,
            })?;
        sts_runtime::sweep_stale_tmp(storage.as_ref(), dir).map_err(|e| ServeError::Storage {
            what: "wal tmp sweep",
            attempts: 1,
            source: e,
        })?;
        let mut indexed: Vec<(u64, PathBuf)> = storage
            .list(dir)
            .map_err(|e| ServeError::Storage {
                what: "wal dir listing",
                attempts: 1,
                source: e,
            })?
            .into_iter()
            .filter_map(|p| {
                let name = p.file_name()?.to_str()?;
                let idx = name
                    .strip_prefix("seg-")?
                    .strip_suffix(".log")?
                    .parse()
                    .ok()?;
                Some((idx, p))
            })
            .collect();
        indexed.sort_by_key(|&(idx, _)| idx);
        let mut recovered = Vec::new();
        let mut last_good: Option<(u64, Vec<String>)> = None;
        let mut max_index = None;
        for (idx, path) in indexed {
            max_index = Some(max_index.map_or(idx, |m: u64| m.max(idx)));
            let bytes = match storage.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    quarantine(storage.as_ref(), &path, &stats, &format!("unreadable: {e}"));
                    continue;
                }
            };
            match decode_segment(idx, &bytes) {
                Ok(records) => {
                    if let Some((_, prev)) = last_good.take() {
                        recovered.extend(prev);
                    }
                    last_good = Some((idx, records));
                }
                Err(why) => {
                    quarantine(storage.as_ref(), &path, &stats, &why);
                }
            }
        }
        // The highest verified segment is the active one: reopen it
        // for continued appends instead of stranding a partial
        // segment forever.
        let (seg_index, records) = match last_good {
            Some((idx, recs)) if recs.len() < segment_records => {
                recovered.extend(recs.iter().cloned());
                (idx, recs)
            }
            Some((idx, recs)) => {
                recovered.extend(recs);
                (idx + 1, Vec::new())
            }
            None => (max_index.map_or(0, |m| m + 1), Vec::new()),
        };
        let wal = Wal {
            storage,
            dir: dir.to_path_buf(),
            stats,
            records,
            pending: Vec::new(),
            seg_index,
            segment_records,
        };
        Ok((wal, recovered))
    }

    /// Queues one encoded record for the next group commit. Nothing is
    /// durable (and nothing may be acked) until [`Wal::commit`]
    /// returns `Ok`.
    pub fn append(&mut self, record: String) {
        self.pending.push(record);
    }

    /// Records waiting for the next commit.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Group commit: folds pending records into the active segment and
    /// rewrites it atomically, retrying until a read-back of the file
    /// byte-matches what was written. Seals the segment when full.
    pub fn commit(&mut self) -> Result<(), ServeError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.records.append(&mut self.pending);
        self.write_active_verified()?;
        self.stats.wal_commits(1);
        if self.records.len() >= self.segment_records {
            self.seg_index += 1;
            self.records.clear();
            self.stats.wal_segments_sealed(1);
        }
        Ok(())
    }

    /// Writes the active segment and read-back-verifies it, retrying
    /// with exact fault accounting.
    fn write_active_verified(&mut self) -> Result<(), ServeError> {
        let path = seg_path(&self.dir, self.seg_index);
        let bytes = encode_segment(self.seg_index, &self.records).into_bytes();
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 1..=MAX_COMMIT_ATTEMPTS {
            match self.storage.write_atomic(&path, &bytes) {
                Err(e) => {
                    self.stats.wal_append_errors(1);
                    last_err = Some(e);
                    continue;
                }
                Ok(()) => {}
            }
            match self.storage.read(&path) {
                Ok(back) if back == bytes => return Ok(()),
                Ok(_) => {
                    // The write reported success but the bytes on disk
                    // differ: a torn or bit-flipped write. Retry.
                    self.stats.wal_verify_failed(1);
                    last_err = Some(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("read-back mismatch on attempt {attempt}"),
                    ));
                }
                Err(e) => {
                    self.stats.wal_verify_failed(1);
                    last_err = Some(e);
                }
            }
        }
        Err(ServeError::Storage {
            what: "wal segment",
            attempts: MAX_COMMIT_ATTEMPTS,
            source: last_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::Other, "unknown wal failure")
            }),
        })
    }

    /// Deletes every segment after a verified snapshot has covered all
    /// committed records, and starts a fresh segment. Returns how many
    /// segment files were removed.
    pub fn truncate_all(&mut self) -> Result<usize, ServeError> {
        assert!(
            self.pending.is_empty(),
            "truncate with uncommitted records would lose acked data"
        );
        let listed = self
            .storage
            .list(&self.dir)
            .map_err(|e| ServeError::Storage {
                what: "wal dir listing",
                attempts: 1,
                source: e,
            })?;
        let mut removed = 0usize;
        for path in listed {
            let is_seg = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"));
            if !is_seg {
                continue;
            }
            self.storage
                .remove(&path)
                .map_err(|e| ServeError::Storage {
                    what: "wal truncation",
                    attempts: 1,
                    source: e,
                })?;
            removed += 1;
        }
        self.stats.wal_truncated(removed as u64);
        self.seg_index += 1;
        self.records.clear();
        Ok(removed)
    }
}

fn quarantine(storage: &dyn Storage, path: &Path, stats: &ServeStats, why: &str) {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    let dest = PathBuf::from(name);
    // Best effort: a failed rename leaves the corrupt file in place,
    // where the next open will try (and fail) to verify it again.
    let moved = storage.rename(path, &dest).is_ok();
    stats.wal_verify_failed(1);
    sts_obs::event("serve.wal.quarantine", 1.0);
    eprintln!(
        "sts-serve: quarantined wal segment {} ({why}; moved={moved})",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_runtime::FsStorage;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sts-serve-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path, seg: usize) -> (Wal, Vec<String>) {
        Wal::open(
            Arc::new(FsStorage),
            dir,
            seg,
            Arc::new(ServeStats::default()),
        )
        .unwrap()
    }

    #[test]
    fn commit_seal_reopen_recovers_in_order() {
        let dir = tmp_dir("roundtrip");
        let (mut wal, recovered) = open(&dir, 3);
        assert!(recovered.is_empty());
        for i in 0..8 {
            wal.append(format!("rec {i}"));
            wal.commit().unwrap();
        }
        assert_eq!(wal.stats.get("wal_commits"), Some(8));
        assert_eq!(wal.stats.get("wal_segments_sealed"), Some(2));
        drop(wal);
        let (wal2, recovered) = open(&dir, 3);
        let want: Vec<String> = (0..8).map(|i| format!("rec {i}")).collect();
        assert_eq!(recovered, want);
        // The partial third segment stays active.
        assert_eq!(wal2.seg_index, 2);
        assert_eq!(wal2.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_pending_records() {
        let dir = tmp_dir("group");
        let (mut wal, _) = open(&dir, 100);
        for i in 0..10 {
            wal.append(format!("r{i}"));
        }
        assert_eq!(wal.pending_len(), 10);
        wal.commit().unwrap();
        assert_eq!(wal.pending_len(), 0);
        assert_eq!(wal.stats.get("wal_commits"), Some(1), "one commit, not ten");
        wal.commit().unwrap();
        assert_eq!(
            wal.stats.get("wal_commits"),
            Some(1),
            "empty commit is free"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_is_quarantined_and_rest_survive() {
        let dir = tmp_dir("quarantine");
        let (mut wal, _) = open(&dir, 2);
        for i in 0..6 {
            wal.append(format!("rec {i}"));
            wal.commit().unwrap();
        }
        drop(wal);
        // Flip a byte inside the middle (sealed) segment's records.
        let victim = seg_path(&dir, 1);
        let mut bytes = std::fs::read(&victim).unwrap();
        let pos = bytes.len() / 2;
        bytes[pos] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let (wal2, recovered) = open(&dir, 2);
        assert_eq!(
            recovered,
            vec![
                "rec 0".to_string(),
                "rec 1".into(),
                "rec 4".into(),
                "rec 5".into()
            ],
            "the corrupt segment's records are skipped, not invented"
        );
        assert!(!victim.exists(), "victim moved aside");
        assert!(dir.join("seg-1.log.corrupt").exists(), "evidence kept");
        assert_eq!(wal2.stats.get("wal_verify_failed"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_trailer_is_rejected() {
        let records = vec!["a b c".to_string(), "d e".into()];
        let full = encode_segment(4, &records);
        assert_eq!(decode_segment(4, full.as_bytes()).unwrap(), records);
        // Chop mid-trailer: the atomic-rename discipline should make
        // this impossible, but the decoder must still refuse it.
        let cut = &full[..full.len() - 5];
        assert!(decode_segment(4, cut.as_bytes()).is_err());
        // Wrong filename index.
        assert!(decode_segment(5, full.as_bytes()).is_err());
        // Record tampering with a recomputed count but stale digest.
        let tampered = full.replace("a b c", "a B c");
        assert!(decode_segment(4, tampered.as_bytes())
            .unwrap_err()
            .contains("digest"));
    }

    #[test]
    fn truncate_all_removes_segments_and_starts_fresh() {
        let dir = tmp_dir("truncate");
        let (mut wal, _) = open(&dir, 2);
        for i in 0..5 {
            wal.append(format!("rec {i}"));
            wal.commit().unwrap();
        }
        let removed = wal.truncate_all().unwrap();
        assert_eq!(removed, 3, "two sealed + one active");
        assert_eq!(wal.stats.get("wal_truncated"), Some(3));
        wal.append("after".to_string());
        wal.commit().unwrap();
        drop(wal);
        let (_, recovered) = open(&dir, 2);
        assert_eq!(recovered, vec!["after".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "uncommitted records")]
    fn truncate_with_pending_records_panics() {
        let dir = tmp_dir("truncpend");
        let (mut wal, _) = open(&dir, 2);
        wal.append("r".to_string());
        let _ = wal.truncate_all();
    }
}
