//! The long-running service: recovery, ingest pipeline, query serving,
//! backpressure and the shedding ladder.
//!
//! Thread layout (TCP mode):
//!
//! ```text
//!   listener ──accept──► conn thread (one per client)
//!                            │ parse frame, dispatch
//!                            │ pings → bounded sync_channel ──► ingest thread
//!                            │         (try_send: full ⇒ `busy`)     │ apply → WAL
//!                            └─ queries lock the state directly      │ group commit
//!                                                                    │ auto-snapshot
//! ```
//!
//! The **ingest thread** is the single writer: it owns the WAL, applies
//! pings to the shared state under its mutex, group-commits every
//! `commit_every` appended records, and snapshots + truncates the log
//! every `snapshot_every` applied pings. Conn threads only enqueue —
//! `try_send` on the bounded channel *is* the backpressure seam: a full
//! queue surfaces as an explicit `busy <seq> <depth>` frame the client
//! retries, counted in `shed_busy`, and memory stays bounded no matter
//! how fast clients push.
//!
//! The **shedding ladder**, cheapest first:
//!
//! 1. queue depth ≥ `shed_defer_depth` ⇒ queries answer from stale
//!    cached speed models (`stale` reply marker, `refresh_deferred`);
//! 2. queue full ⇒ ingest refused with `busy` (`shed_busy`);
//! 3. top-k evaluation exceeding `query_budget` returns what it has
//!    with a `deadline` marker (`queries_deadline`);
//! 4. clients that stall mid-frame longer than `read_deadline` are
//!    disconnected (`slow_clients`) — the slowloris defense.
//!
//! An `ok <seq>` ack means *accepted into the pipeline*, not durable:
//! durability advances at group-commit granularity and is published in
//! the `ready <durable>` hello reply, which is exactly what a
//! reconnecting client uses to decide what to resend after a crash
//! (resends are idempotent — seq dedup). `flush` forces a commit and
//! returns the new durable horizon.

use crate::snapshot::{load_latest, write_snapshot};
use crate::state::{ApplyVerdict, Ping, ServeState, StateConfig};
use crate::wal::Wal;
use crate::{f64_from_hex, f64_to_hex, ServeError, ServeStats};
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use sts_isolate::protocol::{read_frame_capped, write_frame, ProtocolError};
use sts_isolate::transport::{is_timeout, FrameConn};
use sts_runtime::Storage;

/// Upper bound on client-requested window steps — a query knob, not a
/// memory knob, but an unbounded value would turn one frame into an
/// unbounded amount of work.
const MAX_QUERY_STEPS: usize = 512;

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Data directory (WAL under `wal/`, snapshots under `snap/`).
    pub dir: PathBuf,
    /// Bound of the ingest queue (pings in flight between conn threads
    /// and the ingest thread). Full ⇒ `busy` backpressure.
    pub queue_bound: usize,
    /// Group-commit the WAL every this many appended records.
    pub commit_every: usize,
    /// Seal WAL segments at this many records.
    pub segment_records: usize,
    /// Snapshot + truncate the WAL every this many applied pings
    /// (0 = only on explicit `snapshot` frames).
    pub snapshot_every: u64,
    /// Read deadline per connection; `None` disarms (stdio mode always
    /// runs disarmed — pipes have no slowloris problem).
    pub read_deadline: Option<Duration>,
    /// Inbound frame cap for this endpoint (bytes).
    pub frame_cap: usize,
    /// Artificial per-ping apply delay — a test hook to make the
    /// bounded queue observable under flood.
    pub ingest_delay: Duration,
    /// Queue depth at which queries start answering from stale cached
    /// models (rung 1 of the shedding ladder).
    pub shed_defer_depth: usize,
    /// Wall-clock budget for one top-k evaluation.
    pub query_budget: Duration,
    /// Admission control: connections beyond this are refused.
    pub max_conns: usize,
    /// Geometry and model configuration (must match across restarts).
    pub state: StateConfig,
}

impl ServeOptions {
    /// Defaults tuned for tests and small deployments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            dir: dir.into(),
            queue_bound: 64,
            commit_every: 8,
            segment_records: 256,
            snapshot_every: 0,
            read_deadline: Some(Duration::from_secs(10)),
            frame_cap: 4096,
            ingest_delay: Duration::ZERO,
            shed_defer_depth: 32,
            query_budget: Duration::from_millis(250),
            max_conns: 64,
            state: StateConfig::default(),
        }
    }
}

/// What the ingest thread consumes.
enum IngestMsg {
    Ping(Ping),
    /// Commit now; reply with the durable seq.
    Flush(SyncSender<u64>),
    /// Snapshot + truncate now; reply with the covered seq.
    Snapshot(SyncSender<Result<u64, String>>),
}

/// State shared by every thread of one server instance.
struct Shared {
    state: Mutex<ServeState>,
    stats: Arc<ServeStats>,
    storage: Arc<dyn Storage>,
    /// Highest seq proven durable (WAL-committed or snapshot-covered).
    durable: AtomicU64,
    /// Current ingest queue depth (enqueued, not yet applied).
    /// Signed and clamped on read: the producer's increment races the
    /// consumer's decrement, so transients may dip below zero.
    depth: AtomicI64,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    opts: ServeOptions,
}

enum Reply {
    Text(String),
    /// Send the text, then stop the whole server.
    Shutdown(String),
}

/// Parses and executes one client frame. Pure dispatch: all policy
/// (shedding, budgets) reads off `Shared`.
fn dispatch(sh: &Shared, tx: &SyncSender<IngestMsg>, frame: &str) -> Reply {
    let mut it = frame.split_whitespace();
    let cmd = it.next().unwrap_or("");
    match cmd {
        "hello" => Reply::Text(format!("ready {}", sh.durable.load(Ordering::SeqCst))),
        "p" => {
            let Some(p) = Ping::decode(frame) else {
                sh.stats.ingest_garbage(1);
                return Reply::Text("err garbage".to_string());
            };
            match tx.try_send(IngestMsg::Ping(p)) {
                Ok(()) => {
                    let depth = (sh.depth.fetch_add(1, Ordering::SeqCst) + 1).max(0);
                    sh.stats.observe_queue_depth(depth as u64);
                    Reply::Text(format!("ok {}", p.seq))
                }
                Err(TrySendError::Full(_)) => {
                    sh.stats.shed_busy(1);
                    Reply::Text(format!(
                        "busy {} {}",
                        p.seq,
                        sh.depth.load(Ordering::SeqCst).max(0)
                    ))
                }
                Err(TrySendError::Disconnected(_)) => Reply::Text("err closed".to_string()),
            }
        }
        "flush" => {
            let (rtx, rrx) = sync_channel(1);
            if tx.send(IngestMsg::Flush(rtx)).is_err() {
                return Reply::Text("err closed".to_string());
            }
            match rrx.recv() {
                Ok(d) => Reply::Text(format!("flushed {d}")),
                Err(_) => Reply::Text("err closed".to_string()),
            }
        }
        "snapshot" => {
            let (rtx, rrx) = sync_channel(1);
            if tx.send(IngestMsg::Snapshot(rtx)).is_err() {
                return Reply::Text("err closed".to_string());
            }
            match rrx.recv() {
                Ok(Ok(seq)) => Reply::Text(format!("snapped {seq}")),
                Ok(Err(why)) => Reply::Text(format!("err snapshot {why}")),
                Err(_) => Reply::Text("err closed".to_string()),
            }
        }
        "coloc" => {
            let parsed = (|| {
                let a: u64 = it.next()?.parse().ok()?;
                let b: u64 = it.next()?.parse().ok()?;
                let t0 = f64_from_hex(it.next()?)?;
                let t1 = f64_from_hex(it.next()?)?;
                let steps: usize = it.next()?.parse().ok()?;
                it.next().is_none().then_some((a, b, t0, t1, steps))
            })();
            let Some((a, b, t0, t1, steps)) = parsed else {
                return Reply::Text("err bad-query".to_string());
            };
            let steps = steps.clamp(1, MAX_QUERY_STEPS);
            let allow_stale =
                sh.depth.load(Ordering::SeqCst).max(0) >= sh.opts.shed_defer_depth as i64;
            let outcome = sh.state.lock().expect("state lock").windowed_colocation(
                a,
                b,
                t0,
                t1,
                steps,
                allow_stale,
                &sh.stats,
            );
            Reply::Text(format!(
                "coloc {} {}",
                outcome.staleness.token(),
                f64_to_hex(outcome.value)
            ))
        }
        "topk" => {
            let parsed = (|| {
                let obj: u64 = it.next()?.parse().ok()?;
                let t0 = f64_from_hex(it.next()?)?;
                let t1 = f64_from_hex(it.next()?)?;
                let steps: usize = it.next()?.parse().ok()?;
                let k: usize = it.next()?.parse().ok()?;
                it.next().is_none().then_some((obj, t0, t1, steps, k))
            })();
            let Some((obj, t0, t1, steps, k)) = parsed else {
                return Reply::Text("err bad-query".to_string());
            };
            let steps = steps.clamp(1, MAX_QUERY_STEPS);
            let allow_stale =
                sh.depth.load(Ordering::SeqCst).max(0) >= sh.opts.shed_defer_depth as i64;
            let outcome = sh.state.lock().expect("state lock").topk(
                obj,
                t0,
                t1,
                steps,
                k,
                allow_stale,
                sh.opts.query_budget,
                &sh.stats,
            );
            let mut reply = format!(
                "topk {} {} {}",
                outcome.staleness.token(),
                if outcome.deadline_hit {
                    "deadline"
                } else {
                    "ok"
                },
                outcome.value.len()
            );
            for (id, score) in &outcome.value {
                reply.push_str(&format!(" {id} {}", f64_to_hex(*score)));
            }
            Reply::Text(reply)
        }
        "stats" => Reply::Text(sh.stats.render()),
        "shutdown" => Reply::Shutdown("bye".to_string()),
        _ => Reply::Text("err unknown".to_string()),
    }
}

/// Recovers the served state from disk: newest verified snapshot, plus
/// replay of every verified WAL record.
fn recover(
    opts: &ServeOptions,
    storage: &Arc<dyn Storage>,
    stats: &Arc<ServeStats>,
) -> Result<(ServeState, Wal), ServeError> {
    let snap_dir = opts.dir.join("snap");
    storage
        .create_dir_all(&snap_dir)
        .map_err(|e| ServeError::Storage {
            what: "snapshot dir",
            attempts: 1,
            source: e,
        })?;
    sts_runtime::sweep_stale_tmp(storage.as_ref(), &snap_dir).map_err(|e| ServeError::Storage {
        what: "snapshot tmp sweep",
        attempts: 1,
        source: e,
    })?;
    let mut state = load_latest(storage.as_ref(), &snap_dir, &opts.state, stats)
        .unwrap_or_else(|| ServeState::new(opts.state.clone()));
    let (wal, records) = Wal::open(
        Arc::clone(storage),
        &opts.dir.join("wal"),
        opts.segment_records,
        Arc::clone(stats),
    )?;
    let mut replayed = 0u64;
    for rec in &records {
        let Some(p) = Ping::decode(rec) else {
            // Unreachable for segments we wrote (digest-verified), but
            // a foreign record must not abort recovery.
            eprintln!("sts-serve: skipping undecodable wal record {rec:?}");
            continue;
        };
        if state.apply(&p) != ApplyVerdict::DupSeq {
            replayed += 1;
        }
    }
    stats.recovered_records(replayed);
    Ok((state, wal))
}

/// The ingest thread body: the single writer of state and WAL.
fn ingest_loop(sh: &Shared, mut wal: Wal, rx: Receiver<IngestMsg>) {
    let commit_every = sh.opts.commit_every.max(1);
    let mut applied_since_snap = 0u64;
    fn commit(wal: &mut Wal, sh: &Shared) -> Result<(), ServeError> {
        wal.commit()?;
        let seq = sh.state.lock().expect("state lock").max_seq();
        sh.durable.store(seq, Ordering::SeqCst);
        Ok(())
    }
    fn snapshot(wal: &mut Wal, sh: &Shared) -> Result<u64, ServeError> {
        wal.commit()?;
        let state = sh.state.lock().expect("state lock");
        let seq = write_snapshot(
            sh.storage.as_ref(),
            &sh.opts.dir.join("snap"),
            &state,
            &sh.stats,
        )?;
        drop(state);
        wal.truncate_all()?;
        sh.durable.store(seq, Ordering::SeqCst);
        Ok(seq)
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            IngestMsg::Ping(p) => {
                sh.depth.fetch_sub(1, Ordering::SeqCst);
                if !sh.opts.ingest_delay.is_zero() {
                    std::thread::sleep(sh.opts.ingest_delay);
                }
                let verdict = sh.state.lock().expect("state lock").apply(&p);
                match verdict {
                    ApplyVerdict::Applied => {
                        sh.stats.ingest_applied(1);
                        wal.append(p.encode());
                        applied_since_snap += 1;
                    }
                    ApplyVerdict::DupSeq => sh.stats.ingest_dup(1),
                    // Refused, but the seq was consumed: log it so
                    // replay reproduces the dedup horizon exactly.
                    ApplyVerdict::StaleTime => {
                        sh.stats.ingest_old(1);
                        wal.append(p.encode());
                    }
                }
                if wal.pending_len() >= commit_every {
                    if let Err(e) = commit(&mut wal, sh) {
                        eprintln!("sts-serve: wal commit failed: {e}");
                        sh.stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                if sh.opts.snapshot_every > 0 && applied_since_snap >= sh.opts.snapshot_every {
                    match snapshot(&mut wal, sh) {
                        Ok(_) => applied_since_snap = 0,
                        Err(e) => {
                            eprintln!("sts-serve: snapshot failed: {e}");
                            sh.stop.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            }
            IngestMsg::Flush(reply) => {
                if let Err(e) = commit(&mut wal, sh) {
                    eprintln!("sts-serve: wal commit failed: {e}");
                    sh.stop.store(true, Ordering::SeqCst);
                    return;
                }
                let _ = reply.send(sh.durable.load(Ordering::SeqCst));
            }
            IngestMsg::Snapshot(reply) => {
                let res = snapshot(&mut wal, sh).map_err(|e| e.to_string());
                if res.is_ok() {
                    applied_since_snap = 0;
                }
                let _ = reply.send(res);
            }
        }
    }
    // Channel closed: every sender is gone. Make the tail durable.
    if let Err(e) = commit(&mut wal, sh) {
        eprintln!("sts-serve: final wal commit failed: {e}");
    }
}

/// Decrements the active-connection gauge on scope exit, however the
/// conn loop ends.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One TCP connection's frame loop.
fn serve_conn(sh: Arc<Shared>, tx: SyncSender<IngestMsg>, stream: TcpStream) {
    let _guard = ConnGuard(Arc::clone(&sh));
    let conn = match FrameConn::new(stream) {
        Ok(c) => c.with_frame_cap(sh.opts.frame_cap),
        Err(_) => return,
    };
    if conn.set_read_deadline(sh.opts.read_deadline).is_err() {
        return;
    }
    let mut conn = conn;
    loop {
        if sh.stop.load(Ordering::SeqCst) {
            break;
        }
        match conn.recv() {
            Ok(frame) => match dispatch(&sh, &tx, &frame) {
                Reply::Text(t) => {
                    if conn.send(&t).is_err() {
                        break;
                    }
                }
                Reply::Shutdown(t) => {
                    let _ = conn.send(&t);
                    sh.stop.store(true, Ordering::SeqCst);
                    break;
                }
            },
            // Line noise: typed, counted, survivable — keep serving
            // this connection (the frame boundary resynchronizes).
            Err(ProtocolError::Garbage { .. }) => {
                sh.stats.ingest_garbage(1);
                if conn.send("err garbage").is_err() {
                    break;
                }
            }
            // Over-cap frame: the stream is mid-frame, unrecoverable.
            Err(ProtocolError::FrameTooLarge { .. }) => {
                sh.stats.frames_too_large(1);
                let _ = conn.send("err too-large");
                break;
            }
            Err(ref e) if is_timeout(e) => {
                sh.stats.slow_clients(1);
                break;
            }
            Err(_) => break, // EOF or hard I/O error.
        }
    }
}

/// The stdio frame loop (pipes: no deadlines, single connection).
fn serve_stdio_frames<R: BufRead, W: Write>(
    sh: &Shared,
    tx: &SyncSender<IngestMsg>,
    reader: &mut R,
    writer: &mut W,
) {
    loop {
        if sh.stop.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_capped(reader, sh.opts.frame_cap) {
            Ok(frame) => match dispatch(sh, tx, &frame) {
                Reply::Text(t) => {
                    if write_frame(writer, &t).is_err() {
                        break;
                    }
                }
                Reply::Shutdown(t) => {
                    let _ = write_frame(writer, &t);
                    sh.stop.store(true, Ordering::SeqCst);
                    break;
                }
            },
            Err(ProtocolError::Garbage { .. }) => {
                sh.stats.ingest_garbage(1);
                if write_frame(writer, "err garbage").is_err() {
                    break;
                }
            }
            Err(ProtocolError::FrameTooLarge { .. }) => {
                sh.stats.frames_too_large(1);
                let _ = write_frame(writer, "err too-large");
                break;
            }
            Err(_) => break,
        }
    }
}

/// The service entry points.
pub struct Server;

impl Server {
    /// Recovers from `opts.dir` and starts serving on a TCP listener
    /// bound to `addr` (use port 0 for an ephemeral port; the bound
    /// address is on the returned handle).
    pub fn start(
        opts: ServeOptions,
        storage: Arc<dyn Storage>,
        addr: &str,
    ) -> Result<ServerHandle, ServeError> {
        let stats = Arc::new(ServeStats::default());
        let (state, wal) = recover(&opts, &storage, &stats)?;
        let durable = state.max_seq();
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Storage {
            what: "tcp bind",
            attempts: 1,
            source: e,
        })?;
        let bound = listener.local_addr().map_err(|e| ServeError::Storage {
            what: "tcp local_addr",
            attempts: 1,
            source: e,
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Storage {
                what: "tcp nonblocking",
                attempts: 1,
                source: e,
            })?;
        let sh = Arc::new(Shared {
            state: Mutex::new(state),
            stats,
            storage,
            durable: AtomicU64::new(durable),
            depth: AtomicI64::new(0),
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            opts,
        });
        let (tx, rx) = sync_channel::<IngestMsg>(sh.opts.queue_bound.max(1));
        let ingest = {
            let sh = Arc::clone(&sh);
            std::thread::spawn(move || ingest_loop(&sh, wal, rx))
        };
        let listen_thread = {
            let sh = Arc::clone(&sh);
            std::thread::spawn(move || {
                // `tx` lives in this thread: when the listener exits and
                // every conn thread finishes, the channel closes and the
                // ingest thread commits its tail and exits.
                let tx = tx;
                loop {
                    if sh.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            if sh.active_conns.load(Ordering::SeqCst) >= sh.opts.max_conns {
                                sh.stats.conns_rejected(1);
                                let mut stream = stream;
                                let _ = write_frame(&mut stream, "err conns");
                                continue;
                            }
                            sh.stats.conns(1);
                            sh.active_conns.fetch_add(1, Ordering::SeqCst);
                            let sh = Arc::clone(&sh);
                            let tx = tx.clone();
                            std::thread::spawn(move || serve_conn(sh, tx, stream));
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })
        };
        Ok(ServerHandle {
            addr: bound,
            shared: sh,
            listener: Some(listen_thread),
            ingest: Some(ingest),
        })
    }

    /// Recovers from `opts.dir` and serves a single session over
    /// stdin/stdout, blocking until EOF or a `shutdown` frame. The
    /// read deadline is disarmed (pipes cannot slowloris).
    pub fn run_stdio(opts: ServeOptions, storage: Arc<dyn Storage>) -> Result<(), ServeError> {
        let stats = Arc::new(ServeStats::default());
        let (state, wal) = recover(&opts, &storage, &stats)?;
        let durable = state.max_seq();
        let sh = Arc::new(Shared {
            state: Mutex::new(state),
            stats,
            storage,
            durable: AtomicU64::new(durable),
            depth: AtomicI64::new(0),
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(1),
            opts,
        });
        let (tx, rx) = sync_channel::<IngestMsg>(sh.opts.queue_bound.max(1));
        let ingest = {
            let sh = Arc::clone(&sh);
            std::thread::spawn(move || ingest_loop(&sh, wal, rx))
        };
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut reader = stdin.lock();
        let mut writer = stdout.lock();
        serve_stdio_frames(&sh, &tx, &mut reader, &mut writer);
        drop(tx);
        let _ = ingest.join();
        Ok(())
    }
}

/// A running TCP server: join/stop handle plus introspection for
/// in-process tests.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The durable (WAL-committed or snapshot-covered) seq horizon.
    pub fn durable_seq(&self) -> u64 {
        self.shared.durable.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops on its own — a client `shutdown`
    /// frame, or a fatal storage error in the ingest thread. This is
    /// what the `sts-serve` binary parks on.
    pub fn join(mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
    }

    /// Stops the listener and waits for the ingest thread to commit
    /// its tail. Connected clients must have disconnected (or be past
    /// their read deadline) for this to complete.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use crate::state::Staleness;
    use sts_runtime::FsStorage;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sts-serve-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start(opts: ServeOptions) -> ServerHandle {
        Server::start(opts, Arc::new(FsStorage), "127.0.0.1:0").unwrap()
    }

    fn walk_pings(n: u64, objects: u64) -> Vec<Ping> {
        let mut out = Vec::new();
        let mut seq = 0;
        for i in 0..n {
            for obj in 0..objects {
                seq += 1;
                out.push(Ping {
                    seq,
                    obj,
                    t: i as f64 + 0.1 * obj as f64,
                    x: 10.0 + i as f64 + 1.5 * obj as f64,
                    y: 20.0 + i as f64 / 2.0,
                });
            }
        }
        out
    }

    #[test]
    fn ingest_query_flush_and_restart_round_trip() {
        let dir = tmp_dir("roundtrip");
        let pings = walk_pings(12, 2);
        let expected_applied = pings.len() as u64;
        let reply_before;
        {
            let h = start(ServeOptions::new(&dir));
            let mut c = ServeClient::connect(h.addr()).unwrap();
            assert_eq!(c.hello().unwrap(), 0);
            for p in &pings {
                c.ingest_until_acked(p).unwrap();
            }
            let durable = c.flush().unwrap();
            assert_eq!(durable, expected_applied);
            reply_before = c.colocate_raw(0, 1, 3.0, 9.0, 5).unwrap();
            assert!(reply_before.starts_with("coloc fresh "));
            let stats = c.stats().unwrap();
            let get = |n: &str| stats.iter().find(|(k, _)| k == n).unwrap().1;
            assert_eq!(get("ingest_applied"), expected_applied);
            assert_eq!(get("shed_busy"), 0);
            drop(c);
            h.shutdown();
        }
        // Restart on the same dir: recovery replays the WAL and the
        // same query answers byte-identically.
        let h = start(ServeOptions::new(&dir));
        assert_eq!(h.durable_seq(), expected_applied);
        assert!(h.stats().get("recovered_records").unwrap() > 0);
        let mut c = ServeClient::connect(h.addr()).unwrap();
        assert_eq!(c.hello().unwrap(), expected_applied);
        let reply_after = c.colocate_raw(0, 1, 3.0, 9.0, 5).unwrap();
        assert_eq!(reply_after, reply_before, "recovery must be byte-identical");
        // Resending already-consumed pings is a counted no-op.
        for p in &pings[..4] {
            c.ingest_until_acked(p).unwrap();
        }
        c.flush().unwrap();
        assert_eq!(c.stats_get("ingest_dup").unwrap(), 4);
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_still_matches() {
        let dir = tmp_dir("snap");
        let pings = walk_pings(15, 2);
        let reply_before;
        {
            let h = start(ServeOptions::new(&dir));
            let mut c = ServeClient::connect(h.addr()).unwrap();
            for p in &pings[..20] {
                c.ingest_until_acked(p).unwrap();
            }
            let seq = c.snapshot().unwrap();
            assert_eq!(seq, 20);
            for p in &pings[20..] {
                c.ingest_until_acked(p).unwrap();
            }
            c.flush().unwrap();
            reply_before = c.topk_raw(0, 2.0, 13.0, 5, 3).unwrap();
            let stats = c.stats().unwrap();
            let get = |n: &str| stats.iter().find(|(k, _)| k == n).unwrap().1;
            assert_eq!(get("snapshots"), 1);
            assert!(get("wal_truncated") > 0);
            drop(c);
            h.shutdown();
        }
        let h = start(ServeOptions::new(&dir));
        let mut c = ServeClient::connect(h.addr()).unwrap();
        assert_eq!(c.hello().unwrap(), pings.len() as u64);
        assert_eq!(c.topk_raw(0, 2.0, 13.0, 5, 3).unwrap(), reply_before);
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_fires_on_applied_count() {
        let dir = tmp_dir("autosnap");
        let mut opts = ServeOptions::new(&dir);
        opts.snapshot_every = 10;
        let h = start(opts);
        let mut c = ServeClient::connect(h.addr()).unwrap();
        for p in walk_pings(13, 2) {
            c.ingest_until_acked(&p).unwrap();
        }
        c.flush().unwrap();
        assert!(c.stats_get("snapshots").unwrap() >= 2);
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_with_busy_and_stale_markers_not_oom() {
        let dir = tmp_dir("overload");
        let mut opts = ServeOptions::new(&dir);
        opts.queue_bound = 4;
        opts.shed_defer_depth = 2;
        opts.ingest_delay = Duration::from_millis(3);
        // The flood connection sits idle while the prober below runs;
        // don't let the slowloris deadline cut it off under a loaded
        // test host (the deadline has its own dedicated test).
        opts.read_deadline = Some(Duration::from_secs(120));
        let h = start(opts);
        // Warm two objects and their caches.
        let mut c = ServeClient::connect(h.addr()).unwrap();
        for p in walk_pings(6, 2) {
            c.ingest_until_acked(&p).unwrap();
        }
        c.flush().unwrap();
        assert_eq!(c.colocate(0, 1, 1.0, 5.0, 3).unwrap().0, Staleness::Fresh);
        // The warm-up's resend-until-acked loop may itself have been
        // shed (acks return in microseconds, the 3 ms apply delay is
        // the bottleneck), so account for the flood as a delta.
        let busy_before = c.stats_get("shed_busy").unwrap();
        // Flood without waiting for acks: the bounded queue must push
        // back with `busy`, never grow.
        let flood: Vec<Ping> = walk_pings(80, 2).into_iter().skip(12).collect();
        let (ok, busy) = c.ingest_pipelined(&flood).unwrap();
        assert_eq!(ok + busy, flood.len() as u64, "every ping answered");
        assert!(busy > 0, "flood against a 4-deep queue must shed");
        c.flush().unwrap();
        let stats = c.stats().unwrap();
        let get = |n: &str| stats.iter().find(|(k, _)| k == n).unwrap().1;
        assert_eq!(
            get("shed_busy") - busy_before,
            busy,
            "every busy reply is counted"
        );
        assert_eq!(
            get("ingest_applied"),
            12 + ok,
            "exactly the acked pings applied — no silent drops"
        );
        // The depth gauge is approximate by one: the single consumer
        // decrements right after dequeue, so at most one dequeued ping
        // can still be counted when a producer reads the high water.
        assert!(get("queue_depth_max") <= 5, "queue bound respected");
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_ladder_rung_one_answers_stale_with_marker() {
        // `shed_defer_depth = 0` pins the ladder's first rung engaged,
        // making the stale-answer path deterministic instead of a race
        // against the ingest queue draining.
        let dir = tmp_dir("shedstale");
        let mut opts = ServeOptions::new(&dir);
        opts.shed_defer_depth = 0;
        let h = start(opts);
        let mut c = ServeClient::connect(h.addr()).unwrap();
        for p in walk_pings(8, 2) {
            c.ingest_until_acked(&p).unwrap();
        }
        c.flush().unwrap();
        // Cold caches: the first query must build models (a build is
        // not a refresh, so it is never deferred) and answer fresh.
        let (stale0, v0) = c.colocate(0, 1, 1.0, 6.0, 4).unwrap();
        assert_eq!(stale0, Staleness::Fresh);
        assert!(v0 > 0.0);
        // Dirty the caches, then query again: the ladder defers the
        // rebuild and the reply carries the explicit stale marker.
        let mut extra = walk_pings(10, 2);
        extra.drain(..16);
        for p in &mut extra {
            p.seq += 16;
        }
        for p in &extra {
            c.ingest_until_acked(p).unwrap();
        }
        c.flush().unwrap();
        // Only the speed-KDE rebuild is deferred — the trajectory ring
        // still advances — so the answer is usable, just flagged.
        let (stale1, v1) = c.colocate(0, 1, 1.0, 6.0, 4).unwrap();
        assert_eq!(stale1, Staleness::Stale, "deferred refresh must be flagged");
        assert!(v1.is_finite());
        assert!(c.stats_get("refresh_deferred").unwrap() >= 2);
        assert!(c.stats_get("queries_stale").unwrap() >= 1);
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_frames_are_survivable_and_counted() {
        let dir = tmp_dir("garbage");
        let h = start(ServeOptions::new(&dir));
        let mut c = ServeClient::connect(h.addr()).unwrap();
        assert_eq!(c.roundtrip("p not a ping").unwrap(), "err garbage");
        assert_eq!(c.roundtrip("wat").unwrap(), "err unknown");
        // Still serving afterwards.
        assert_eq!(c.hello().unwrap(), 0);
        assert_eq!(c.stats_get("ingest_garbage").unwrap(), 1);
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_client_is_disconnected_by_the_read_deadline() {
        let dir = tmp_dir("slowloris");
        let mut opts = ServeOptions::new(&dir);
        opts.read_deadline = Some(Duration::from_millis(60));
        let h = start(opts);
        // Connect, say nothing. The server must cut us loose.
        let stream = TcpStream::connect(h.addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h.stats().get("slow_clients") != Some(1) {
            assert!(
                std::time::Instant::now() < deadline,
                "server never enforced the read deadline"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(stream);
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_frames_hit_the_endpoint_cap() {
        let dir = tmp_dir("cap");
        let mut opts = ServeOptions::new(&dir);
        opts.frame_cap = 64;
        let h = start(opts);
        let mut c = ServeClient::connect(h.addr()).unwrap();
        let reply = c.roundtrip(&"x".repeat(65));
        assert_eq!(reply.unwrap(), "err too-large");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h.stats().get("frames_too_large") != Some(1) {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        // The poisoned connection is gone, but the server still accepts
        // fresh ones at or under the cap.
        let mut c2 = ServeClient::connect(h.addr()).unwrap();
        assert_eq!(c2.hello().unwrap(), 0);
        drop((c, c2));
        h.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
