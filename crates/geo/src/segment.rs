//! Line segments: projection and point–segment distance.
//!
//! These primitives back the interpolation-based baselines: EDwP projects
//! points onto trajectory segments and SST matches points to the closest
//! segment of the other trajectory.

use crate::Point;

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment in meters.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Point at parameter `s ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(&self, s: f64) -> Point {
        self.a.lerp(&self.b, s)
    }

    /// Parameter `s ∈ [0, 1]` of the point on the segment closest to `p`
    /// (the clamped orthogonal projection). Degenerate segments return 0.
    pub fn project_param(&self, p: &Point) -> f64 {
        let d = self.b - self.a;
        let len2 = d.dot(&d);
        if len2 == 0.0 {
            return 0.0;
        }
        ((*p - self.a).dot(&d) / len2).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn project(&self, p: &Point) -> Point {
        self.point_at(self.project_param(p))
    }

    /// Euclidean distance from `p` to the segment.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.project(p).distance(p)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 8.0));
        assert!(approx_eq(s.length(), 10.0));
        assert_eq!(s.midpoint(), Point::new(3.0, 4.0));
    }

    #[test]
    fn projection_inside() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let p = Point::new(4.0, 3.0);
        assert!(approx_eq(s.project_param(&p), 0.4));
        assert_eq!(s.project(&p), Point::new(4.0, 0.0));
        assert!(approx_eq(s.distance_to_point(&p), 3.0));
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!(approx_eq(s.project_param(&Point::new(-5.0, 2.0)), 0.0));
        assert!(approx_eq(s.project_param(&Point::new(15.0, 2.0)), 1.0));
        assert!(approx_eq(s.distance_to_point(&Point::new(13.0, 4.0)), 5.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.project_param(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(s.project(&Point::new(5.0, 5.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn point_at_endpoints() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(3.0, 5.0));
        assert_eq!(s.point_at(0.0), s.a);
        assert_eq!(s.point_at(1.0), s.b);
    }

    #[test]
    fn distance_to_point_on_segment_is_zero() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let on = s.point_at(0.3);
        assert!(s.distance_to_point(&on) < 1e-9);
    }
}
