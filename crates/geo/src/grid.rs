//! Uniform grid partition of the spatial area of interest (paper §IV-A).
//!
//! The paper partitions the space into `n` disjoint equal-sized grids
//! `R = {r1 … rn}` and uses the cell centers as their locations. The grid
//! also provides the range query used to truncate probability mass to
//! cells near an observation (`cells_within`), which turns the dense
//! `O(|R|)` per-location scans into `O(k)` local ones without changing
//! results beyond a configurable tail threshold.

use crate::{BoundingBox, Point};
use std::fmt;

/// Identifier of a grid cell: a dense index in `0 .. grid.len()`.
///
/// Row-major: `id = row * cols + col` with rows growing along +y and
/// columns along +x.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The dense index as `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Errors constructing a [`Grid`].
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// The requested cell size was zero, negative or non-finite.
    InvalidCellSize(f64),
    /// The area was degenerate (zero width or height).
    DegenerateArea,
    /// The area/cell-size combination would produce more cells than fit in
    /// a `u32` index (or an absurd amount of memory).
    TooManyCells {
        /// Requested number of columns.
        cols: usize,
        /// Requested number of rows.
        rows: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidCellSize(s) => write!(f, "invalid grid cell size: {s}"),
            GridError::DegenerateArea => write!(f, "grid area has zero width or height"),
            GridError::TooManyCells { cols, rows } => {
                write!(
                    f,
                    "grid of {cols} x {rows} cells exceeds the supported size"
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

/// A uniform partition of a rectangular area into square cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    area: BoundingBox,
    cell_size: f64,
    cols: u32,
    rows: u32,
}

impl Grid {
    /// Maximum number of cells a grid may hold; large enough for a city at
    /// fine resolution, small enough to catch runaway configurations.
    pub const MAX_CELLS: usize = 64_000_000;

    /// Creates a grid covering `area` with square cells of side
    /// `cell_size` meters. The last row/column may extend past the area so
    /// that the whole area is covered.
    pub fn new(area: BoundingBox, cell_size: f64) -> Result<Self, GridError> {
        if !cell_size.is_finite() || cell_size <= 0.0 {
            return Err(GridError::InvalidCellSize(cell_size));
        }
        if area.width() <= 0.0 || area.height() <= 0.0 {
            return Err(GridError::DegenerateArea);
        }
        let cols = (area.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (area.height() / cell_size).ceil().max(1.0) as usize;
        let total = cols.saturating_mul(rows);
        if total > Self::MAX_CELLS || cols > u32::MAX as usize || rows > u32::MAX as usize {
            return Err(GridError::TooManyCells { cols, rows });
        }
        Ok(Grid {
            area,
            cell_size,
            cols: cols as u32,
            rows: rows as u32,
        })
    }

    /// The covered area as given at construction.
    #[inline]
    pub fn area(&self) -> BoundingBox {
        self.area
    }

    /// Cell side length in meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of columns (x direction).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows (y direction).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// `true` when the grid has no cells (never true for a constructed
    /// grid; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell containing `p`, or `None` when `p` lies outside the grid.
    /// Points exactly on the max boundary are clamped into the last cell.
    pub fn cell_at(&self, p: Point) -> Option<CellId> {
        if !self.area.contains(&p) {
            return None;
        }
        Some(self.cell_at_clamped(p))
    }

    /// The cell containing `p`, snapping points outside the grid to the
    /// nearest boundary cell. Useful when noise pushes observations
    /// slightly out of the area of interest.
    pub fn cell_at_clamped(&self, p: Point) -> CellId {
        let q = self.area.clamp(&p);
        let col = (((q.x - self.area.min().x) / self.cell_size) as u32).min(self.cols - 1);
        let row = (((q.y - self.area.min().y) / self.cell_size) as u32).min(self.rows - 1);
        CellId(row * self.cols + col)
    }

    /// Center of cell `id` (the paper uses centers as cell locations).
    pub fn center(&self, id: CellId) -> Point {
        let (col, row) = self.col_row(id);
        Point::new(
            self.area.min().x + (col as f64 + 0.5) * self.cell_size,
            self.area.min().y + (row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Column/row coordinates of a cell.
    #[inline]
    pub fn col_row(&self, id: CellId) -> (u32, u32) {
        (id.0 % self.cols, id.0 / self.cols)
    }

    /// Cell id from column/row coordinates; `None` when out of range.
    pub fn cell_from_col_row(&self, col: u32, row: u32) -> Option<CellId> {
        if col < self.cols && row < self.rows {
            Some(CellId(row * self.cols + col))
        } else {
            None
        }
    }

    /// Iterates over all cell ids in dense order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.len() as u32).map(CellId)
    }

    /// All cells whose **center** lies within `radius` meters of `p`.
    ///
    /// This is the truncation primitive behind the sparse STP computation:
    /// probability mass of a Gaussian beyond a few σ is negligible, so only
    /// cells near the observation need to be scanned. The returned ids are
    /// in dense order.
    pub fn cells_within(&self, p: Point, radius: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.cells_within_into(p, radius, &mut out);
        out
    }

    /// Allocation-free variant of [`Grid::cells_within`]: clears `out`
    /// and fills it with the same ids in the same (dense) order, reusing
    /// the vector's capacity. Hot scoring loops call this with a scratch
    /// buffer instead of allocating per evaluation.
    pub fn cells_within_into(&self, p: Point, radius: f64, out: &mut Vec<CellId>) {
        out.clear();
        if !(radius.is_finite() && radius >= 0.0) {
            return;
        }
        let min = self.area.min();
        let lo_col = (((p.x - radius - min.x) / self.cell_size).floor()).max(0.0) as i64;
        let hi_col = (((p.x + radius - min.x) / self.cell_size).floor()) as i64;
        let lo_row = (((p.y - radius - min.y) / self.cell_size).floor()).max(0.0) as i64;
        let hi_row = (((p.y + radius - min.y) / self.cell_size).floor()) as i64;
        let r2 = radius * radius;
        for row in lo_row..=hi_row.min(self.rows as i64 - 1) {
            for col in lo_col..=hi_col.min(self.cols as i64 - 1) {
                let id = CellId(row as u32 * self.cols + col as u32);
                if self.center(id).distance_sq(&p) <= r2 {
                    out.push(id);
                }
            }
        }
    }

    /// The 4- or 8-neighborhood of a cell (here: 8, clipped at borders).
    pub fn neighbors(&self, id: CellId) -> Vec<CellId> {
        let (col, row) = self.col_row(id);
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let r = row as i64 + dr;
                let c = col as i64 + dc;
                if r >= 0 && c >= 0 {
                    if let Some(n) = self.cell_from_col_row(c as u32, r as u32) {
                        out.push(n);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn grid_10x5() -> Grid {
        Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(100.0, 50.0)),
            10.0,
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let g = grid_10x5();
        assert_eq!(g.cols(), 10);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.len(), 50);
        assert!(!g.is_empty());
        assert!(approx_eq(g.cell_size(), 10.0));
    }

    #[test]
    fn construction_errors() {
        let area = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 50.0));
        assert!(matches!(
            Grid::new(area, 0.0),
            Err(GridError::InvalidCellSize(_))
        ));
        assert!(matches!(
            Grid::new(area, -1.0),
            Err(GridError::InvalidCellSize(_))
        ));
        assert!(matches!(
            Grid::new(area, f64::NAN),
            Err(GridError::InvalidCellSize(_))
        ));
        let line = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 0.0));
        assert!(matches!(
            Grid::new(line, 1.0),
            Err(GridError::DegenerateArea)
        ));
        let huge = BoundingBox::new(Point::ORIGIN, Point::new(1e9, 1e9));
        assert!(matches!(
            Grid::new(huge, 0.1),
            Err(GridError::TooManyCells { .. })
        ));
    }

    #[test]
    fn cell_lookup_roundtrip() {
        let g = grid_10x5();
        for id in g.cells() {
            let c = g.center(id);
            assert_eq!(g.cell_at(c), Some(id));
            let (col, row) = g.col_row(id);
            assert_eq!(g.cell_from_col_row(col, row), Some(id));
        }
    }

    #[test]
    fn cell_at_boundaries() {
        let g = grid_10x5();
        // Max corner belongs to the last cell (clamped).
        assert_eq!(g.cell_at(Point::new(100.0, 50.0)), Some(CellId(49)));
        assert_eq!(g.cell_at(Point::new(0.0, 0.0)), Some(CellId(0)));
        assert_eq!(g.cell_at(Point::new(150.0, 25.0)), None);
        assert_eq!(
            g.cell_at_clamped(Point::new(150.0, 25.0)),
            g.cell_at(Point::new(100.0, 25.0)).unwrap()
        );
        assert_eq!(g.cell_at_clamped(Point::new(-10.0, -10.0)), CellId(0));
    }

    #[test]
    fn ragged_last_column_is_covered() {
        // 95 m wide with 10 m cells -> 10 columns, last one hangs over.
        let g = Grid::new(
            BoundingBox::new(Point::ORIGIN, Point::new(95.0, 20.0)),
            10.0,
        )
        .unwrap();
        assert_eq!(g.cols(), 10);
        assert!(g.cell_at(Point::new(94.9, 10.0)).is_some());
    }

    #[test]
    fn cells_within_radius() {
        let g = grid_10x5();
        let p = Point::new(55.0, 25.0); // a cell center
        let near = g.cells_within(p, 0.5);
        assert_eq!(near, vec![g.cell_at(p).unwrap()]);

        let r = 15.0;
        let within = g.cells_within(p, r);
        // Compare against a brute-force scan.
        let brute: Vec<CellId> = g
            .cells()
            .filter(|id| g.center(*id).distance(&p) <= r)
            .collect();
        assert_eq!(within, brute);
        assert!(within.len() > 1);
    }

    #[test]
    fn cells_within_degenerate_radius() {
        let g = grid_10x5();
        assert!(g.cells_within(Point::new(5.0, 5.0), f64::NAN).is_empty());
        assert!(g.cells_within(Point::new(5.0, 5.0), -1.0).is_empty());
        // Radius 0 on a center yields exactly that cell.
        let c = g.center(CellId(0));
        assert_eq!(g.cells_within(c, 0.0), vec![CellId(0)]);
    }

    #[test]
    fn cells_within_offgrid_point() {
        let g = grid_10x5();
        let far = Point::new(-100.0, -100.0);
        assert!(g.cells_within(far, 10.0).is_empty());
        // Large radius from outside still finds cells.
        assert!(!g.cells_within(far, 200.0).is_empty());
    }

    #[test]
    fn neighbors_counts() {
        let g = grid_10x5();
        // Corner cell has 3 neighbors.
        assert_eq!(g.neighbors(CellId(0)).len(), 3);
        // Edge cell has 5.
        assert_eq!(g.neighbors(CellId(1)).len(), 5);
        // Interior cell has 8.
        let interior = g.cell_from_col_row(5, 2).unwrap();
        assert_eq!(g.neighbors(interior).len(), 8);
    }

    #[test]
    fn centers_are_inside_cells() {
        let g = Grid::new(
            BoundingBox::new(Point::new(-50.0, -20.0), Point::new(33.0, 47.0)),
            7.0,
        )
        .unwrap();
        for id in g.cells() {
            let c = g.center(id);
            assert_eq!(g.cell_at_clamped(c), id);
        }
    }
}
