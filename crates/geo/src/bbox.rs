//! Axis-aligned bounding boxes.

use crate::Point;

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]` in the local
/// metric frame. Used to describe the spatial area of interest that the
/// grid partitions (a city, a mall floor, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min: Point,
    max: Point,
}

impl BoundingBox {
    /// Creates a bounding box from two opposite corners, in any order.
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest box containing all `points`; `None` for an empty slice.
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = *it.next()?;
        let mut bb = BoundingBox::new(first, first);
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Lower-left corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Extent along x, in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Extent along y, in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// `true` when `p` lies inside the box or on its boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Grows the box (in place) to include `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns the box grown by `margin` meters on every side.
    pub fn inflated(&self, margin: f64) -> BoundingBox {
        let m = Point::new(margin, margin);
        BoundingBox::new(self.min - m, self.max + m)
    }

    /// Clamps `p` to the closest point inside the box.
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn corners_are_normalized() {
        let bb = BoundingBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 4.0));
        assert_eq!(bb.min(), Point::new(-2.0, -1.0));
        assert_eq!(bb.max(), Point::new(5.0, 4.0));
        assert!(approx_eq(bb.width(), 7.0));
        assert!(approx_eq(bb.height(), 5.0));
        assert!(approx_eq(bb.area(), 35.0));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 7.0),
            Point::new(-1.0, 2.0),
        ];
        let bb = BoundingBox::from_points(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min(), Point::new(-1.0, 0.0));
        assert_eq!(bb.max(), Point::new(3.0, 7.0));
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary_and_outside() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(bb.contains(&Point::new(5.0, 5.0)));
        assert!(!bb.contains(&Point::new(10.001, 5.0)));
        assert!(!bb.contains(&Point::new(5.0, -0.001)));
    }

    #[test]
    fn inflate_and_clamp() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let big = bb.inflated(2.0);
        assert_eq!(big.min(), Point::new(-2.0, -2.0));
        assert_eq!(big.max(), Point::new(12.0, 12.0));
        assert_eq!(bb.clamp(&Point::new(-5.0, 4.0)), Point::new(0.0, 4.0));
        assert_eq!(bb.clamp(&Point::new(20.0, 30.0)), Point::new(10.0, 10.0));
        assert_eq!(bb.clamp(&Point::new(3.0, 3.0)), Point::new(3.0, 3.0));
    }

    #[test]
    fn center_is_midpoint() {
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(4.0, 8.0));
        assert_eq!(bb.center(), Point::new(2.0, 4.0));
    }
}
