//! Polylines: piecewise-linear curves through a sequence of points.
//!
//! The continuous *path* of a moving object (paper Definition 1) is modeled
//! as a polyline traversed at given times; this module provides the purely
//! spatial operations (length, interpolation by arc length, resampling).

use crate::{Point, Segment};

/// A piecewise-linear curve through at least one point.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
    /// Cumulative arc length up to each vertex; `cum[0] == 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from its vertices. Returns `None` for an empty
    /// vertex list.
    pub fn new(points: Vec<Point>) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for w in points.windows(2) {
            let last = *cum.last().expect("cum is never empty");
            cum.push(last + w[0].distance(&w[1]));
        }
        Some(Polyline { points, cum })
    }

    /// The vertices.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the polyline has exactly one vertex (zero length).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a constructed polyline always has >= 1 vertex
    }

    /// Total arc length in meters.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum is never empty")
    }

    /// Iterates over the segments between consecutive vertices.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// The point at arc length `s` from the start, clamped to the curve.
    pub fn point_at_length(&self, s: f64) -> Point {
        if self.points.len() == 1 || s <= 0.0 {
            return self.points[0];
        }
        let total = self.length();
        if s >= total {
            return *self.points.last().expect("non-empty");
        }
        // Binary search for the segment containing arc length s.
        let idx = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let idx = idx.min(self.points.len() - 2);
        let seg_len = self.cum[idx + 1] - self.cum[idx];
        if seg_len == 0.0 {
            return self.points[idx];
        }
        let t = (s - self.cum[idx]) / seg_len;
        self.points[idx].lerp(&self.points[idx + 1], t)
    }

    /// Resamples the polyline into `n >= 2` points equally spaced by arc
    /// length (including both endpoints).
    pub fn resample(&self, n: usize) -> Vec<Point> {
        assert!(n >= 2, "resample needs at least 2 points");
        let total = self.length();
        (0..n)
            .map(|i| self.point_at_length(total * i as f64 / (n - 1) as f64))
            .collect()
    }

    /// Minimum distance from `p` to the polyline.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        if self.points.len() == 1 {
            return self.points[0].distance(p);
        }
        self.segments()
            .map(|s| s.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn empty_is_rejected() {
        assert!(Polyline::new(vec![]).is_none());
    }

    #[test]
    fn single_point() {
        let p = Polyline::new(vec![Point::new(1.0, 2.0)]).unwrap();
        assert_eq!(p.length(), 0.0);
        assert_eq!(p.point_at_length(5.0), Point::new(1.0, 2.0));
        assert!(approx_eq(p.distance_to_point(&Point::new(4.0, 6.0)), 5.0));
    }

    #[test]
    fn length_is_sum_of_segments() {
        let p = l_shape();
        assert!(approx_eq(p.length(), 20.0));
        assert_eq!(p.segments().count(), 2);
    }

    #[test]
    fn point_at_length_walks_the_curve() {
        let p = l_shape();
        assert_eq!(p.point_at_length(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at_length(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at_length(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.point_at_length(15.0), Point::new(10.0, 5.0));
        assert_eq!(p.point_at_length(20.0), Point::new(10.0, 10.0));
        // Clamped beyond the ends.
        assert_eq!(p.point_at_length(-3.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at_length(99.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn resample_endpoints_and_spacing() {
        let p = l_shape();
        let r = p.resample(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], Point::new(0.0, 0.0));
        assert_eq!(r[4], Point::new(10.0, 10.0));
        // Equal arc-length spacing of 5 m.
        assert_eq!(r[1], Point::new(5.0, 0.0));
        assert_eq!(r[2], Point::new(10.0, 0.0));
        assert_eq!(r[3], Point::new(10.0, 5.0));
    }

    #[test]
    fn distance_to_point() {
        let p = l_shape();
        assert!(approx_eq(p.distance_to_point(&Point::new(5.0, 3.0)), 3.0));
        assert!(approx_eq(p.distance_to_point(&Point::new(12.0, 5.0)), 2.0));
        assert!(p.distance_to_point(&Point::new(10.0, 0.0)) < 1e-12);
    }

    #[test]
    fn repeated_vertices_do_not_break_interpolation() {
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        assert!(approx_eq(p.length(), 10.0));
        assert_eq!(p.point_at_length(5.0), Point::new(5.0, 0.0));
    }
}
