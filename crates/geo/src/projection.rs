//! Local projection between geographic (lat/lon) and planar coordinates.
//!
//! Real trajectory datasets such as the Porto taxi data the paper evaluates
//! on are recorded as WGS-84 latitude/longitude. STS works in a metric
//! frame (distances in meters, grid cells in meters), so geographic input
//! is projected to a local plane first.
//!
//! We use the equirectangular approximation around a reference point:
//!
//! ```text
//! x = R · Δλ · cos(φ0)      y = R · Δφ
//! ```
//!
//! with `R` the mean Earth radius. At city scale (≲ 30 km from the
//! reference) the distance error is well below 0.1 %, which is far under
//! the 20–100 m location-noise regimes the paper studies.

use crate::Point;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographic point in degrees (WGS-84).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geographic point from latitude/longitude in degrees.
    #[inline]
    pub const fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other` in meters.
    pub fn haversine_distance(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

/// Equirectangular projection centered on a reference geographic point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Creates a projection whose planar origin maps to `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        LocalProjection {
            origin,
            cos_lat0: origin.lat.to_radians().cos(),
        }
    }

    /// The geographic reference point (maps to planar `(0, 0)`).
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic point to local planar meters.
    pub fn to_local(&self, g: &GeoPoint) -> Point {
        let dlat = (g.lat - self.origin.lat).to_radians();
        let dlon = (g.lon - self.origin.lon).to_radians();
        Point::new(EARTH_RADIUS_M * dlon * self.cos_lat0, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection from local planar meters to geographic degrees.
    pub fn to_geo(&self, p: &Point) -> GeoPoint {
        let dlat = p.y / EARTH_RADIUS_M;
        let dlon = if self.cos_lat0 == 0.0 {
            0.0
        } else {
            p.x / (EARTH_RADIUS_M * self.cos_lat0)
        };
        GeoPoint::new(
            self.origin.lat + dlat.to_degrees(),
            self.origin.lon + dlon.to_degrees(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Porto city center, roughly where the taxi dataset lives.
    const PORTO: GeoPoint = GeoPoint::new(41.1579, -8.6291);

    #[test]
    fn roundtrip_is_identity() {
        let proj = LocalProjection::new(PORTO);
        let pts = [
            GeoPoint::new(41.16, -8.63),
            GeoPoint::new(41.10, -8.70),
            GeoPoint::new(41.20, -8.55),
        ];
        for g in &pts {
            let back = proj.to_geo(&proj.to_local(g));
            assert!((back.lat - g.lat).abs() < 1e-9);
            assert!((back.lon - g.lon).abs() < 1e-9);
        }
    }

    #[test]
    fn origin_maps_to_zero() {
        let proj = LocalProjection::new(PORTO);
        let p = proj.to_local(&PORTO);
        assert!(p.norm() < 1e-9);
    }

    #[test]
    fn planar_distance_matches_haversine_at_city_scale() {
        let proj = LocalProjection::new(PORTO);
        let a = GeoPoint::new(41.1579, -8.6291);
        let b = GeoPoint::new(41.17, -8.60); // a couple of km away
        let planar = proj.to_local(&a).distance(&proj.to_local(&b));
        let sphere = a.haversine_distance(&b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn haversine_known_value() {
        // One degree of latitude is ~111.2 km.
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 0.0);
        let d = a.haversine_distance(&b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn haversine_symmetric_and_zero() {
        let a = GeoPoint::new(41.0, -8.0);
        let b = GeoPoint::new(40.5, -8.5);
        assert!((a.haversine_distance(&b) - b.haversine_distance(&a)).abs() < 1e-9);
        assert_eq!(a.haversine_distance(&a), 0.0);
    }

    #[test]
    fn east_is_positive_x_north_is_positive_y() {
        let proj = LocalProjection::new(PORTO);
        let east = proj.to_local(&GeoPoint::new(PORTO.lat, PORTO.lon + 0.01));
        let north = proj.to_local(&GeoPoint::new(PORTO.lat + 0.01, PORTO.lon));
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
    }
}
