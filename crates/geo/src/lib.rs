#![warn(missing_docs)]
//! # sts-geo — geometry substrate
//!
//! Planar geometry used throughout the STS reproduction: points and vector
//! arithmetic in a local metric frame, bounding boxes, the uniform grid
//! partition of §IV-A of the paper, segments and polylines (needed by the
//! interpolation-based baselines EDwP/SST), and a local equirectangular
//! projection for ingesting latitude/longitude data such as the Porto taxi
//! dataset.
//!
//! All coordinates are `f64` meters in a local planar frame unless a type
//! says otherwise ([`GeoPoint`] is degrees).
//!
//! ```
//! use sts_geo::{Point, Grid, BoundingBox};
//!
//! let area = BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0));
//! let grid = Grid::new(area, 10.0).unwrap();
//! assert_eq!(grid.len(), 10 * 5);
//! let cell = grid.cell_at(Point::new(25.0, 25.0)).unwrap();
//! assert_eq!(grid.center(cell), Point::new(25.0, 25.0));
//! ```

mod bbox;
mod grid;
mod point;
mod polyline;
mod projection;
mod segment;

pub use bbox::BoundingBox;
pub use grid::{CellId, Grid, GridError};
pub use point::Point;
pub use polyline::Polyline;
pub use projection::{GeoPoint, LocalProjection};
pub use segment::Segment;

/// Numerical tolerance used for approximate float comparisons inside the
/// geometry substrate (tests and degenerate-case guards).
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`EPSILON`] scaled by
/// their magnitude (relative for large values, absolute near zero).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPSILON * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq(0.0, 1e-12));
        assert!(approx_eq(1e12, 1e12 + 1.0e2));
    }
}
