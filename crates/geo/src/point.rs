//! Planar points in a local metric frame.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the local planar frame, in meters.
///
/// `Point` doubles as a 2-D vector: subtraction of two points yields the
/// displacement vector between them and the usual scalar operations apply.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting component in meters.
    pub x: f64,
    /// Northing component in meters.
    pub y: f64,
}

impl Point {
    /// The origin of the local frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (*self - *other).norm()
    }

    /// Squared Euclidean distance to `other`; avoids the square root when
    /// only comparisons are needed (hot path of the grid truncation).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let d = *self - *other;
        d.x * d.x + d.y * d.y
    }

    /// Euclidean norm of the point interpreted as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product with `other` interpreted as vectors.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product with `other` (signed parallelogram
    /// area); used for orientation tests.
    #[inline]
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation between `self` (at `s = 0`) and `other`
    /// (at `s = 1`). `s` outside `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(&self, other: &Point, s: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * s,
            self.y + (other.y - self.y) * s,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns the unit vector pointing from `self` toward `target`, or
    /// `None` when the two points coincide.
    pub fn direction_to(&self, target: &Point) -> Option<Point> {
        let d = *target - *self;
        let n = d.norm();
        if n == 0.0 {
            None
        } else {
            Some(d / n)
        }
    }

    /// `true` when both coordinates are finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(approx_eq(a.distance(&b), 5.0));
        assert!(approx_eq(a.distance_sq(&b), 25.0));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(-1.5, 2.25);
        let b = Point::new(10.0, -3.0);
        assert!(approx_eq(a.distance(&b), b.distance(&a)));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.cross(&b), 1.0);
        assert_eq!(b.cross(&a), -1.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
        assert_eq!(a.midpoint(&b), Point::new(5.0, 10.0));
    }

    #[test]
    fn direction_to_unit_vector() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.0, 7.0);
        let d = a.direction_to(&b).unwrap();
        assert!(approx_eq(d.norm(), 1.0));
        assert!(approx_eq(d.y, 1.0));
        assert!(a.direction_to(&a).is_none());
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn triangle_inequality_samples() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 1.0),
            Point::new(-2.0, 8.0),
            Point::new(100.0, -40.0),
        ];
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
                }
            }
        }
    }
}
