//! CDR-style observation process (call detail records).
//!
//! The paper's introduction motivates exactly this regime: "the
//! trajectories may be very sparse and irregular in some sensing
//! systems (such as CDR, mobile payments, and tap in/out using smart
//! cards)". A phone's location is only recorded when an *event* happens
//! (a call, a payment), and events cluster: long silences punctuated by
//! bursts. We model event times as a two-state renewal process —
//! exponential gaps drawn from a *burst* scale or an *idle* scale, with
//! state persistence — which produces the heavy-tailed, bursty gap
//! distribution CDR data exhibits.
//!
//! The sampler wraps any ground-truth [`Path`], so it can be applied to
//! the taxi or mall workloads to create a third, much sparser "sensing
//! system" for cross-system experiments.

use crate::{Path, Trajectory};
use sts_rng::Rng;

/// Configuration of the CDR observation process.
#[derive(Debug, Clone, Copy)]
pub struct CdrConfig {
    /// Mean gap between events inside a burst, seconds.
    pub burst_interval: f64,
    /// Mean gap between events while idle, seconds.
    pub idle_interval: f64,
    /// Probability of staying in the burst state after a burst event.
    pub burst_persistence: f64,
    /// Probability of entering a burst after an idle event.
    pub burst_entry: f64,
}

impl Default for CdrConfig {
    fn default() -> Self {
        CdrConfig {
            burst_interval: 30.0,
            idle_interval: 600.0,
            burst_persistence: 0.7,
            burst_entry: 0.3,
        }
    }
}

/// Samples a path with the bursty CDR event process. The first event is
/// at the path's start (the device registers when it appears).
pub fn sample_path_cdr<R: Rng + ?Sized>(
    path: &Path,
    config: &CdrConfig,
    rng: &mut R,
) -> Trajectory {
    assert!(
        config.burst_interval > 0.0 && config.idle_interval > 0.0,
        "intervals must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&config.burst_persistence)
            && (0.0..=1.0).contains(&config.burst_entry),
        "state probabilities must be in [0, 1]"
    );
    let mut times = vec![path.start_time()];
    let mut t = path.start_time();
    let mut bursting = false;
    loop {
        let scale = if bursting {
            config.burst_interval
        } else {
            config.idle_interval
        };
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        t += -scale * u.ln();
        if t > path.end_time() {
            break;
        }
        times.push(t);
        bursting = if bursting {
            rng.random::<f64>() < config.burst_persistence
        } else {
            rng.random::<f64>() < config.burst_entry
        };
    }
    path.sample_at(&times)
        .expect("strictly increasing event times")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajPoint;
    use sts_rng::Xoshiro256pp;

    fn long_path() -> Path {
        Path::new(vec![
            TrajPoint::from_xy(0.0, 0.0, 0.0),
            TrajPoint::from_xy(10_000.0, 0.0, 10_000.0),
        ])
        .unwrap()
    }

    #[test]
    fn produces_valid_sparse_trajectory() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let t = sample_path_cdr(&long_path(), &CdrConfig::default(), &mut rng);
        assert!(t.len() >= 2);
        // Much sparser than a 15-second beacon over the same span.
        assert!(t.len() < 10_000 / 15);
        assert_eq!(t.start_time(), 0.0);
    }

    #[test]
    fn gaps_are_bursty() {
        // Pool the gaps of several independent runs: the CV of a single
        // short run is too noisy to witness burstiness reliably.
        let cfg = CdrConfig::default();
        let mut gaps: Vec<f64> = Vec::new();
        for seed in 0..8 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let t = sample_path_cdr(&long_path(), &cfg, &mut rng);
            gaps.extend(t.points().windows(2).map(|w| w[1].t - w[0].t));
        }
        assert!(gaps.len() > 10, "need enough events to judge burstiness");
        // Coefficient of variation well above 1 (a plain Poisson process
        // has CV = 1): the signature of burstiness.
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.1, "gap CV {cv} not bursty");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sample_path_cdr(
            &long_path(),
            &CdrConfig::default(),
            &mut Xoshiro256pp::seed_from_u64(9),
        );
        let b = sample_path_cdr(
            &long_path(),
            &CdrConfig::default(),
            &mut Xoshiro256pp::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn events_lie_on_path() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let t = sample_path_cdr(&long_path(), &CdrConfig::default(), &mut rng);
        for p in t.points() {
            assert!((p.loc.x - p.t).abs() < 1e-9); // x == t on this path
        }
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = sample_path_cdr(
            &long_path(),
            &CdrConfig {
                burst_interval: -1.0,
                ..CdrConfig::default()
            },
            &mut rng,
        );
    }
}
