//! Road-network taxi workload (Porto-dataset substitute).
//!
//! Each taxi drives on a Manhattan-style street grid: it repeatedly picks
//! a random destination intersection and follows a randomized monotone
//! lattice route to it. Per-taxi speed is drawn log-normally (median
//! ~10 m/s ≈ 36 km/h) and each street segment gets an additional jitter,
//! so every vehicle has a *personal* speed distribution — the property
//! STS's personalized transition estimator exploits. Taxis beacon their
//! position every `report_interval` seconds, matching the 15-second
//! reporting of the Porto dispatch system.

use super::{lattice_route, personal_speed, GeneratedObject, Workload};
use crate::sampling::randn;
use crate::{Path, TrajPoint};
use sts_geo::Point;
use sts_rng::Rng;
use sts_rng::Xoshiro256pp;

/// Configuration of the taxi workload generator.
#[derive(Debug, Clone)]
pub struct TaxiConfig {
    /// Number of taxis (= trajectories).
    pub n_taxis: usize,
    /// Side length of the square city, meters.
    pub city_size: f64,
    /// Street-grid block size, meters.
    pub block_size: f64,
    /// Number of consecutive destinations each taxi drives to.
    pub n_destinations: usize,
    /// Beacon period, seconds (Porto: 15 s).
    pub report_interval: f64,
    /// Median of the per-taxi speed distribution, m/s.
    pub median_speed: f64,
    /// Log-std of the per-taxi speed distribution.
    pub speed_sigma: f64,
    /// Per-segment speed jitter log-std (traffic variation).
    pub segment_jitter: f64,
    /// Number of popular destinations (stations, the airport, …) shared
    /// by the whole fleet. Shared destinations make taxis drive the
    /// same roads concurrently — the confusable regime trajectory
    /// matching has to disambiguate.
    pub hotspot_count: usize,
    /// Probability that a trip targets a hotspot rather than a uniform
    /// random intersection.
    pub hotspot_prob: f64,
    /// RNG seed; the whole workload is a pure function of the config.
    pub seed: u64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            n_taxis: 100,
            city_size: 6_000.0,
            block_size: 500.0,
            n_destinations: 2,
            report_interval: 15.0,
            median_speed: 10.0,
            speed_sigma: 0.25,
            segment_jitter: 0.15,
            hotspot_count: 5,
            hotspot_prob: 0.5,
            seed: 0x7A21,
        }
    }
}

/// Generates the taxi workload described by `config`.
pub fn generate(config: &TaxiConfig) -> Workload {
    assert!(config.n_taxis > 0, "need at least one taxi");
    assert!(
        config.block_size > 0.0 && config.city_size >= config.block_size,
        "city must hold at least one block"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
    let blocks = (config.city_size / config.block_size).floor() as i64;
    let hotspots: Vec<(i64, i64)> = (0..config.hotspot_count)
        .map(|_| random_intersection(blocks, &mut rng))
        .collect();
    let objects = (0..config.n_taxis)
        .map(|_| generate_taxi(config, blocks, &hotspots, &mut rng))
        .collect();
    Workload { objects }
}

fn generate_taxi<R: Rng + ?Sized>(
    config: &TaxiConfig,
    blocks: i64,
    hotspots: &[(i64, i64)],
    rng: &mut R,
) -> GeneratedObject {
    let base_speed = personal_speed(
        rng,
        config.median_speed,
        config.speed_sigma,
        config.median_speed * 0.4,
        config.median_speed * 2.5,
    );
    // Start at a random intersection; chain routes to random destinations.
    let mut current = random_intersection(blocks, rng);
    let mut nodes: Vec<(i64, i64)> = vec![current];
    for _ in 0..config.n_destinations {
        let dest = loop {
            let d = if !hotspots.is_empty() && rng.random::<f64>() < config.hotspot_prob {
                hotspots[rng.random_range(0..hotspots.len())]
            } else {
                random_intersection(blocks, rng)
            };
            if d != current {
                break d;
            }
        };
        lattice_route(current, dest, rng, &mut nodes);
        current = dest;
    }
    // Timestamp the lattice nodes using per-segment speeds.
    let mut waypoints = Vec::with_capacity(nodes.len());
    let mut t = 0.0;
    let mut prev: Option<Point> = None;
    for &(bx, by) in &nodes {
        let p = Point::new(bx as f64 * config.block_size, by as f64 * config.block_size);
        if let Some(q) = prev {
            let jitter = (randn(rng) * config.segment_jitter).exp();
            let v = (base_speed * jitter).max(0.5);
            t += q.distance(&p) / v;
        }
        waypoints.push(TrajPoint::new(p, t));
        prev = Some(p);
    }
    let path = Path::new(waypoints).expect("route timestamps increase");
    let trajectory = path.sample_uniform(config.report_interval);
    GeneratedObject { path, trajectory }
}

fn random_intersection<R: Rng + ?Sized>(blocks: i64, rng: &mut R) -> (i64, i64) {
    (rng.random_range(0..=blocks), rng.random_range(0..=blocks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> TaxiConfig {
        TaxiConfig {
            n_taxis: 5,
            city_size: 4000.0,
            block_size: 500.0,
            n_destinations: 3,
            seed,
            ..TaxiConfig::default()
        }
    }

    #[test]
    fn generates_requested_population() {
        let w = generate(&small_config(1));
        assert_eq!(w.objects.len(), 5);
        for o in &w.objects {
            assert!(o.trajectory.len() >= 2, "trajectory too short");
            assert!(o.path.duration() > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config(42));
        let b = generate(&small_config(42));
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.trajectory, y.trajectory);
        }
        let c = generate(&small_config(43));
        assert!(a.objects[0].trajectory != c.objects[0].trajectory);
    }

    #[test]
    fn beacons_every_report_interval() {
        let w = generate(&small_config(2));
        let t = &w.objects[0].trajectory;
        for pair in t.points().windows(2) {
            assert!((pair[1].t - pair[0].t - 15.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trajectory_lies_on_path() {
        let w = generate(&small_config(3));
        for o in &w.objects {
            for p in o.trajectory.points() {
                let truth = o.path.position_at(p.t);
                assert!(p.loc.distance(&truth) < 1e-6);
            }
        }
    }

    #[test]
    fn stays_in_city_bounds() {
        let cfg = small_config(4);
        let w = generate(&cfg);
        for o in &w.objects {
            for p in o.path.waypoints() {
                assert!(p.loc.x >= -1e-9 && p.loc.x <= cfg.city_size + 1e-9);
                assert!(p.loc.y >= -1e-9 && p.loc.y <= cfg.city_size + 1e-9);
            }
        }
    }

    #[test]
    fn speeds_vary_between_taxis() {
        let w = generate(&TaxiConfig {
            n_taxis: 10,
            ..small_config(5)
        });
        let means: Vec<f64> = w
            .objects
            .iter()
            .map(|o| {
                let s = o.trajectory.speed_samples();
                s.iter().sum::<f64>() / s.len() as f64
            })
            .collect();
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "personal speeds too uniform: {means:?}");
    }

    #[test]
    fn routes_are_lattice_paths() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut nodes = vec![(0, 0)];
        lattice_route((0, 0), (3, 2), &mut rng, &mut nodes);
        assert_eq!(*nodes.last().unwrap(), (3, 2));
        assert_eq!(nodes.len(), 6); // 5 moves + start
        for w in nodes.windows(2) {
            let d = (w[1].0 - w[0].0).abs() + (w[1].1 - w[0].1).abs();
            assert_eq!(d, 1, "non-unit lattice move");
        }
    }
}
