//! Synthetic workload generators.
//!
//! The paper evaluates on two proprietary/large datasets we cannot ship:
//! the Porto taxi dataset (422 taxis, 15-second GPS beacons) and a
//! WiFi-fingerprint pedestrian dataset from a Hong Kong shopping mall.
//! Per the substitution rule in `DESIGN.md` §2, these modules generate
//! seeded, deterministic workloads preserving the properties STS exploits:
//!
//! * [`taxi`] — vehicles driving Manhattan-style street grids with
//!   per-vehicle speed profiles, beaconing every 15 s;
//! * [`mall`] — pedestrians wandering a corridor/store graph with
//!   personal walking speeds, dwell times and sporadic (Poisson)
//!   observations.
//!
//! Both produce the ground-truth [`Path`] next to each sampled
//! [`Trajectory`], so experiments can always go back to the truth.

pub mod cdr;
pub mod mall;
pub mod taxi;

use crate::sampling::randn;
use crate::{Path, TrajPoint, Trajectory};
use sts_geo::Point;
use sts_rng::Rng;

/// A generated moving object: its continuous ground-truth path and the
/// trajectory a sensing system observed of it.
#[derive(Debug, Clone)]
pub struct GeneratedObject {
    /// Ground-truth continuous movement.
    pub path: Path,
    /// The sensed (sampled, still noise-free) trajectory.
    pub trajectory: Trajectory,
}

/// A generated workload: a population of objects in a common frame.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The generated objects.
    pub objects: Vec<GeneratedObject>,
}

impl Workload {
    /// The sensed trajectories as a dataset.
    pub fn dataset(&self) -> crate::Dataset {
        self.objects.iter().map(|o| o.trajectory.clone()).collect()
    }

    /// The ground-truth paths.
    pub fn paths(&self) -> Vec<&Path> {
        self.objects.iter().map(|o| &o.path).collect()
    }
}

/// Derives a *companion* path from an existing one: the same movement
/// with a small positional offset and jitter (two people walking
/// together). Used by the companion-detection example and the co-location
/// tests.
pub fn companion_path<R: Rng + ?Sized>(
    path: &Path,
    lateral_offset: f64,
    jitter_std: f64,
    rng: &mut R,
) -> Path {
    let base_offset = Point::new(randn(rng) * lateral_offset, randn(rng) * lateral_offset);
    let waypoints: Vec<TrajPoint> = path
        .waypoints()
        .iter()
        .map(|p| {
            let jitter = Point::new(randn(rng) * jitter_std, randn(rng) * jitter_std);
            TrajPoint::new(p.loc + base_offset + jitter, p.t)
        })
        .collect();
    Path::new(waypoints).expect("companion preserves timestamps")
}

/// Appends a randomized monotone lattice route from `from` (exclusive) to
/// `to` (inclusive): each step moves one block toward the destination,
/// choosing the axis proportionally to the remaining moves so routes look
/// like plausible staircases rather than L-shapes. Shared by the taxi
/// street grid and the mall corridor lattice.
pub fn lattice_route<R: Rng + ?Sized>(
    from: (i64, i64),
    to: (i64, i64),
    rng: &mut R,
    out: &mut Vec<(i64, i64)>,
) {
    let (mut x, mut y) = from;
    while (x, y) != to {
        let dx = (to.0 - x).signum();
        let dy = (to.1 - y).signum();
        let remaining_x = (to.0 - x).abs();
        let remaining_y = (to.1 - y).abs();
        let move_x = if remaining_x == 0 {
            false
        } else if remaining_y == 0 {
            true
        } else {
            rng.random_range(0..(remaining_x + remaining_y)) < remaining_x
        };
        if move_x {
            x += dx;
        } else {
            y += dy;
        }
        out.push((x, y));
    }
}

/// Draws a personal mean speed from a log-normal distribution around
/// `median` m/s with log-std `sigma`, clamped to `[lo, hi]`. The paper's
/// motivation [26]: speed distributions are distinct per user.
pub fn personal_speed<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    (median * (randn(rng) * sigma).exp()).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_rng::Xoshiro256pp;

    #[test]
    fn companion_stays_close() {
        let path = Path::new(vec![
            TrajPoint::from_xy(0.0, 0.0, 0.0),
            TrajPoint::from_xy(100.0, 0.0, 100.0),
            TrajPoint::from_xy(100.0, 100.0, 200.0),
        ])
        .unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let comp = companion_path(&path, 1.0, 0.5, &mut rng);
        assert_eq!(comp.waypoints().len(), path.waypoints().len());
        for t in [0.0, 50.0, 150.0, 200.0] {
            let d = path.position_at(t).distance(&comp.position_at(t));
            assert!(d < 10.0, "companion strayed {d} m at t={t}");
        }
    }

    #[test]
    fn personal_speed_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..1000 {
            let v = personal_speed(&mut rng, 1.3, 0.2, 0.5, 2.5);
            assert!((0.5..=2.5).contains(&v));
        }
    }

    #[test]
    fn personal_speed_varies_between_draws() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let a = personal_speed(&mut rng, 10.0, 0.3, 3.0, 25.0);
        let b = personal_speed(&mut rng, 10.0, 0.3, 3.0, 25.0);
        assert!(a != b);
    }
}
