//! Shopping-mall pedestrian workload (WiFi-dataset substitute).
//!
//! Pedestrians move along a corridor lattice of a mall floor, dwell at
//! stores (exponential dwell times), and walk with *personal* speeds
//! (normal around ~1.3 m/s, per the pedestrian-speed literature the paper
//! cites [26]). A WiFi-scan-like Poisson process observes each device
//! sporadically and asynchronously — the paper's hard regime of sporadic
//! sampling in a narrow site.

use super::{GeneratedObject, Workload};
use crate::sampling::{randn, sample_path_poisson};
use crate::{Path, TrajPoint};
use sts_geo::Point;
use sts_rng::Rng;
use sts_rng::Xoshiro256pp;

/// Configuration of the mall workload generator.
#[derive(Debug, Clone)]
pub struct MallConfig {
    /// Number of pedestrians (= trajectories).
    pub n_pedestrians: usize,
    /// Floor width (x extent), meters.
    pub width: f64,
    /// Floor depth (y extent), meters.
    pub height: f64,
    /// Corridor lattice spacing, meters.
    pub corridor_spacing: f64,
    /// Number of stores each pedestrian visits.
    pub n_stops: usize,
    /// Number of anchor stores (the food court, a department store, …)
    /// shared by all pedestrians; shared destinations put different
    /// people on the same corridors at the same time — the confusable
    /// regime the matching task must disambiguate.
    pub anchor_count: usize,
    /// Probability that a stop targets an anchor store rather than a
    /// uniformly random corridor node.
    pub anchor_prob: f64,
    /// Mean dwell time at each stop, seconds.
    pub mean_dwell: f64,
    /// Mean interval of the Poisson observation process, seconds.
    pub mean_scan_interval: f64,
    /// Mean personal walking speed, m/s.
    pub mean_speed: f64,
    /// Std of the personal walking speed across pedestrians.
    pub speed_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MallConfig {
    fn default() -> Self {
        MallConfig {
            n_pedestrians: 100,
            width: 150.0,
            height: 80.0,
            corridor_spacing: 10.0,
            n_stops: 5,
            anchor_count: 6,
            anchor_prob: 0.6,
            mean_dwell: 60.0,
            mean_scan_interval: 12.0,
            mean_speed: 1.3,
            speed_std: 0.25,
            seed: 0x3A11,
        }
    }
}

/// Generates the mall workload described by `config`.
pub fn generate(config: &MallConfig) -> Workload {
    assert!(config.n_pedestrians > 0, "need at least one pedestrian");
    assert!(
        config.corridor_spacing > 0.0
            && config.width >= config.corridor_spacing
            && config.height >= config.corridor_spacing,
        "floor must hold at least one corridor cell"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
    let nx = (config.width / config.corridor_spacing).floor() as i64;
    let ny = (config.height / config.corridor_spacing).floor() as i64;
    let anchors: Vec<(i64, i64)> = (0..config.anchor_count)
        .map(|_| (rng.random_range(0..=nx), rng.random_range(0..=ny)))
        .collect();
    let objects = (0..config.n_pedestrians)
        .map(|_| generate_pedestrian(config, nx, ny, &anchors, &mut rng))
        .collect();
    Workload { objects }
}

fn generate_pedestrian<R: Rng + ?Sized>(
    config: &MallConfig,
    nx: i64,
    ny: i64,
    anchors: &[(i64, i64)],
    rng: &mut R,
) -> GeneratedObject {
    // Personal walking speed, normal and clamped to plausible bounds.
    let speed = (config.mean_speed + randn(rng) * config.speed_std).clamp(0.5, 2.5);
    let mut current = (rng.random_range(0..=nx), rng.random_range(0..=ny));
    let mut waypoints: Vec<TrajPoint> = Vec::new();
    let mut t = 0.0;
    let to_point = |node: (i64, i64)| -> Point {
        Point::new(
            node.0 as f64 * config.corridor_spacing,
            node.1 as f64 * config.corridor_spacing,
        )
    };
    waypoints.push(TrajPoint::new(to_point(current), t));
    for _ in 0..config.n_stops {
        let dest = loop {
            let d = if !anchors.is_empty() && rng.random::<f64>() < config.anchor_prob {
                anchors[rng.random_range(0..anchors.len())]
            } else {
                (rng.random_range(0..=nx), rng.random_range(0..=ny))
            };
            if d != current {
                break d;
            }
        };
        // Walk a staircase lattice route at the personal speed (with a
        // small per-leg variation: pace changes while window shopping).
        let mut nodes = Vec::new();
        super::lattice_route(current, dest, rng, &mut nodes);
        for node in nodes {
            let p = to_point(node);
            let prev = waypoints.last().expect("non-empty").loc;
            let pace = (speed * (randn(rng) * 0.1).exp()).max(0.3);
            t += prev.distance(&p) / pace;
            waypoints.push(TrajPoint::new(p, t));
        }
        current = dest;
        // Dwell at the store: exponential holding time.
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let dwell = -config.mean_dwell * u.ln();
        t += dwell;
        waypoints.push(TrajPoint::new(to_point(current), t));
    }
    let path = Path::new(waypoints).expect("mall timestamps increase");
    let trajectory = sample_path_poisson(&path, config.mean_scan_interval, rng);
    GeneratedObject { path, trajectory }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> MallConfig {
        MallConfig {
            n_pedestrians: 5,
            n_stops: 4,
            seed,
            ..MallConfig::default()
        }
    }

    #[test]
    fn generates_requested_population() {
        let w = generate(&small_config(1));
        assert_eq!(w.objects.len(), 5);
        for o in &w.objects {
            assert!(o.trajectory.len() >= 2);
            assert!(o.path.duration() > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config(7));
        let b = generate(&small_config(7));
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.trajectory, y.trajectory);
        }
    }

    #[test]
    fn stays_on_floor() {
        let cfg = small_config(2);
        let w = generate(&cfg);
        for o in &w.objects {
            for p in o.path.waypoints() {
                assert!(p.loc.x >= -1e-9 && p.loc.x <= cfg.width + 1e-9);
                assert!(p.loc.y >= -1e-9 && p.loc.y <= cfg.height + 1e-9);
            }
        }
    }

    #[test]
    fn sampling_is_sporadic() {
        let w = generate(&small_config(3));
        let t = &w.objects[0].trajectory;
        let gaps: Vec<f64> = t.points().windows(2).map(|p| p[1].t - p[0].t).collect();
        // Poisson gaps are irregular: not all equal.
        let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min * 1.5, "gaps suspiciously regular");
    }

    #[test]
    fn walking_speed_is_pedestrian_scale() {
        let w = generate(&small_config(4));
        for o in &w.objects {
            // Ground-truth leg speeds (excluding dwells) are bounded by
            // the clamp range.
            for pair in o.path.waypoints().windows(2) {
                let d = pair[0].loc.distance(&pair[1].loc);
                let dt = pair[1].t - pair[0].t;
                if d > 0.0 && dt > 0.0 {
                    let v = d / dt;
                    assert!(v <= 3.5, "pedestrian at {v} m/s");
                }
            }
        }
    }

    #[test]
    fn trajectory_lies_on_path() {
        let w = generate(&small_config(5));
        for o in &w.objects {
            for p in o.trajectory.points() {
                assert!(p.loc.distance(&o.path.position_at(p.t)) < 1e-6);
            }
        }
    }
}
