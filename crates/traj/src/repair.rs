//! Repair of raw, possibly corrupted point streams.
//!
//! The [`Trajectory`] constructor rejects structurally invalid input
//! (non-finite values, non-monotonic timestamps) with a typed error —
//! correct, but all-or-nothing. Real trajectory feeds degrade
//! *per record*: a GPS unit emits one NaN fix, a batching layer
//! reorders two messages, a positioning glitch teleports a point across
//! the map. This module turns such raw streams into valid trajectories
//! under a configurable [`RepairPolicy`], reporting exactly what was
//! dropped or fixed in a [`RepairReport`].
//!
//! The repair layer upholds the workspace's degraded-mode guarantee:
//! for any input — any sequence of [`TrajPoint`]s whatsoever — a
//! non-strict policy never panics and never returns an error; the
//! worst possible outcome is an empty set of output trajectories with
//! a report explaining why.

use crate::{TrajPoint, Trajectory};
use std::fmt;

/// How structurally defective input is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// Reject the stream on the first defect with a [`RepairError`]
    /// naming it. Equivalent to [`Trajectory::new`] plus teleport
    /// screening — for pipelines that must not silently alter data.
    Strict,
    /// Drop offending points: non-finite coordinates, duplicate
    /// timestamps (after time-sorting) and teleport spikes are removed;
    /// the survivors form one trajectory.
    #[default]
    DropBad,
    /// Like [`RepairPolicy::DropBad`] for non-finite and duplicate
    /// points, but a teleport splits the stream into separate
    /// trajectories instead of discarding points: both sides of an
    /// implausible jump are kept as independent segments.
    SplitAtGaps,
    /// Like [`RepairPolicy::DropBad`], but a teleporting point is moved
    /// back onto the ray from its predecessor, at the maximum plausible
    /// displacement, instead of being dropped.
    ClampSpeed,
}

/// Tuning of the repair pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// The policy applied to structural defects.
    pub policy: RepairPolicy,
    /// Speed (m/s) above which a displacement is considered a teleport.
    /// `f64::INFINITY` disables teleport screening entirely.
    pub max_speed: f64,
    /// Repaired segments shorter than this many points are discarded
    /// (the STS measure needs at least 2 points for a speed model).
    pub min_len: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            policy: RepairPolicy::DropBad,
            // Generous even for highway traffic; far below GPS
            // multipath teleports (which typically jump kilometers).
            max_speed: 70.0,
            min_len: 2,
        }
    }
}

impl RepairConfig {
    /// A config with the given policy and default thresholds.
    pub fn with_policy(policy: RepairPolicy) -> Self {
        RepairConfig {
            policy,
            ..RepairConfig::default()
        }
    }
}

/// The kind of structural defect found in a raw stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefectKind {
    /// A coordinate or timestamp was NaN or infinite.
    NonFinite,
    /// The timestamp was not strictly greater than its predecessor's.
    OutOfOrder,
    /// Two points shared a timestamp.
    DuplicateStamp,
    /// The implied speed from the previous point exceeded the
    /// configured maximum.
    Teleport {
        /// The implied speed, m/s.
        speed: f64,
    },
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectKind::NonFinite => write!(f, "non-finite coordinate or timestamp"),
            DefectKind::OutOfOrder => write!(f, "out-of-order timestamp"),
            DefectKind::DuplicateStamp => write!(f, "duplicate timestamp"),
            DefectKind::Teleport { speed } => {
                write!(f, "teleport (implied speed {speed:.1} m/s)")
            }
        }
    }
}

/// Error returned by [`RepairPolicy::Strict`] on defective input.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// The stream contained no points.
    Empty,
    /// The first structural defect, with its index in the input.
    Defect {
        /// Index of the offending point in the raw stream.
        index: usize,
        /// What was wrong with it.
        kind: DefectKind,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Empty => write!(f, "empty point stream"),
            RepairError::Defect { index, kind } => {
                write!(f, "defective point at index {index}: {kind}")
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// What a repair pass dropped or fixed. All counters are zero for a
/// clean stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Points in the raw input.
    pub input_points: usize,
    /// Points dropped for NaN/infinite coordinates or timestamps.
    pub dropped_non_finite: usize,
    /// Adjacent input pairs that arrived out of time order (the stream
    /// was sorted before further repair when this is non-zero).
    pub out_of_order: usize,
    /// Points dropped because they shared a timestamp with an earlier
    /// point.
    pub dropped_duplicate_stamps: usize,
    /// Points dropped as teleport spikes ([`RepairPolicy::DropBad`]).
    pub dropped_teleports: usize,
    /// Points pulled back to the plausible-speed envelope
    /// ([`RepairPolicy::ClampSpeed`]).
    pub clamped_teleports: usize,
    /// Segment boundaries introduced at implausible jumps
    /// ([`RepairPolicy::SplitAtGaps`]).
    pub splits: usize,
    /// Repaired segments discarded for being shorter than
    /// [`RepairConfig::min_len`].
    pub dropped_short_segments: usize,
    /// Points surviving into the output trajectories.
    pub output_points: usize,
}

impl RepairReport {
    /// `true` when the input needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.dropped_non_finite == 0
            && self.out_of_order == 0
            && self.dropped_duplicate_stamps == 0
            && self.dropped_teleports == 0
            && self.clamped_teleports == 0
            && self.splits == 0
            && self.dropped_short_segments == 0
    }

    /// Total points dropped (not counting clamped points, which
    /// survive with an adjusted location).
    pub fn dropped_points(&self) -> usize {
        self.input_points - self.output_points
    }
}

/// A repaired stream: zero or more valid trajectories plus the report
/// of everything that was done to produce them.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repaired trajectories, in stream order.
    pub trajectories: Vec<Trajectory>,
    /// What was dropped or fixed.
    pub report: RepairReport,
}

/// Repairs a raw point stream into valid trajectories under `config`.
///
/// Non-strict policies never fail: any input yields `Ok`, possibly
/// with zero output trajectories (the report says why). Only
/// [`RepairPolicy::Strict`] returns `Err`, naming the first defect.
pub fn repair(points: &[TrajPoint], config: &RepairConfig) -> Result<RepairOutcome, RepairError> {
    if config.policy == RepairPolicy::Strict {
        return repair_strict(points, config);
    }
    let mut report = RepairReport {
        input_points: points.len(),
        ..RepairReport::default()
    };

    // 1. Drop non-finite points.
    let mut pts: Vec<TrajPoint> = Vec::with_capacity(points.len());
    for p in points {
        if p.loc.is_finite() && p.t.is_finite() {
            pts.push(*p);
        } else {
            report.dropped_non_finite += 1;
        }
    }

    // 2. Restore time order. Count the arrival-order violations first so
    // the report distinguishes "was shuffled" from "was clean"; the sort
    // is stable, so simultaneous points keep their arrival order.
    report.out_of_order = pts.windows(2).filter(|w| w[0].t > w[1].t).count();
    if report.out_of_order > 0 {
        pts.sort_by(|a, b| a.t.total_cmp(&b.t));
    }

    // 3. Collapse duplicate timestamps, keeping the first arrival.
    let before = pts.len();
    pts.dedup_by(|b, a| a.t == b.t);
    report.dropped_duplicate_stamps = before - pts.len();

    // 4. Teleport screening, policy-dependent.
    let mut segments: Vec<Vec<TrajPoint>> = Vec::new();
    let mut current: Vec<TrajPoint> = Vec::new();
    for p in pts {
        let Some(prev) = current.last().copied() else {
            current.push(p);
            continue;
        };
        let dt = p.t - prev.t;
        let dist = prev.loc.distance(&p.loc);
        // dt > 0 is guaranteed by steps 2–3.
        if dist <= config.max_speed * dt {
            current.push(p);
            continue;
        }
        match config.policy {
            RepairPolicy::DropBad => report.dropped_teleports += 1,
            RepairPolicy::SplitAtGaps => {
                report.splits += 1;
                segments.push(std::mem::take(&mut current));
                current.push(p);
            }
            RepairPolicy::ClampSpeed => {
                // Pull the point back along the prev→p ray to the edge
                // of the plausible envelope. dist > 0 here (a zero
                // displacement can never exceed the speed bound).
                let scale = config.max_speed * dt / dist;
                let clamped = TrajPoint::from_xy(
                    prev.loc.x + (p.loc.x - prev.loc.x) * scale,
                    prev.loc.y + (p.loc.y - prev.loc.y) * scale,
                    p.t,
                );
                report.clamped_teleports += 1;
                current.push(clamped);
            }
            RepairPolicy::Strict => unreachable!("handled above"),
        }
    }
    segments.push(current);

    // 5. Materialize segments long enough to be useful.
    let mut trajectories = Vec::new();
    for seg in segments {
        if seg.len() < config.min_len {
            if !seg.is_empty() {
                report.dropped_short_segments += 1;
            }
            continue;
        }
        // By construction the segment is finite and strictly
        // increasing; a constructor error would be a repair bug, and
        // degraded mode degrades (drops the segment) rather than
        // panicking even then.
        match Trajectory::new(seg) {
            Ok(t) => {
                report.output_points += t.len();
                trajectories.push(t);
            }
            Err(_) => {
                report.dropped_short_segments += 1;
            }
        }
    }
    sts_obs::static_counter!("traj.repair.streams").incr();
    sts_obs::static_counter!("traj.repair.dropped_points").add(report.dropped_points() as u64);
    sts_obs::static_counter!("traj.repair.clamped_points").add(report.clamped_teleports as u64);
    sts_obs::static_counter!("traj.repair.splits").add(report.splits as u64);
    Ok(RepairOutcome {
        trajectories,
        report,
    })
}

/// Strict mode: verify, never alter.
fn repair_strict(
    points: &[TrajPoint],
    config: &RepairConfig,
) -> Result<RepairOutcome, RepairError> {
    if points.is_empty() {
        return Err(RepairError::Empty);
    }
    for (i, p) in points.iter().enumerate() {
        if !p.loc.is_finite() || !p.t.is_finite() {
            return Err(RepairError::Defect {
                index: i,
                kind: DefectKind::NonFinite,
            });
        }
        if i > 0 {
            let prev = points[i - 1];
            if p.t == prev.t {
                return Err(RepairError::Defect {
                    index: i,
                    kind: DefectKind::DuplicateStamp,
                });
            }
            if p.t < prev.t {
                return Err(RepairError::Defect {
                    index: i,
                    kind: DefectKind::OutOfOrder,
                });
            }
            let speed = prev.loc.distance(&p.loc) / (p.t - prev.t);
            if speed > config.max_speed {
                return Err(RepairError::Defect {
                    index: i,
                    kind: DefectKind::Teleport { speed },
                });
            }
        }
    }
    let report = RepairReport {
        input_points: points.len(),
        output_points: points.len(),
        ..RepairReport::default()
    };
    let traj = Trajectory::new(points.to_vec()).expect("strict pass verified the invariants");
    Ok(RepairOutcome {
        trajectories: vec![traj],
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> Vec<TrajPoint> {
        (0..10)
            .map(|i| TrajPoint::from_xy(2.0 * i as f64, 5.0, i as f64))
            .collect()
    }

    #[test]
    fn clean_stream_passes_every_policy_untouched() {
        for policy in [
            RepairPolicy::Strict,
            RepairPolicy::DropBad,
            RepairPolicy::SplitAtGaps,
            RepairPolicy::ClampSpeed,
        ] {
            let out = repair(&clean(), &RepairConfig::with_policy(policy)).unwrap();
            assert_eq!(out.trajectories.len(), 1, "{policy:?}");
            assert_eq!(out.trajectories[0].len(), 10);
            assert!(out.report.is_clean(), "{policy:?}: {:?}", out.report);
            assert_eq!(out.report.dropped_points(), 0);
        }
    }

    #[test]
    fn strict_names_the_first_defect() {
        let config = RepairConfig::with_policy(RepairPolicy::Strict);
        assert_eq!(repair(&[], &config), Err(RepairError::Empty));

        let mut pts = clean();
        pts[3].loc.x = f64::NAN;
        assert_eq!(
            repair(&pts, &config).unwrap_err(),
            RepairError::Defect {
                index: 3,
                kind: DefectKind::NonFinite
            }
        );

        let mut pts = clean();
        pts[4].t = pts[3].t;
        assert_eq!(
            repair(&pts, &config).unwrap_err(),
            RepairError::Defect {
                index: 4,
                kind: DefectKind::DuplicateStamp
            }
        );

        let mut pts = clean();
        pts.swap(5, 6);
        assert!(matches!(
            repair(&pts, &config).unwrap_err(),
            RepairError::Defect {
                index: 6,
                kind: DefectKind::OutOfOrder
            }
        ));

        let mut pts = clean();
        pts[7].loc.x += 10_000.0;
        assert!(matches!(
            repair(&pts, &config).unwrap_err(),
            RepairError::Defect {
                index: 7,
                kind: DefectKind::Teleport { .. }
            }
        ));
    }

    #[test]
    fn drop_bad_removes_non_finite_and_duplicates() {
        let mut pts = clean();
        pts[2].loc.y = f64::INFINITY;
        pts[5].t = f64::NAN;
        pts[8].t = pts[7].t;
        let out = repair(&pts, &RepairConfig::default()).unwrap();
        assert_eq!(out.trajectories.len(), 1);
        assert_eq!(out.report.dropped_non_finite, 2);
        assert_eq!(out.report.dropped_duplicate_stamps, 1);
        assert_eq!(out.trajectories[0].len(), 7);
        assert_eq!(out.report.output_points, 7);
    }

    #[test]
    fn shuffled_timestamps_are_restored() {
        let mut pts = clean();
        pts.swap(1, 6);
        pts.swap(3, 8);
        let out = repair(&pts, &RepairConfig::default()).unwrap();
        assert_eq!(out.trajectories.len(), 1);
        assert!(out.report.out_of_order > 0);
        let t = &out.trajectories[0];
        assert_eq!(t.len(), 10);
        for w in t.points().windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    fn drop_bad_removes_teleport_spike() {
        let mut pts = clean();
        pts[4].loc.x += 5_000.0; // 5 km in 1 s
        let out = repair(&pts, &RepairConfig::default()).unwrap();
        assert_eq!(out.report.dropped_teleports, 1);
        assert_eq!(out.trajectories.len(), 1);
        assert_eq!(out.trajectories[0].len(), 9);
        // The survivors are all within the speed envelope.
        for s in out.trajectories[0].speed_samples() {
            assert!(s <= RepairConfig::default().max_speed);
        }
    }

    #[test]
    fn split_at_gaps_keeps_both_sides() {
        let mut pts = clean();
        // Shift the whole tail 5 km away: one implausible jump.
        for p in &mut pts[5..] {
            p.loc.x += 5_000.0;
        }
        let config = RepairConfig::with_policy(RepairPolicy::SplitAtGaps);
        let out = repair(&pts, &config).unwrap();
        assert_eq!(out.report.splits, 1);
        assert_eq!(out.trajectories.len(), 2);
        assert_eq!(out.trajectories[0].len(), 5);
        assert_eq!(out.trajectories[1].len(), 5);
        assert_eq!(out.report.output_points, 10);
    }

    #[test]
    fn clamp_speed_keeps_the_point_within_the_envelope() {
        let mut pts = clean();
        pts[4].loc.x += 5_000.0;
        let config = RepairConfig::with_policy(RepairPolicy::ClampSpeed);
        let out = repair(&pts, &config).unwrap();
        assert_eq!(out.report.clamped_teleports, 1);
        assert_eq!(out.trajectories.len(), 1);
        assert_eq!(out.trajectories[0].len(), 10);
        let speeds = out.trajectories[0].speed_samples();
        assert!(speeds[3] <= config.max_speed * (1.0 + 1e-9), "{speeds:?}");
    }

    #[test]
    fn short_segments_are_discarded() {
        let pts = vec![TrajPoint::from_xy(0.0, 0.0, 0.0)];
        let out = repair(&pts, &RepairConfig::default()).unwrap();
        assert!(out.trajectories.is_empty());
        assert_eq!(out.report.dropped_short_segments, 1);
        assert_eq!(out.report.output_points, 0);
    }

    #[test]
    fn hopeless_input_degrades_to_nothing_without_error() {
        let pts = vec![
            TrajPoint::from_xy(f64::NAN, 0.0, 0.0),
            TrajPoint::from_xy(0.0, f64::INFINITY, 1.0),
            TrajPoint::from_xy(0.0, 0.0, f64::NAN),
        ];
        for policy in [
            RepairPolicy::DropBad,
            RepairPolicy::SplitAtGaps,
            RepairPolicy::ClampSpeed,
        ] {
            let out = repair(&pts, &RepairConfig::with_policy(policy)).unwrap();
            assert!(out.trajectories.is_empty(), "{policy:?}");
            assert_eq!(out.report.dropped_non_finite, 3);
        }
        let empty = repair(&[], &RepairConfig::default()).unwrap();
        assert!(empty.trajectories.is_empty());
        assert!(empty.report.is_clean());
    }

    #[test]
    fn infinite_max_speed_disables_teleport_screening() {
        let mut pts = clean();
        pts[4].loc.x += 5_000.0;
        let config = RepairConfig {
            max_speed: f64::INFINITY,
            ..RepairConfig::default()
        };
        let out = repair(&pts, &config).unwrap();
        assert_eq!(out.report.dropped_teleports, 0);
        assert_eq!(out.trajectories[0].len(), 10);
    }
}
