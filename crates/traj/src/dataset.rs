//! Datasets and the paired-dataset construction for trajectory matching
//! (paper §VI-C, Fig. 3).

use crate::sampling::alternate_split;
use crate::Trajectory;

/// A collection of trajectories from one sensing system.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    trajectories: Vec<Trajectory>,
}

impl Dataset {
    /// Wraps a list of trajectories.
    pub fn new(trajectories: Vec<Trajectory>) -> Self {
        Dataset { trajectories }
    }

    /// The trajectories.
    #[inline]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Number of trajectories.
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// `true` when the dataset holds no trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Adds a trajectory.
    pub fn push(&mut self, t: Trajectory) {
        self.trajectories.push(t);
    }

    /// Retains only trajectories with at least `min_len` points —
    /// the paper removes trajectories shorter than 20 (§VI-A).
    pub fn filter_min_len(mut self, min_len: usize) -> Self {
        self.trajectories.retain(|t| t.len() >= min_len);
        self
    }

    /// Applies a fallible transformation to every trajectory, dropping
    /// those for which it returns `None`.
    pub fn filter_map<F: FnMut(&Trajectory) -> Option<Trajectory>>(&self, f: F) -> Dataset {
        Dataset::new(self.trajectories.iter().filter_map(f).collect())
    }
}

impl FromIterator<Trajectory> for Dataset {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        Dataset::new(iter.into_iter().collect())
    }
}

/// The paired datasets `D(1)`/`D(2)` of §VI-C: `d1[i]` and `d2[i]` are
/// sub-trajectories of the same object, obtained by alternately taking
/// points from the raw trajectory (Fig. 3). A similarity measure solves
/// the matching task when, for each `d1[i]`, the most similar trajectory
/// in `d2` is `d2[i]`.
#[derive(Debug, Clone)]
pub struct MatchingPairs {
    /// First sensing system's view of each object.
    pub d1: Vec<Trajectory>,
    /// Second sensing system's view; index-aligned with `d1`.
    pub d2: Vec<Trajectory>,
}

impl MatchingPairs {
    /// Builds the pairs from a dataset by the Fig. 3 alternate split.
    /// Trajectories that cannot be split (fewer than 2 points) are
    /// skipped.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let mut d1 = Vec::with_capacity(ds.len());
        let mut d2 = Vec::with_capacity(ds.len());
        for t in ds.trajectories() {
            if let Some((a, b)) = alternate_split(t) {
                d1.push(a);
                d2.push(b);
            }
        }
        MatchingPairs { d1, d2 }
    }

    /// Number of pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.d1.len()
    }

    /// `true` when there are no pairs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.d1.is_empty()
    }

    /// Transforms both sides with independent closures (e.g. noise on
    /// both, down-sampling on one). Pairs where either side maps to
    /// `None` are dropped — keeping the index alignment.
    pub fn transform<F, G>(&self, mut f1: F, mut f2: G) -> MatchingPairs
    where
        F: FnMut(&Trajectory) -> Option<Trajectory>,
        G: FnMut(&Trajectory) -> Option<Trajectory>,
    {
        let mut d1 = Vec::with_capacity(self.len());
        let mut d2 = Vec::with_capacity(self.len());
        for (a, b) in self.d1.iter().zip(&self.d2) {
            if let (Some(a2), Some(b2)) = (f1(a), f2(b)) {
                d1.push(a2);
                d2.push(b2);
            }
        }
        MatchingPairs { d1, d2 }
    }

    /// Applies one transformation to both sides (e.g. the same noise or
    /// down-sampling process drawing from one RNG). D(1) sides are
    /// transformed before their paired D(2) sides.
    pub fn transform_both<F>(&self, mut f: F) -> MatchingPairs
    where
        F: FnMut(&Trajectory) -> Option<Trajectory>,
    {
        let mut d1 = Vec::with_capacity(self.len());
        let mut d2 = Vec::with_capacity(self.len());
        for (a, b) in self.d1.iter().zip(&self.d2) {
            let (fa, fb) = (f(a), f(b));
            if let (Some(a2), Some(b2)) = (fa, fb) {
                d1.push(a2);
                d2.push(b2);
            }
        }
        MatchingPairs { d1, d2 }
    }

    /// Drops pairs where either side is shorter than `min_len`.
    pub fn filter_min_len(&self, min_len: usize) -> MatchingPairs {
        self.transform(
            |t| (t.len() >= min_len).then(|| t.clone()),
            |t| (t.len() >= min_len).then(|| t.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajPoint;

    fn traj(n: usize, offset: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| TrajPoint::from_xy(i as f64 + offset, offset, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn dataset_filtering() {
        let ds = Dataset::new(vec![traj(5, 0.0), traj(25, 1.0), traj(19, 2.0)]);
        let kept = ds.filter_min_len(20);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.trajectories()[0].len(), 25);
    }

    #[test]
    fn dataset_from_iterator_and_push() {
        let mut ds: Dataset = (0..3).map(|i| traj(4, i as f64)).collect();
        assert_eq!(ds.len(), 3);
        ds.push(traj(4, 9.0));
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert!(Dataset::default().is_empty());
    }

    #[test]
    fn matching_pairs_alignment() {
        let ds = Dataset::new(vec![traj(10, 0.0), traj(11, 5.0)]);
        let pairs = MatchingPairs::from_dataset(&ds);
        assert_eq!(pairs.len(), 2);
        for (a, b) in pairs.d1.iter().zip(&pairs.d2) {
            // Both halves come from the same object: interleaved times.
            assert_eq!(a.get(0).t, 0.0);
            assert_eq!(b.get(0).t, 1.0);
            assert!(a.len() + b.len() >= 10);
            // Same spatial offset means same object in this toy data.
            assert_eq!(a.get(0).loc.y, b.get(0).loc.y);
        }
    }

    #[test]
    fn short_trajectories_are_skipped() {
        let one_point = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        let ds = Dataset::new(vec![one_point, traj(6, 0.0)]);
        let pairs = MatchingPairs::from_dataset(&ds);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn transform_drops_none_pairs() {
        let ds = Dataset::new(vec![traj(10, 0.0), traj(30, 1.0)]);
        let pairs = MatchingPairs::from_dataset(&ds);
        // Keep only d1 halves with at least 10 points (only the 30-point
        // raw trajectory qualifies: its halves are 15/15).
        let out = pairs.transform(|t| (t.len() >= 10).then(|| t.clone()), |t| Some(t.clone()));
        assert_eq!(out.len(), 1);
        assert_eq!(out.d1[0].len(), 15);
        assert_eq!(out.d2[0].len(), 15);
    }

    #[test]
    fn filter_min_len_applies_to_both_sides() {
        let ds = Dataset::new(vec![traj(21, 0.0), traj(40, 1.0)]);
        let pairs = MatchingPairs::from_dataset(&ds);
        let out = pairs.filter_min_len(11);
        assert_eq!(out.len(), 1); // 21 -> (11, 10): dropped; 40 -> (20, 20): kept
    }
}
